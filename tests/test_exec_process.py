"""Process-backend tests: scheduler semantics over worker processes
(ordering, group chaining, timeouts, retries, error modes, caching),
payload reconstruction, and the cross-backend differential gates --
serial vs thread vs process must be bit-identical on real proofs."""

import os
import time

import pytest

from repro.exec import (
    CallPayload, ExecConfig, Obligation, ObligationScheduler, ResultCache,
    Telemetry, make_key,
)
from repro.lang import analyze, parse_package
from repro.prover import ImplementationProof

from tests.test_exec_scheduler import SRC, outcome_key


# -- module-level payload targets (must be picklable by qualified name) ----

def _square(x):
    return x * x


def _pid_tag(x):
    return (os.getpid(), x)


def _boom(x):
    raise ValueError(f"boom {x}")


def _busy_wait(seconds):
    deadline = time.time() + seconds
    while time.time() < deadline:
        pass
    return "done"


def _ob(label, payload, group=None, key=None):
    return Obligation(kind="test", label=label, thunk=payload.run,
                      cache_key=key, group=group, payload=payload)


def _scheduler(**kw):
    kw.setdefault("jobs", 2)
    kw.setdefault("backend", "process")
    kw.setdefault("cache", False)
    kw.setdefault("telemetry", Telemetry())
    return ObligationScheduler(**kw)


class TestProcessScheduling:
    def test_results_in_input_order_in_workers(self):
        outcomes = _scheduler().run(
            [_ob(f"sq{i}", CallPayload(_pid_tag, (i,))) for i in range(6)])
        assert [o.value[1] for o in outcomes] == list(range(6))
        assert all(o.status == "ok" for o in outcomes)
        # the work genuinely left the parent process
        assert all(o.value[0] != os.getpid() for o in outcomes)

    def test_groups_run_serially_in_order(self):
        obs = [_ob(f"g{i}", CallPayload(_pid_tag, (i,)), group="g")
               for i in range(5)]
        outcomes = _scheduler(jobs=4).run(obs)
        assert [o.value[1] for o in outcomes] == list(range(5))

    def test_payloadless_obligation_runs_inline(self):
        """An obligation without a payload still completes under the
        process backend -- inline on the parent."""
        sentinel = []
        plain = Obligation(kind="test", label="inline",
                           thunk=lambda: sentinel.append(os.getpid()) or 7)
        shipped = _ob("shipped", CallPayload(_square, (3,)))
        outcomes = _scheduler().run([plain, shipped])
        assert outcomes[0].value == 7
        assert sentinel == [os.getpid()]      # the closure ran here
        assert outcomes[1].value == 9

    def test_on_error_record_and_retries(self):
        outcomes = _scheduler(on_error="record", retries=1).run(
            [_ob("ok", CallPayload(_square, (3,))),
             _ob("bad", CallPayload(_boom, (7,)))])
        assert outcomes[0].ok and outcomes[0].value == 9
        assert outcomes[1].status == "errored"
        assert "boom 7" in outcomes[1].error
        assert outcomes[1].attempts == 2      # original + one retry

    def test_on_error_raise_propagates_worker_exception(self):
        with pytest.raises(ValueError, match="boom 1"):
            _scheduler().run([_ob("bad", CallPayload(_boom, (1,)))])

    def test_unpicklable_payload_fails_loudly(self):
        bad = CallPayload(lambda: 1)          # lambdas do not pickle
        outcomes = _scheduler(on_error="record").run(
            [_ob("bad", bad), _ob("good", CallPayload(_square, (2,)))])
        assert outcomes[0].status == "errored"
        assert outcomes[1].ok and outcomes[1].value == 4

    def test_hard_timeout_preempts_busy_loop(self):
        """SIGALRM interrupts a pure-Python busy loop: the obligation
        comes back ``timed_out`` promptly and the worker stays healthy
        for the next obligation."""
        if not hasattr(__import__("signal"), "SIGALRM"):
            pytest.skip("no SIGALRM on this platform")
        started = time.perf_counter()
        outcomes = _scheduler(timeout_seconds=0.3, on_error="record").run(
            [_ob("slow", CallPayload(_busy_wait, (30.0,))),
             _ob("fast", CallPayload(_square, (5,)))])
        assert time.perf_counter() - started < 10.0
        assert outcomes[0].status == "timed_out"
        assert outcomes[1].ok and outcomes[1].value == 25

    def test_parent_side_cache_round_trip(self):
        cache = ResultCache()

        def obs():
            return [_ob(f"k{i}", CallPayload(_square, (i,)),
                        key=make_key("proc-cache", str(i)))
                    for i in range(4)]

        first = _scheduler(cache=cache).run(obs())
        second = _scheduler(cache=cache).run(obs())
        assert [o.value for o in first] == [0, 1, 4, 9]
        assert [o.status for o in first] == ["ok"] * 4
        assert [o.status for o in second] == ["cached"] * 4
        assert [o.value for o in second] == [0, 1, 4, 9]

    def test_stop_on_skips_tail(self):
        obs = [_ob(f"s{i}", CallPayload(_square, (i,)), group="g")
               for i in range(6)]
        outcomes = _scheduler().run(
            obs, stop_on=lambda o: o.ok and o.value == 4)
        statuses = [o.status for o in outcomes]
        assert statuses[:3] == ["ok", "ok", "ok"]
        assert statuses[3:] == ["skipped"] * 3

    def test_telemetry_recorded_in_parent(self):
        telemetry = Telemetry()
        _scheduler(telemetry=telemetry).run(
            [_ob(f"t{i}", CallPayload(_square, (i,))) for i in range(3)])
        stats = telemetry.stats()
        assert stats.computed.get("test", 0) == 3
        assert stats.total == 3


class TestCrossBackendDifferential:
    """The differential gates: every backend performs the same proof."""

    def _keys(self, result):
        return [outcome_key(o) for o in result.outcomes]

    def test_small_package_all_backends_identical(self):
        typed = analyze(parse_package(SRC))
        runs = {
            backend: ImplementationProof(
                typed, exec=ExecConfig(jobs=jobs, backend=backend,
                                       cache=False)).run()
            for backend, jobs in (("serial", 1), ("thread", 4),
                                  ("process", 4))
        }
        assert self._keys(runs["thread"]) == self._keys(runs["serial"])
        assert self._keys(runs["process"]) == self._keys(runs["serial"])
        assert runs["process"].auto_percent == runs["serial"].auto_percent

    def test_sampled_aes_corpus_identical(self):
        """serial jobs=1 vs thread jobs=4 vs process jobs=4 over a
        deterministic sample of the annotated AES package's subprograms
        (the full corpus runs in benchmarks/bench_scheduler.py)."""
        from repro.aes.annotations import annotated_package
        from repro.aes.proof_scripts import aes_proof_scripts

        typed = annotated_package()
        sample = sorted(typed.signatures)[:6]
        scripts = aes_proof_scripts()

        def run(backend, jobs):
            return ImplementationProof(
                typed, scripts=scripts,
                exec=ExecConfig(jobs=jobs, backend=backend,
                                cache=False)).run(sample)

        serial = run("serial", 1)
        thread = run("thread", 4)
        process = run("process", 4)
        assert serial.total_vcs > 0
        assert self._keys(thread) == self._keys(serial)
        assert self._keys(process) == self._keys(serial)

    def test_implication_proof_identical(self):
        from repro.aes.annotations import annotated_package
        from repro.aes.fips197 import fips197_theory
        from repro.extract import extract_specification
        from repro.implication import prove_implication

        theory = extract_specification(annotated_package()).theory

        def key(res):
            return ([(o.lemma.name, o.proved, o.evidence, o.is_proof,
                      o.detail, o.manual_steps) for o in res.outcomes],
                    res.tcc_total, res.tcc_proved, res.tcc_subsumed,
                    res.tcc_unproved)

        serial = prove_implication(
            fips197_theory(), theory, exec=ExecConfig(jobs=1, cache=False))
        process = prove_implication(
            fips197_theory(), theory,
            exec=ExecConfig(jobs=2, backend="process", cache=False))
        assert key(process) == key(serial)
        assert process.holds and serial.holds
        # the obligation's decode re-attaches the parent's lemma objects
        # (not the stripped worker-side copies)
        assert all(o.lemma is not None for o in process.outcomes)
        assert [o.lemma.name for o in process.outcomes] == \
            [o.lemma.name for o in serial.outcomes]

    def test_differential_trials_identical(self):
        from repro.aes.blocks import transformation_blocks, cipher_sampler
        from repro.aes.optimized import optimized_source
        from repro.refactor import RefactoringEngine

        def run(config):
            engine = RefactoringEngine(
                parse_package(optimized_source()),
                observables=["Cipher", "Inv_Cipher"],
                check="differential", trials=4,
                samplers={"Cipher": cipher_sampler,
                          "Inv_Cipher": cipher_sampler},
                exec=config)
            apps = []
            for index, transformations in transformation_blocks():
                if index > 1:
                    break
                for transformation in transformations:
                    apps.append(engine.apply(transformation))
            return [(a.transformation, a.preserved,
                     tuple((t.status, t.evidence, t.trials, t.holds)
                           for t in a.theorems))
                    for a in apps]

        serial = run(ExecConfig(jobs=1, cache=False))
        process = run(ExecConfig(jobs=2, backend="process", cache=False))
        assert process == serial
