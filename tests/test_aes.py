"""AES case-study tests: GF arithmetic, both implementations, the
specification, the transformation pipeline, extraction and implication."""

import pytest

from repro.aes import gf
from repro.aes.annotations import annotated_package
from repro.aes.fips197 import (
    fips197_theory, validate_against_vectors,
)
from repro.aes.optimized import (
    optimized_package, run_cipher, run_inv_cipher, validate_optimized,
)
from repro.aes.refactored import refactored_package, validate_refactored
from repro.aes.vectors import APPENDIX_B, FIPS197_VECTORS
from repro.lang import count_annotations


class TestGF:
    def test_sbox_known_values(self):
        s = gf.sbox()
        assert s[0x00] == 0x63
        assert s[0x01] == 0x7C
        assert s[0x53] == 0xED
        assert s[0xFF] == 0x16

    def test_inv_sbox_inverts(self):
        s, si = gf.sbox(), gf.inv_sbox()
        assert all(si[s[x]] == x for x in range(256))

    def test_xtime(self):
        assert gf.xtime(0x57) == 0xAE
        assert gf.xtime(0xAE) == 0x47  # wraps through the polynomial

    def test_gmul_fips_example(self):
        # FIPS-197 section 4.2: {57} x {13} = {fe}
        assert gf.gmul(0x57, 0x13) == 0xFE

    def test_gmul_commutative_samples(self):
        for a, b in ((3, 7), (0x57, 0x83), (255, 254)):
            assert gf.gmul(a, b) == gf.gmul(b, a)

    def test_ginv(self):
        assert gf.ginv(0) == 0
        assert all(gf.gmul(x, gf.ginv(x)) == 1 for x in range(1, 256))

    def test_te_table_structure(self):
        te = gf.te_tables()
        s = gf.sbox()
        x = 0x42
        v = s[x]
        expected = (gf.gmul(v, 2) << 24) | (v << 16) | (v << 8) | gf.gmul(v, 3)
        assert te[0][x] == expected
        assert te[1][x] == gf.rotr32(te[0][x], 8)

    def test_td_inverts_te_mixing(self):
        # Td(Te-composition) realizes InvMixColumns o MixColumns = identity
        # at the word level: check via the cipher round trip instead of
        # algebra -- covered by the vector tests below.
        assert len(gf.td_tables()) == 4


class TestImplementations:
    def test_optimized_against_fips_vectors(self):
        assert validate_optimized()

    def test_refactored_against_fips_vectors(self):
        assert validate_refactored()

    def test_spec_against_fips_vectors(self):
        assert validate_against_vectors()

    def test_appendix_b_example(self):
        got = run_cipher(optimized_package(), APPENDIX_B.key,
                         APPENDIX_B.nk, APPENDIX_B.plaintext)
        assert got == APPENDIX_B.ciphertext

    def test_roundtrip_random(self):
        import random
        rng = random.Random(7)
        typed = optimized_package()
        for nk in (4, 6, 8):
            key = [rng.randrange(256) for _ in range(4 * nk)]
            block = [rng.randrange(256) for _ in range(16)]
            ct = run_cipher(typed, key, nk, block)
            back = run_inv_cipher(typed, key, nk, ct)
            assert back == tuple(block)

    def test_optimized_equals_refactored(self):
        import random
        rng = random.Random(11)
        opt, ref = optimized_package(), refactored_package()
        from repro.lang import Interpreter
        for _ in range(4):
            nk = rng.choice((4, 6, 8))
            key = [rng.randrange(256) for _ in range(32)]
            block = [rng.randrange(256) for _ in range(16)]
            a = Interpreter(opt).call_procedure(
                "Cipher", [key, nk, block, None])["Output"]
            b = Interpreter(ref).call_procedure(
                "Cipher", [key, nk, block, None])["Output"]
            assert a == b


class TestPipeline:
    def test_early_blocks(self):
        from repro.aes.blocks import AESPipeline
        pipeline = AESPipeline(trials=2)
        results = pipeline.run(upto=2)
        assert [r.index for r in results] == [0, 1, 2]
        # Block 1 rerolled the unrolled rounds: statement count collapses.
        from repro.metrics import element_metrics
        loc0 = element_metrics(results[0].typed.package).logical_sloc
        loc1 = element_metrics(results[1].typed.package).logical_sloc
        assert loc1 < loc0 / 2

    def test_full_pipeline_reaches_refactored_source(self):
        from repro.aes.blocks import AESPipeline
        from repro.aes.refactored import refactored_source
        from repro.lang import parse_package, print_package
        pipeline = AESPipeline(trials=2)
        results = pipeline.run()
        expected = print_package(parse_package(refactored_source()))
        assert results[-1].package_text == expected
        counts = pipeline.category_counts(results)
        # Paper: ~50 transformations in 8 categories.
        assert sum(counts.values()) >= 50
        assert len(counts) == 8

    def test_every_application_preserved(self):
        from repro.aes.blocks import AESPipeline
        pipeline = AESPipeline(trials=2)
        results = pipeline.run(upto=5)
        for block in results:
            for app in block.applications:
                assert app.preserved, (block.index, app.description)


class TestAnnotationsAndExtraction:
    def test_table1_counts(self):
        counts = count_annotations(annotated_package().package)
        # Paper shape: posts dominate, then invariants, then proof
        # material; preconditions are fewest.
        assert counts.preconditions < counts.proof_functions_rules_other
        assert counts.postconditions > counts.invariants_and_asserts
        assert counts.total > 100

    def test_match_ratio_final(self):
        from repro.extract import extract_skeleton, match_ratio
        ratio = match_ratio(fips197_theory(),
                            extract_skeleton(refactored_package()))
        assert ratio.percent > 90.0

    def test_match_ratio_original_low(self):
        from repro.extract import extract_skeleton, match_ratio
        ratio = match_ratio(fips197_theory(),
                            extract_skeleton(optimized_package()))
        assert ratio.percent < 30.0

    def test_extracted_spec_evaluates_vectors(self):
        from repro.extract import extract_specification
        from repro.spec import SpecEvaluator
        theory = extract_specification(refactored_package()).theory
        ev = SpecEvaluator(theory)
        for v in FIPS197_VECTORS:
            got = ev.call(f"AES{v.nk * 32}", [v.key, v.plaintext])
            assert tuple(got) == v.ciphertext

    def test_implication_theorem_holds_as_proof(self):
        from repro.extract import extract_specification
        from repro.implication import prove_implication
        theory = extract_specification(refactored_package()).theory
        result = prove_implication(fips197_theory(), theory)
        assert result.holds
        assert result.is_proof  # no sampled evidence anywhere
        # Paper: 32 major lemmas; ours is the same order.
        assert 25 <= result.lemma_count <= 45

    def test_implication_fails_on_wrong_spec(self):
        from repro.extract import extract_specification
        from repro.implication import prove_implication
        from repro.spec import parse_theory
        from repro.aes.fips197 import fips197_source
        # Corrupt the original spec's ShiftRows: the lemma must be refuted.
        bad = fips197_source().replace(
            "S[4 * ((I DIV 4 + I MOD 4) MOD 4) + I MOD 4]",
            "S[4 * ((I DIV 4 + I MOD 4) MOD 4) + (I + 1) MOD 4]")
        theory = extract_specification(refactored_package()).theory
        result = prove_implication(parse_theory(bad), theory)
        assert not result.holds
