"""The examples must stay runnable (they are part of the public API)."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs_and_verifies(capsys):
    module = _load("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "VERIFIED: True" in out
    assert "preservation: proved" in out


def test_examples_importable():
    # The heavier examples are exercised by the benchmark harness; here we
    # only check they load (syntax, imports) without running main().
    for name in ("aes_verification", "defect_detection",
                 "metrics_guided_refactoring"):
        module = _load(name)
        assert hasattr(module, "main")
