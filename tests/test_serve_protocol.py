"""Serve-layer unit tests: protocol validation, lane/config flag
parsing (the ``--jobs 0`` loud-failure discipline), the durable
journal, atomic writes, live event subscription, ExecConfig codecs."""

import json
import os
import threading

import pytest

from repro.exec import (
    ExecConfig, RetryPolicy, Telemetry, atomic_write_json,
    atomic_write_text, percentile,
)
from repro.exec import events as ev
from repro.serve import (
    DEFAULT_LANES, Journal, ProtocolError, QueueItem, ServeConfig,
    decode_line, default_lane, encode_message, normalize_submit,
    parse_lanes,
)
from repro.protocol import PROTOCOL_VERSION, check_protocol_version
from repro.serve.cli import build_config

SOURCE = "package P is end P;"


def submit_msg(**overrides):
    message = {"op": "submit", "kind": "prove",
               "package": {"source": SOURCE}}
    message.update(overrides)
    return message


class TestWireFormat:
    def test_round_trip(self):
        line = encode_message({"op": "ping", "payload": 1})
        assert line.endswith("\n") and "\n" not in line[:-1]
        assert decode_line(line) == {"op": "ping", "payload": 1}

    def test_bytes_accepted(self):
        assert decode_line(b'{"op":"status"}\n') == {"op": "status"}

    def test_not_json(self):
        with pytest.raises(ProtocolError) as err:
            decode_line("{nope\n")
        assert err.value.code == "bad_request"

    def test_not_object(self):
        with pytest.raises(ProtocolError):
            decode_line("[1,2]\n")

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as err:
            decode_line('{"op":"frobnicate"}\n')
        assert "op" in err.value.detail

    def test_oversize_line(self):
        with pytest.raises(ProtocolError) as err:
            decode_line('{"op":"ping","pad":"' + "x" * (9 << 20) + '"}\n')
        assert "exceeds" in err.value.detail


class TestProtocolVersioning:
    """The shared version surface (repro.protocol): the serve daemon
    tolerates version-less clients, rejects mismatched ones, and the
    serve layer re-exports the shared constants unchanged."""

    def test_absent_version_tolerated(self):
        # version-1 clients predate the field entirely
        assert decode_line('{"op":"status"}\n') == {"op": "status"}
        check_protocol_version(None, surface="t")

    def test_current_version_accepted(self):
        message = decode_line(
            '{"op":"status","protocol":%d}\n' % PROTOCOL_VERSION)
        assert message["protocol"] == PROTOCOL_VERSION

    def test_mismatched_version_rejected(self):
        with pytest.raises(ProtocolError) as err:
            decode_line('{"op":"status","protocol":1}\n')
        assert err.value.code == "protocol_mismatch"
        assert str(PROTOCOL_VERSION) in err.value.detail

    def test_required_mode_rejects_absent_version(self):
        # the farm handshake refuses version-less workers
        with pytest.raises(ProtocolError) as err:
            check_protocol_version(None, surface="farm", required=True)
        assert err.value.code == "protocol_mismatch"

    def test_serve_reexports_the_shared_surface(self):
        import repro.protocol as shared
        import repro.serve.protocol as serve_protocol

        assert serve_protocol.PROTOCOL_VERSION is shared.PROTOCOL_VERSION
        assert serve_protocol.ERROR_CODES is shared.ERROR_CODES
        assert serve_protocol.ProtocolError is shared.ProtocolError
        assert serve_protocol.encode_message is shared.encode_message
        assert "protocol_mismatch" in shared.ERROR_CODES
        assert "quarantined" in shared.ERROR_CODES

    def test_error_envelope_round_trip(self):
        err = ProtocolError("protocol_mismatch", "skewed", request_id="r1")
        message = err.to_message()
        assert message == {"reply": "error", "code": "protocol_mismatch",
                           "detail": "skewed", "id": "r1"}

    def test_error_message_shape(self):
        message = ProtocolError("backpressure", "full", "r1").to_message()
        assert message == {"reply": "error", "code": "backpressure",
                           "detail": "full", "id": "r1"}


class TestNormalizeSubmit:
    def test_defaults(self):
        req = normalize_submit(submit_msg())
        assert req["kind"] == "prove"
        assert req["lane"] == "bulk"       # proofs default to bulk
        assert req["namespace"] == "public"
        assert req["scripts"] is True
        assert req["id"] is None

    def test_examine_defaults_interactive(self):
        assert default_lane("examine") == "interactive"
        req = normalize_submit(submit_msg(kind="examine"))
        assert req["lane"] == "interactive"

    def test_explicit_lane_override(self):
        req = normalize_submit(submit_msg(lane="interactive"))
        assert req["lane"] == "interactive"

    def test_bad_kind(self):
        with pytest.raises(ProtocolError):
            normalize_submit(submit_msg(kind="transmogrify"))

    def test_bad_lane(self):
        with pytest.raises(ProtocolError):
            normalize_submit(submit_msg(lane="express"))

    def test_namespace_must_be_path_safe(self):
        # The namespace names an on-disk cache directory: traversal and
        # separator characters must never reach the filesystem.
        for bad in ("../evil", "a/b", "", ".hidden", "a" * 65, 7):
            with pytest.raises(ProtocolError):
                normalize_submit(submit_msg(namespace=bad))

    def test_package_required(self):
        with pytest.raises(ProtocolError):
            normalize_submit({"op": "submit", "kind": "prove"})

    def test_package_source_xor_corpus(self):
        with pytest.raises(ProtocolError):
            normalize_submit(submit_msg(
                package={"source": SOURCE, "corpus": "aes"}))

    def test_unknown_corpus(self):
        with pytest.raises(ProtocolError):
            normalize_submit(submit_msg(package={"corpus": "des"}))

    def test_refactor_requires_corpus(self):
        with pytest.raises(ProtocolError):
            normalize_submit(submit_msg(kind="refactor"))
        req = normalize_submit(submit_msg(kind="refactor",
                                          package={"corpus": "aes"}))
        assert req["package"] == {"corpus": "aes"}

    def test_subprograms_validated(self):
        req = normalize_submit(submit_msg(subprograms=["Invert"]))
        assert req["subprograms"] == ["Invert"]
        for bad in ([], [1], "Invert"):
            with pytest.raises(ProtocolError):
                normalize_submit(submit_msg(subprograms=bad))

    def test_params_ranges(self):
        req = normalize_submit(submit_msg(
            kind="refactor", package={"corpus": "aes"},
            params={"upto": 3, "trials": 2}))
        assert req["params"] == {"upto": 3, "trials": 2}
        for bad in ({"upto": 15}, {"upto": -1}, {"trials": 0},
                    {"trials": 10001}, {"bogus": 1}, "x"):
            with pytest.raises(ProtocolError):
                normalize_submit(submit_msg(
                    kind="refactor", package={"corpus": "aes"},
                    params=bad))

    def test_exec_validated_but_kept_as_data(self):
        req = normalize_submit(submit_msg(exec={"jobs": 2,
                                                "backend": "thread"}))
        assert req["exec"] == {"jobs": 2, "backend": "thread"}
        with pytest.raises(ProtocolError):
            normalize_submit(submit_msg(exec={"jobs": 0}))

    def test_exec_cannot_name_caches(self):
        # The isolation boundary: a request must never smuggle a cache
        # (someone else's namespace) or telemetry object reference in.
        for key in ("cache", "telemetry"):
            with pytest.raises(ProtocolError):
                normalize_submit(submit_msg(exec={key: "anything"}))

    def test_client_id_validated(self):
        assert normalize_submit(submit_msg(id="job-1"))["id"] == "job-1"
        with pytest.raises(ProtocolError):
            normalize_submit(submit_msg(id="../sneaky"))


class TestLanesParsing:
    def test_valid(self):
        assert parse_lanes("interactive=2,bulk=1") == \
            {"interactive": 2, "bulk": 1}
        # unmentioned lanes get zero workers (admit-only)
        assert parse_lanes("interactive=1") == \
            {"interactive": 1, "bulk": 0}

    @pytest.mark.parametrize("spec", [
        "", "  ", "interactive", "express=1", "interactive=1,interactive=2",
        "interactive=x", "interactive=-1", "interactive=0,bulk=0",
    ])
    def test_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_lanes(spec)


class TestServeConfig:
    def test_defaults(self):
        config = ServeConfig()
        assert config.lanes == DEFAULT_LANES
        assert config.max_queue == 64

    @pytest.mark.parametrize("max_queue", [0, -1, True, "many"])
    def test_bad_max_queue(self, max_queue):
        # Same stance as --jobs 0: a queue bound of 0 would reject every
        # submit as backpressure; fail loudly at construction.
        with pytest.raises(ValueError):
            ServeConfig(max_queue=max_queue)

    def test_bad_lanes(self):
        with pytest.raises(ValueError):
            ServeConfig(lanes={"express": 1})
        with pytest.raises(ValueError):
            ServeConfig(lanes={"interactive": 0, "bulk": 0})
        with pytest.raises(ValueError):
            ServeConfig(lanes={"interactive": -1, "bulk": 2})

    def test_bad_default_exec(self):
        with pytest.raises(TypeError):
            ServeConfig(default_exec={"jobs": 2})


class TestCliFlags:
    def test_defaults(self):
        config = build_config([])
        assert config.lanes == DEFAULT_LANES
        assert config.max_queue == 64
        assert config.state_dir is None

    def test_full_parse(self, tmp_path):
        config = build_config([
            "--state-dir", str(tmp_path), "--lanes", "interactive=2,bulk=3",
            "--max-queue", "9", "--jobs", "4", "--backend", "serial",
            "--timeout", "2.5", "--telemetry-out", str(tmp_path / "t.json"),
        ])
        assert config.lanes == {"interactive": 2, "bulk": 3}
        assert config.max_queue == 9
        assert config.default_exec.jobs == 4
        assert config.default_exec.backend == "serial"
        assert config.default_exec.timeout_seconds == 2.5

    @pytest.mark.parametrize("argv", [
        ["--max-queue", "0"], ["--max-queue", "lots"],
        ["--lanes", "express=1"], ["--lanes", "interactive=0,bulk=0"],
        ["--lanes", "interactive"], ["--jobs", "0"], ["--jobs", "x"],
        ["--backend", "quantum"], ["--timeout", "-1"],
        ["--timeout", "soon"],
    ])
    def test_rejections_are_loud(self, argv):
        with pytest.raises(SystemExit) as err:
            build_config(argv)
        assert "error:" in str(err.value)


class TestAtomicWrites:
    def test_write_and_replace(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, "one")
        assert target.read_text() == "one"
        atomic_write_text(target, "two")
        assert target.read_text() == "two"
        # no temp-file droppings
        assert os.listdir(tmp_path) == ["out.json"]

    def test_json_helper(self, tmp_path):
        target = tmp_path / "payload.json"
        atomic_write_json(target, {"a": [1, 2]})
        assert json.loads(target.read_text()) == {"a": [1, 2]}

    def test_failure_cleans_up(self, tmp_path):
        class Boom:
            def __repr__(self):
                raise RuntimeError("unserializable")
        with pytest.raises(TypeError):
            atomic_write_json(tmp_path / "x.json", {"bad": object()})
        assert os.listdir(tmp_path) == []


class TestEventSubscription:
    def test_live_delivery_and_close(self):
        telemetry = Telemetry()
        seen = []
        subscription = telemetry.subscribe(seen.append)
        telemetry.record(ev.SUBMITTED, "vc", "a")
        telemetry.record(ev.FINISHED, "vc", "a", wall=0.1)
        subscription.close()
        telemetry.record(ev.SUBMITTED, "vc", "b")
        assert [e.event for e in seen] == ["submitted", "finished"]
        assert not subscription.active

    def test_context_manager(self):
        telemetry = Telemetry()
        seen = []
        with telemetry.subscribe(seen.append):
            telemetry.record(ev.SUBMITTED, "vc", "a")
        telemetry.record(ev.SUBMITTED, "vc", "b")
        assert len(seen) == 1

    def test_raising_subscriber_is_detached_not_fatal(self):
        telemetry = Telemetry()

        def explode(event):
            raise RuntimeError("subscriber bug")

        subscription = telemetry.subscribe(explode)
        telemetry.record(ev.SUBMITTED, "vc", "a")   # must not raise
        assert not subscription.active
        assert isinstance(subscription.error, RuntimeError)
        # the log itself is unaffected
        assert len(telemetry.events()) == 1

    def test_delivery_from_recorder_thread(self):
        telemetry = Telemetry()
        threads = []
        telemetry.subscribe(
            lambda e: threads.append(threading.current_thread().name))
        worker = threading.Thread(
            target=lambda: telemetry.record(ev.SUBMITTED, "vc", "a"),
            name="recorder")
        worker.start()
        worker.join()
        assert threads == ["recorder"]

    def test_percentile_export(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0
        assert percentile([], 0.5) == 0.0


class TestExecConfigCodec:
    def test_round_trip(self):
        config = ExecConfig(jobs=3, backend="process", timeout_seconds=1.5,
                            retries=RetryPolicy(retries=2),
                            on_error="record", cache_memory_entries=10)
        clone = ExecConfig.from_json(config.to_json())
        assert clone.jobs == 3 and clone.backend == "process"
        assert clone.timeout_seconds == 1.5
        assert clone.retries.retries == 2
        assert clone.on_error == "record"
        assert clone.cache_memory_entries == 10

    def test_json_is_plain_data(self):
        json.dumps(ExecConfig(retries=RetryPolicy()).to_json())

    def test_unknown_keys_rejected(self):
        for payload in ({"cache": None}, {"telemetry": None},
                        {"jobz": 1}, "x", [1]):
            with pytest.raises((ValueError, TypeError)):
                ExecConfig.from_json(payload)


class TestJournal:
    def item(self, request_id, lane="bulk"):
        return QueueItem(request_id=request_id, lane=lane,
                         namespace="default",
                         request={"kind": "prove", "id": request_id},
                         enqueued_wall=1.0)

    def test_memory_only_shell(self):
        journal = Journal(None)
        assert not journal.durable
        journal.append_enqueue(self.item("a"))
        assert journal.replay() == []

    def test_replay_pending_only(self, tmp_path):
        journal = Journal(tmp_path)
        journal.append_enqueue(self.item("a"))
        journal.append_enqueue(self.item("b", lane="interactive"))
        journal.append_done("a", "ok")
        pending = Journal(tmp_path).replay()
        assert [item.request_id for item in pending] == ["b"]
        assert pending[0].lane == "interactive"
        assert pending[0].request == {"kind": "prove", "id": "b"}

    def test_result_file_counts_as_done(self, tmp_path):
        # crash after write_result but before append_done: the persisted
        # result is authoritative, the request must not re-run
        journal = Journal(tmp_path)
        journal.append_enqueue(self.item("a"))
        journal.write_result("a", {"reply": "result", "id": "a"})
        assert Journal(tmp_path).replay() == []
        assert Journal(tmp_path).load_result("a")["id"] == "a"

    def test_torn_final_line_tolerated(self, tmp_path):
        journal = Journal(tmp_path)
        journal.append_enqueue(self.item("a"))
        journal.append_enqueue(self.item("b"))
        with open(journal.journal_path, "a") as handle:
            handle.write('{"op":"enqueue","id":"torn","la')   # kill -9 mid-write
        pending = Journal(tmp_path).replay()
        assert [item.request_id for item in pending] == ["a", "b"]

    def test_compact(self, tmp_path):
        journal = Journal(tmp_path)
        for name in "abc":
            journal.append_enqueue(self.item(name))
        journal.append_done("a", "ok")
        journal.append_done("b", "error")
        pending = journal.replay()
        journal.compact(pending)
        lines = journal.journal_path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["id"] == "c"

    def test_known_ids_across_restart(self, tmp_path):
        journal = Journal(tmp_path)
        journal.append_enqueue(self.item("a"))
        journal.write_result("b", {"reply": "result", "id": "b"})
        journal.append_done("b", "ok")
        assert Journal(tmp_path).known_ids() == {"a", "b"}
