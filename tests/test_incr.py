"""Incremental re-verification tests (DESIGN.md §15).

Three concerns, each pinned against the serial cold reference:

* **replay identity** -- an incremental run after an edit (none,
  body-only, spec-only, rename-only, seeded defect) must produce
  verdicts bit-identical to a cold run on the same source, while
  replaying exactly the unchanged cone;
* **degradation** -- every defective-manifest path (absent, truncated,
  garbage, wrong schema, wrong configuration scope, evicted cache
  entries, caching disabled) must fall back to a full re-run, never a
  wrong or missing verdict;
* the PR's serve-client satellites: ``ServeClient.wait`` timeout
  semantics (``Optional[float]``, fail-fast on a dead reader, suppressed
  exception chaining) and the monotonic queue-latency measurement.
"""

import asyncio
import json
import os
import random
import threading
import time

import pytest

from repro.exec import ExecConfig, ResultCache
from repro.incr import (
    MANIFEST_SCHEMA, ManifestStore, cone_fingerprints, plan_incremental,
    run_config_digest,
)
from repro.lang import analyze, parse_package
from repro.prover import ImplementationProof
from repro.serve import ProtocolError, ServeConfig, VerificationService
from repro.serve.client import ClientError, ServeClient
from repro.serve.journal import QueueItem
from repro.serve.protocol import normalize_submit
from repro.vcgen import ExaminerLimits

SRC = """
package P is
   type Byte is mod 256;
   type Arr is array (0 .. 7) of Byte;

   procedure Invert (A : in Arr; B : out Arr)
   --# post for all K in 0 .. 7 => (B (K) = (A (K) xor 255));
   is
   begin
      for I in 0 .. 7 loop
         --# assert for all K in 0 .. I - 1 => (B (K) = (A (K) xor 255));
         B (I) := A (I) xor 255;
      end loop;
   end Invert;

   procedure Invert_Twice (A : in Arr; B : out Arr)
   --# post for all K in 0 .. 7 => (B (K) = A (K));
   is
   begin
      for I in 0 .. 7 loop
         --# assert for all K in 0 .. I - 1 => (B (K) = A (K));
         B (I) := (A (I) xor 255) xor 255;
      end loop;
   end Invert_Twice;
end P;
"""

#: A body-only edit of Invert_Twice: a different (still correct)
#: double-inversion constant, so only Invert_Twice's cone changes.
SRC_BODY_EDIT = SRC.replace("(A (I) xor 255) xor 255",
                            "(A (I) xor 170) xor 170 xor 255 xor 255")

#: A spec-only edit of Invert: the same postcondition with the equality
#: flipped -- different text (and VCs), same meaning.
SRC_SPEC_EDIT = SRC.replace(
    "post for all K in 0 .. 7 => (B (K) = (A (K) xor 255));",
    "post for all K in 0 .. 7 => ((A (K) xor 255) = B (K));")

#: A rename-only edit: Invert_Twice (referenced by nothing) renamed.
SRC_RENAME = SRC.replace("Invert_Twice", "Twice_Invert")


def serial(cache):
    return ExecConfig(jobs=1, backend="serial", cache=cache)


def run_proof(source, *, manifest=None, incremental=False, cache=False,
              limits=None, typed=None):
    typed = typed if typed is not None else analyze(parse_package(source))
    return ImplementationProof(
        typed, exec=serial(cache), manifest=manifest,
        incremental=incremental, limits=limits).run()


def keys(result):
    return [(o.vc.subprogram, o.vc.name, o.vc.kind, o.stage,
             o.result.proved if o.result else None)
            for o in result.outcomes]


class TestReplayIdentity:
    def test_unchanged_rerun_replays_everything(self, tmp_path):
        cache = ResultCache()
        first = run_proof(SRC, manifest=tmp_path / "m", cache=cache)
        assert first.incremental is None   # not an incremental session
        second = run_proof(SRC, manifest=tmp_path / "m",
                           incremental=True, cache=cache)
        stats = second.incremental
        assert stats.replayed_vcs == first.total_vcs == 12
        assert stats.rechecked_vcs == 0
        assert stats.manifest_miss == 0
        assert stats.replayed_subprograms == 2
        assert keys(second) == keys(first)
        # positional/report identity, not just verdicts
        assert list(second.report.per_subprogram) == \
            list(first.report.per_subprogram)
        assert second.report.generated_bytes == first.report.generated_bytes
        assert second.report.simplified_bytes == \
            first.report.simplified_bytes
        assert second.auto_percent == first.auto_percent

    def test_body_edit_rechecks_only_changed_cone(self, tmp_path):
        cache = ResultCache()
        run_proof(SRC, manifest=tmp_path / "m", cache=cache)
        incr = run_proof(SRC_BODY_EDIT, manifest=tmp_path / "m",
                         incremental=True, cache=cache)
        assert incr.incremental.replayed_subprograms == 1   # Invert
        assert incr.incremental.rechecked_subprograms == 1
        assert incr.incremental.replayed_vcs == 6
        assert keys(incr) == keys(run_proof(SRC_BODY_EDIT))

    def test_spec_only_edit_rechecks_only_changed_cone(self, tmp_path):
        cache = ResultCache()
        run_proof(SRC, manifest=tmp_path / "m", cache=cache)
        incr = run_proof(SRC_SPEC_EDIT, manifest=tmp_path / "m",
                         incremental=True, cache=cache)
        assert incr.incremental.replayed_subprograms == 1   # Invert_Twice
        assert incr.incremental.rechecked_subprograms == 1
        assert keys(incr) == keys(run_proof(SRC_SPEC_EDIT))

    def test_rename_only_edit_never_replays_stale_names(self, tmp_path):
        # A rename changes the package's signature context, so *every*
        # cone re-checks -- conservative, and above all never a verdict
        # attributed to a name that no longer exists.
        cache = ResultCache()
        run_proof(SRC, manifest=tmp_path / "m", cache=cache)
        incr = run_proof(SRC_RENAME, manifest=tmp_path / "m",
                         incremental=True, cache=cache)
        assert incr.incremental.manifest_miss == 0
        assert incr.incremental.replayed_vcs == 0
        assert keys(incr) == keys(run_proof(SRC_RENAME))
        assert {o.vc.subprogram for o in incr.outcomes} == \
            {"Invert", "Twice_Invert"}

    def test_seeded_defect_edit_matches_cold(self, tmp_path):
        from repro.defects.seeder import random_mutation
        cache = ResultCache()
        typed = analyze(parse_package(SRC))
        run_proof(SRC, manifest=tmp_path / "m", cache=cache, typed=typed)
        mutation = random_mutation(typed, random.Random(7))
        assert mutation is not None
        incr = run_proof(None, manifest=tmp_path / "m", incremental=True,
                         cache=cache, typed=analyze(mutation.package))
        cold = run_proof(None, typed=analyze(mutation.package))
        assert keys(incr) == keys(cold)
        # the defective subprogram went through the full path
        assert incr.incremental.rechecked_subprograms >= 1

    def test_replay_is_fully_warm(self, tmp_path):
        # The replayed run must not re-examine: its wall time collapses
        # and the examiner never touches the replayed subprograms.
        cache = ResultCache()
        cold = run_proof(SRC, manifest=tmp_path / "m", cache=cache)
        warm = run_proof(SRC, manifest=tmp_path / "m", incremental=True,
                         cache=cache)
        assert warm.incremental.rechecked_vcs == 0
        assert warm.wall_seconds < cold.wall_seconds
        # replayed analyses carry the recorded scalars, zeroed hot-path
        for name, analysis in warm.report.per_subprogram.items():
            ref = cold.report.per_subprogram[name]
            assert analysis.work_units == ref.work_units
            assert analysis.index_hits == 0


class TestDegradation:
    def _warm(self, tmp_path, cache):
        first = run_proof(SRC, manifest=tmp_path / "m", cache=cache)
        return first, ManifestStore(tmp_path / "m").path_for("P")

    def test_truncated_manifest_degrades_to_full_run(self, tmp_path):
        cache = ResultCache()
        first, path = self._warm(tmp_path, cache)
        raw = path.read_text()
        path.write_text(raw[:len(raw) // 2])   # torn by a foreign writer
        incr = run_proof(SRC, manifest=tmp_path / "m", incremental=True,
                         cache=cache)
        assert incr.incremental.manifest_miss == 1
        assert incr.incremental.replayed_vcs == 0
        assert keys(incr) == keys(first)

    def test_garbage_manifest_degrades(self, tmp_path):
        cache = ResultCache()
        first, path = self._warm(tmp_path, cache)
        path.write_text("{this is not json")
        incr = run_proof(SRC, manifest=tmp_path / "m", incremental=True,
                         cache=cache)
        assert incr.incremental.manifest_miss == 1
        assert keys(incr) == keys(first)

    def test_wrong_schema_degrades(self, tmp_path):
        cache = ResultCache()
        first, path = self._warm(tmp_path, cache)
        data = json.loads(path.read_text())
        data["schema"] = "repro-incr/v0"
        path.write_text(json.dumps(data))
        incr = run_proof(SRC, manifest=tmp_path / "m", incremental=True,
                         cache=cache)
        assert incr.incremental.manifest_miss == 1
        assert keys(incr) == keys(first)

    def test_different_config_scope_degrades(self, tmp_path):
        # A manifest written under different examiner limits (a different
        # run_config_digest scope) must never validate.
        cache = ResultCache()
        first, _ = self._warm(tmp_path, cache)
        incr = run_proof(
            SRC, manifest=tmp_path / "m", incremental=True, cache=cache,
            limits=ExaminerLimits(max_wp_statements=100_001))
        assert incr.incremental.manifest_miss == 1
        assert keys(incr) == keys(first)

    def test_evicted_cache_entries_degrade(self, tmp_path):
        cache = ResultCache()
        first, _ = self._warm(tmp_path, cache)
        cache.clear()   # every recorded verdict evicted
        incr = run_proof(SRC, manifest=tmp_path / "m", incremental=True,
                         cache=cache)
        assert incr.incremental.manifest_miss == 0
        assert incr.incremental.evicted_fallbacks == 2
        assert incr.incremental.replayed_vcs == 0
        assert keys(incr) == keys(first)

    def test_caching_disabled_degrades(self, tmp_path):
        cache = ResultCache()
        first, _ = self._warm(tmp_path, cache)
        incr = run_proof(SRC, manifest=tmp_path / "m", incremental=True,
                         cache=False)
        assert incr.incremental.evicted_fallbacks == 2
        assert keys(incr) == keys(first)

    def test_partial_eviction_falls_back_per_subprogram(self, tmp_path):
        # Evict exactly one recorded verdict: its subprogram re-checks,
        # the other still replays.
        cache = ResultCache()
        first, path = self._warm(tmp_path, cache)
        data = json.loads(path.read_text())
        victim = next(row["cache_key"]
                      for row in data["subprograms"]["Invert"]["vcs"]
                      if row["cache_key"])
        cache._memory.pop(victim)
        incr = run_proof(SRC, manifest=tmp_path / "m", incremental=True,
                         cache=cache)
        assert incr.incremental.evicted_fallbacks == 1
        assert incr.incremental.replayed_subprograms == 1
        assert keys(incr) == keys(first)

    def test_incremental_without_manifest_is_loud(self):
        typed = analyze(parse_package(SRC))
        with pytest.raises(ValueError, match="manifest"):
            ImplementationProof(typed, incremental=True)

    def test_manifest_store_load_paths(self, tmp_path):
        store = ManifestStore(tmp_path)
        assert store.load("P", "digest") is None          # absent
        store.save("P", "pkgfp", "digest", {})
        assert store.load("P", "digest")["schema"] == MANIFEST_SCHEMA
        assert store.load("P", "other-digest") is None    # wrong scope
        assert store.load("Q", "digest") is None          # wrong package

    def test_plan_requires_valid_entries(self):
        # A manifest whose entry rows are malformed degrades per
        # subprogram instead of crashing the planner.
        typed = analyze(parse_package(SRC))
        cones = cone_fingerprints(typed)
        manifest = {"subprograms": {
            "Invert": {"cone_fp": cones["Invert"],
                       "vcs": ["not-a-dict"]}}}
        replayed, stats = plan_incremental(
            manifest, typed, ["Invert", "Invert_Twice"], ResultCache())
        assert replayed == {}
        assert stats.evicted_fallbacks == 1
        assert stats.rechecked_subprograms == 2


class TestConeFingerprints:
    def test_body_edit_localizes(self):
        a = cone_fingerprints(analyze(parse_package(SRC)))
        b = cone_fingerprints(analyze(parse_package(SRC_BODY_EDIT)))
        assert a["Invert"] == b["Invert"]
        assert a["Invert_Twice"] != b["Invert_Twice"]

    def test_reference_closure_widens_cone(self):
        # A caller's cone includes its callee: editing the callee must
        # invalidate the caller too.
        src = SRC.replace("end P;", """
   function Helper (X : Byte) return Byte
   --# post Helper (X) = (X xor 255);
   is
   begin
      return X xor 255;
   end Helper;
end P;""")
        caller = src.replace("B (I) := A (I) xor 255;",
                             "B (I) := Helper (A (I));")
        a = cone_fingerprints(analyze(parse_package(caller)))
        edited = caller.replace("return X xor 255;",
                                "return 255 xor X;")
        b = cone_fingerprints(analyze(parse_package(edited)))
        assert a["Helper"] != b["Helper"]
        assert a["Invert"] != b["Invert"]          # cone includes Helper
        assert a["Invert_Twice"] == b["Invert_Twice"]

    def test_config_digest_covers_limits(self):
        assert run_config_digest("cfg", ExaminerLimits()) != \
            run_config_digest("cfg",
                              ExaminerLimits(max_wp_statements=7))
        assert run_config_digest("a") != run_config_digest("b")


# ---------------------------------------------------------------------------
# ServeClient.wait satellites
# ---------------------------------------------------------------------------

class _BlockingReadable:
    """A readable that blocks until fed lines (or closed)."""

    def __init__(self):
        self._queue = []
        self._cv = threading.Condition()
        self._done = False

    def feed(self, line: bytes):
        with self._cv:
            self._queue.append(line)
            self._cv.notify_all()

    def close(self):
        with self._cv:
            self._done = True
            self._cv.notify_all()

    def __iter__(self):
        return self

    def __next__(self):
        with self._cv:
            self._cv.wait_for(lambda: self._queue or self._done)
            if self._queue:
                return self._queue.pop(0)
            raise StopIteration


class _DyingReadable:
    """A readable whose iteration dies with a transport error -- the
    reader thread exits without ever seeing a clean end-of-stream."""

    def __iter__(self):
        return self

    def __next__(self):
        raise OSError("connection reset")


def make_client(readable, send_line=None):
    return ServeClient(send_line or (lambda data: None), lambda: None,
                       readable=readable)


class TestClientWait:
    def test_timeout_none_blocks_until_result(self):
        readable = _BlockingReadable()
        client = make_client(readable)
        result_line = json.dumps(
            {"reply": "result", "id": "r1", "status": "ok"}
        ).encode() + b"\n"
        threading.Timer(0.2, readable.feed, [result_line]).start()
        started = time.monotonic()
        message = client.wait("r1", timeout=None)
        assert message["status"] == "ok"
        assert time.monotonic() - started >= 0.15
        readable.close()

    def test_timeout_message_formats_seconds(self):
        client = make_client(_BlockingReadable())
        with pytest.raises(TimeoutError) as exc_info:
            client.wait("r1", timeout=0.05)
        assert "within 0.05s" in str(exc_info.value)
        assert "None" not in str(exc_info.value)

    def test_dead_reader_fails_fast(self):
        # Reader death without a clean close must resolve the wait
        # immediately as connection_closed, not after the full timeout.
        client = make_client(_DyingReadable())
        started = time.monotonic()
        with pytest.raises(ClientError) as exc_info:
            client.wait("r1", timeout=30.0)
        assert time.monotonic() - started < 5.0
        assert exc_info.value.message["code"] == "connection_closed"
        # `from None`: no misleading queue.Empty chained underneath
        assert exc_info.value.__suppress_context__

    def test_dead_transport_send_does_not_mask_closure(self):
        def broken_send(data):
            raise BrokenPipeError("stdin closed")
        client = make_client(_DyingReadable(), send_line=broken_send)
        started = time.monotonic()
        with pytest.raises(ClientError) as exc_info:
            client.wait("r1", timeout=30.0)
        assert time.monotonic() - started < 5.0
        assert exc_info.value.message["code"] == "connection_closed"


# ---------------------------------------------------------------------------
# Monotonic queue latency
# ---------------------------------------------------------------------------

TINY = "package T is procedure Noop is begin null; end Noop; end T;"


class TestQueueLatency:
    def test_queue_item_measures_on_monotonic(self):
        item = QueueItem(request_id="r1", lane="bulk", namespace="ns",
                         request={}, enqueued_wall=time.time())
        assert abs(item.enqueued_mono - time.monotonic()) < 1.0
        # the wire record carries wall time only; replay re-stamps
        replayed = QueueItem.from_json(item.to_json())
        assert "enqueued_mono" not in item.to_json()
        assert replayed.enqueued_mono >= item.enqueued_mono

    def test_queue_seconds_immune_to_wall_clock_steps(self):
        # A forward wall-clock step of an hour between admission and
        # dispatch: the old wall-delta measurement would report ~3600s
        # (or clamp a backward step to 0); the monotonic measurement
        # reports the actual queueing delay.
        async def body():
            service = VerificationService(ServeConfig())
            request = normalize_submit(
                {"op": "submit", "kind": "examine",
                 "package": {"source": TINY}, "id": "r1"})
            request["id"] = "r1"
            item = QueueItem(
                request_id="r1", lane="interactive", namespace="public",
                request=request,
                enqueued_wall=time.time() - 3600.0,   # clock stepped
                enqueued_mono=time.monotonic() - 0.25)
            await service._run_item("interactive", item)
            return service._results["r1"]

        message = asyncio.run(body())
        assert message["status"] == "ok"
        assert 0.2 <= message["queue_seconds"] < 60.0


# ---------------------------------------------------------------------------
# Serve-layer incremental prove
# ---------------------------------------------------------------------------

async def run_service(config, body):
    service = VerificationService(config)
    await service.start()
    try:
        return await body(service)
    finally:
        await service.stop()


def submit_msg(**overrides):
    message = {"op": "submit", "kind": "prove",
               "package": {"source": SRC}, "namespace": "alice"}
    message.update(overrides)
    return message


def verdict_keys(message):
    return [(v["subprogram"], v["vc"], v["vc_kind"], v["stage"],
             v["proved"]) for v in message["result"]["verdicts"]]


class TestServeIncremental:
    def test_incremental_prove_replays_on_second_request(self, tmp_path):
        async def body(service):
            first = await service.submit(
                submit_msg(id="a", incremental=True))
            cold = await service.wait(first["id"])
            second = await service.submit(
                submit_msg(id="b", incremental=True))
            warm = await service.wait(second["id"])
            return cold, warm

        cold, warm = asyncio.run(
            run_service(ServeConfig(state_dir=tmp_path / "state"), body))
        assert cold["status"] == warm["status"] == "ok"
        assert verdict_keys(warm) == verdict_keys(cold)
        assert cold["result"]["incremental"]["incr_manifest_miss"] == 1
        stats = warm["result"]["incremental"]
        assert stats["incr_replayed"] == 12
        assert stats["incr_rechecked"] == 0
        # the manifest landed under the tenant's namespace
        assert (tmp_path / "state" / "manifest" / "alice"
                / "P.json").is_file()

    def test_incremental_is_tenant_scoped(self, tmp_path):
        async def body(service):
            first = await service.submit(
                submit_msg(id="a", incremental=True))
            await service.wait("a")
            second = await service.submit(
                submit_msg(id="b", incremental=True, namespace="bob"))
            return await service.wait("b")

        warm = asyncio.run(
            run_service(ServeConfig(state_dir=tmp_path / "state"), body))
        # bob has no manifest (and no warm cache): full cold run
        assert warm["result"]["incremental"]["incr_manifest_miss"] == 1
        assert warm["result"]["incremental"]["incr_replayed"] == 0

    def test_incremental_requires_durable_daemon(self):
        async def body(service):
            accepted = await service.submit(
                submit_msg(id="a", incremental=True))
            return await service.wait(accepted["id"])

        message = asyncio.run(run_service(ServeConfig(), body))
        assert message["status"] == "error"
        assert "durable" in message["error"]

    def test_protocol_validation(self):
        with pytest.raises(ProtocolError, match="boolean"):
            normalize_submit(submit_msg(incremental="yes"))
        with pytest.raises(ProtocolError, match="prove"):
            normalize_submit(submit_msg(kind="examine",
                                        incremental=True))
        assert normalize_submit(submit_msg())["incremental"] is False
        assert normalize_submit(
            submit_msg(incremental=True))["incremental"] is True
