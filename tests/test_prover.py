"""Prover tests: ground evaluation, congruence closure, auto prover,
tactics, and the implementation-proof session."""

import pytest

from repro.lang import analyze, parse_package
from repro.logic import (
    TRUE, add, apply, band, conj, eq, forall, implies, intc, le, lt, mul,
    ne, neg, select, store, var, xor,
)
from repro.prover import (
    AutoProver, Cases, CongruenceClosure, Expand, Extensionality,
    GroundEvaluator, ImplementationProof, InteractiveProver, ProofScript,
    package_axioms,
)


def analyzed(src):
    return analyze(parse_package(src))


TABLE_PKG = analyzed("""
package P is
   type Byte is mod 256;
   type Table is array (0 .. 255) of Byte;
   Inv : constant Table := (0, 255, 254, 253, 252, 251, 250, 249, others => 7);
   function AddOne (X : in Byte) return Byte
   --# post Result = X + 1;
   is
   begin
      return X + 1;
   end AddOne;
   --# function Spec_Inv (X : in Byte) return Byte;
   --# rule Inv_Def: (for all X in 0 .. 7 => (Spec_Inv (Byte (X)) = Inv (X)));
end P;
""")


class TestGroundEvaluator:
    def setup_method(self):
        self.ev = GroundEvaluator(TABLE_PKG)

    def test_arith(self):
        assert self.ev.evaluate(add(intc(2), intc(3))) == 5
        assert self.ev.evaluate(mul(intc(4), intc(5))) == 20
        assert self.ev.evaluate(xor(intc(0xF0), intc(0xFF))) == 0x0F

    def test_open_term_is_none(self):
        assert self.ev.evaluate(add(var("x"), intc(1))) is None

    def test_table_application(self):
        assert self.ev.evaluate(apply("Inv", intc(2))) == 254
        assert self.ev.evaluate(apply("Inv", intc(100))) == 7

    def test_defined_function_application(self):
        assert self.ev.evaluate(apply("AddOne", intc(41))) == 42

    def test_proof_function_not_evaluable(self):
        assert self.ev.evaluate(apply("Spec_Inv", intc(3))) is None

    def test_select_store(self):
        arr = store(store(var("a"), intc(0), intc(9)), intc(1), intc(8))
        # select over symbolic base is not closed
        assert self.ev.evaluate(select(arr, intc(2))) is None

    def test_relation(self):
        assert self.ev.evaluate(lt(intc(3), intc(4))) is True
        assert self.ev.evaluate(eq(intc(3), intc(4))) is False


class TestCongruenceClosure:
    def test_transitive(self):
        cc = CongruenceClosure()
        a, b, c = var("a"), var("b"), var("c")
        cc.assert_equal(a, b)
        cc.assert_equal(b, c)
        assert cc.are_equal(a, c)

    def test_congruence_on_applications(self):
        cc = CongruenceClosure()
        a, b = var("a"), var("b")
        cc.assert_equal(a, b)
        assert cc.are_equal(apply("f", a), apply("f", b))

    def test_nested_congruence(self):
        cc = CongruenceClosure()
        a, b = var("a"), var("b")
        cc.assert_equal(a, b)
        assert cc.are_equal(apply("f", apply("g", a)), apply("f", apply("g", b)))

    def test_disequality_contradiction(self):
        cc = CongruenceClosure()
        a, b = var("a"), var("b")
        cc.assert_disequal(a, b)
        cc.assert_equal(a, b)
        assert cc.contradiction

    def test_literal_merge_contradiction(self):
        cc = CongruenceClosure()
        cc.assert_equal(var("a"), intc(1))
        cc.assert_equal(var("a"), intc(2))
        assert cc.contradiction

    def test_literal_disequality(self):
        cc = CongruenceClosure()
        cc.assert_equal(var("a"), intc(1))
        cc.assert_equal(var("b"), intc(2))
        assert cc.are_disequal(var("a"), var("b"))


class TestAutoProver:
    def setup_method(self):
        self.prover = AutoProver(TABLE_PKG)

    def test_ground_goal(self):
        assert self.prover.prove(eq(apply("Inv", intc(1)), intc(255))).proved

    def test_interval_goal(self):
        goal = implies(conj(le(intc(0), var("x")), le(var("x"), intc(10))),
                       le(var("x"), intc(255)))
        assert self.prover.prove(goal).proved

    def test_congruence_goal(self):
        goal = implies(eq(var("a"), var("b")),
                       eq(apply("f", var("a")), apply("f", var("b"))))
        assert self.prover.prove(goal).proved

    def test_function_contract_instantiation(self):
        # AddOne's contract: Result = X + 1, as a package axiom.
        goal = eq(apply("AddOne", var("y")),
                  __import__("repro.logic", fromlist=["modi"]).modi(
                      add(var("y"), intc(1)), intc(256)))
        assert self.prover.prove(goal).proved

    def test_proof_rule_instantiation(self):
        goal = eq(apply("Spec_Inv", intc(2)), intc(254))
        result = self.prover.prove(goal)
        assert result.proved

    def test_unprovable_stays_unproved(self):
        goal = eq(var("mystery"), intc(0))
        assert not self.prover.prove(goal).proved

    def test_forall_small_range_expansion(self):
        k = var("k?")
        goal = forall(
            ["k?"],
            implies(conj(le(intc(0), k), le(k, intc(7))),
                    le(apply("Inv", k), intc(255))))
        assert self.prover.prove(goal).proved

    def test_disjunction_split(self):
        from repro.logic import disj
        goal = implies(
            disj(eq(var("x"), intc(1)), eq(var("x"), intc(2))),
            conj(le(intc(1), var("x")), le(var("x"), intc(2))))
        assert self.prover.prove(goal).proved


class TestTactics:
    def test_expand_tactic(self):
        typed = analyzed("""
package P is
   type Byte is mod 256;
   function Twice (X : in Byte) return Byte is
   begin
      return X xor X;
   end Twice;
end P;
""")
        prover = InteractiveProver(typed)
        goal = eq(apply("Twice", var("y")), intc(0))
        script = ProofScript(name="expand-twice", tactics=(Expand("Twice"),))
        assert prover.run_script(goal, script).proved

    def test_cases_tactic(self):
        typed = analyzed("""
package P is
   type Byte is mod 256;
end P;
""")
        prover = InteractiveProver(typed)
        # Provable only by trying each value: x in 0..3 => x*x <= 9.
        goal = implies(conj(le(intc(0), var("x")), le(var("x"), intc(3))),
                       le(mul(var("x"), var("x")), intc(9)))
        script = ProofScript(name="cases", tactics=(Cases("x", 0, 3),))
        assert prover.run_script(goal, script).proved

    def test_extensionality_tactic(self):
        typed = analyzed("package P is end P;")
        prover = InteractiveProver(typed)
        a = store(var("base"), intc(0), intc(5))
        b = store(var("base"), intc(0), intc(5))
        goal = eq(a, b)  # identical already; builders fold to true
        assert goal is TRUE

    def test_failed_script_reports(self):
        typed = analyzed("package P is end P;")
        prover = InteractiveProver(typed)
        goal = eq(var("p"), var("q"))
        script = ProofScript(name="hopeless", tactics=())
        result = prover.run_script(goal, script)
        assert not result.proved


class TestImplementationProofSession:
    SRC = """
package P is
   type Byte is mod 256;
   type Arr is array (0 .. 7) of Byte;

   procedure Invert (A : in Arr; B : out Arr)
   --# post for all K in 0 .. 7 => (B (K) = (A (K) xor 255));
   is
   begin
      for I in 0 .. 7 loop
         --# assert for all K in 0 .. I - 1 => (B (K) = (A (K) xor 255));
         B (I) := A (I) xor 255;
      end loop;
   end Invert;
end P;
"""

    def test_session_discharges_annotated_loop(self):
        typed = analyzed(self.SRC)
        result = ImplementationProof(typed).run()
        assert result.feasible
        assert result.total_vcs > 0
        # Everything must go through automatically for this small example.
        assert result.all_proved, result.undischarged_kinds()

    def test_auto_percent_and_subprogram_rollup(self):
        typed = analyzed(self.SRC)
        result = ImplementationProof(typed).run()
        assert result.auto_percent == 100.0
        assert result.fully_automatic_subprograms() == ["Invert"]
