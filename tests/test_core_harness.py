"""Echo core pipeline and harness tests (cheap configurations)."""

import pytest

from repro.core import EchoVerifier, MetricsGate, RefactoringProcess
from repro.lang import parse_package
from repro.metrics import analyze_metrics
from repro.refactor import RerollLoop
from repro.spec import parse_theory

PROGRAM = """
package Inc is
   type Byte is mod 256;
   type Arr is array (0 .. 3) of Byte;
   procedure Bump (A : in Arr; B : out Arr) is
   begin
      B (0) := A (0) + 1;
      B (1) := A (1) + 1;
      B (2) := A (2) + 1;
      B (3) := A (3) + 1;
   end Bump;
end Inc;
"""

SPEC = """
THEORY Inc
  TYPE Byte = NAT UPTO 255
  TYPE Arr = ARRAY 4 OF Byte
  FUN Bump (A : Arr) : Arr = BUILD I : 4 . (A[I] + 1) MOD 256
END Inc
"""


class TestEchoVerifier:
    def test_end_to_end(self):
        verifier = EchoVerifier(parse_package(PROGRAM), parse_theory(SPEC),
                                observables=["Bump"])
        verifier.refactor([RerollLoop(subprogram="Bump", start=0,
                                      group_size=1, count=4, var="I")])
        result = verifier.verify()
        assert result.refactoring_preserved
        assert result.implication.holds
        assert result.verified
        assert "VERIFIED: True" in result.summary()

    def test_defective_program_not_verified(self):
        bad = PROGRAM.replace("B (2) := A (2) + 1;", "B (2) := A (2) + 2;")
        verifier = EchoVerifier(parse_package(bad), parse_theory(SPEC),
                                observables=["Bump"])
        # The broken pattern still rolls?  No: +2 breaks anti-unification.
        from repro.refactor import TransformationError
        with pytest.raises(TransformationError):
            verifier.refactor([RerollLoop(subprogram="Bump", start=0,
                                          group_size=1, count=4, var="I")])
        # Verified without refactoring: the implication proof catches it.
        result = verifier.verify()
        assert not result.implication.holds
        assert not result.verified


class TestMetricsGate:
    def test_gate_thresholds(self):
        from repro.lang import analyze
        report = analyze_metrics(
            analyze(parse_package(PROGRAM)).package, label="x")
        assert MetricsGate(require_feasible=False).accepts(report)
        assert not MetricsGate(require_feasible=False,
                               max_average_mccabe=0.5).accepts(report)

    def test_process_records_history(self):
        from repro.refactor import RefactoringEngine
        engine = RefactoringEngine(parse_package(PROGRAM),
                                   observables=["Bump"])
        process = RefactoringProcess(engine, parse_theory(SPEC),
                                     gate=MetricsGate(require_feasible=True))
        accepted = process.step(
            [RerollLoop(subprogram="Bump", start=0, group_size=1, count=4,
                        var="I")], label="reroll")
        assert accepted
        assert len(process.history) == 1
        assert process.history[0].match_ratio is not None


class TestHarness:
    def test_table1(self):
        from repro.harness import render_table1, table1
        counts = table1()
        text = render_table1(counts)
        assert "Preconditions" in text
        assert counts.total > 0

    def test_render_defect_table(self):
        from repro.harness import render_defect_table
        text = render_defect_table(
            1, {"refactoring": 4, "implementation": 2, "implication": 8,
                "left": 1})
        assert "Verification refactoring" in text
        assert text.count("4") >= 1

    def test_figure2_first_blocks(self):
        from repro.harness.figures import figure2, render_figure2
        measurements = figure2(upto=1, trials=2)
        assert [m.index for m in measurements] == [0, 1]
        # The paper's headline shape: the unrolled original is infeasible,
        # the re-rolled block 1 analyzable but enormous.
        assert not measurements[0].feasible
        assert measurements[1].feasible
        assert measurements[1].generated_mb > 5.0
        assert measurements[1].lines_of_code < measurements[0].lines_of_code
        text = render_figure2(measurements)
        assert "infeasible" in text
