"""Verification-service integration tests: admission, streaming,
priority lanes, backpressure, multi-tenant cache isolation, journal
replay (in-process and after a real ``kill -9``), and the differential
gate pinning daemon verdicts to the serial batch reference."""

import asyncio

import pytest

from repro.exec import ExecConfig
from repro.lang import analyze, parse_package
from repro.prover import ImplementationProof
from repro.serve import (
    ProtocolError, ServeConfig, VerificationService,
)
from repro.serve.client import ClientError, ServeClient

# the scheduler-test fixture package: two loop procedures whose
# invariant VCs genuinely reach the auto prover
SRC = """
package P is
   type Byte is mod 256;
   type Arr is array (0 .. 7) of Byte;

   procedure Invert (A : in Arr; B : out Arr)
   --# post for all K in 0 .. 7 => (B (K) = (A (K) xor 255));
   is
   begin
      for I in 0 .. 7 loop
         --# assert for all K in 0 .. I - 1 => (B (K) = (A (K) xor 255));
         B (I) := A (I) xor 255;
      end loop;
   end Invert;

   procedure Invert_Twice (A : in Arr; B : out Arr)
   --# post for all K in 0 .. 7 => (B (K) = A (K));
   is
   begin
      for I in 0 .. 7 loop
         --# assert for all K in 0 .. I - 1 => (B (K) = A (K));
         B (I) := (A (I) xor 255) xor 255;
      end loop;
   end Invert_Twice;
end P;
"""


def submit_msg(**overrides):
    message = {"op": "submit", "kind": "prove",
               "package": {"source": SRC}, "namespace": "alice"}
    message.update(overrides)
    return message


def verdict_keys(result_message):
    return [(v["subprogram"], v["vc"], v["vc_kind"], v["stage"],
             v["proved"]) for v in result_message["result"]["verdicts"]]


def batch_reference_keys(source=SRC, subprograms=None):
    typed = analyze(parse_package(source))
    outcomes = ImplementationProof(
        typed, exec=ExecConfig(jobs=1, backend="serial",
                               cache=False)).run(subprograms).outcomes
    return [(o.vc.subprogram, o.vc.name, o.vc.kind, o.stage,
             o.result.proved if o.result else None) for o in outcomes]


_FRESH_REFERENCE = {}


def fresh_process_reference_keys(source=SRC):
    """Serial batch reference computed in a fresh interpreter.

    ``Term.__hash__`` is the interning sequence number, so prover set
    iteration (and with it auto-proof search order) follows the global
    interning history of the process.  A daemon subprocess starts from
    a clean intern table; a reference computed inside this long-lived
    pytest process can diverge from it once earlier tests have populated
    the table (pre-existing engine behaviour, not serve-specific).  The
    subprocess-daemon comparisons therefore pin both sides to the same
    clean-interpreter state.
    """
    if source in _FRESH_REFERENCE:
        return _FRESH_REFERENCE[source]
    import json
    import os
    import subprocess
    import sys
    script = (
        "import json, sys\n"
        "from repro.exec import ExecConfig\n"
        "from repro.lang import analyze, parse_package\n"
        "from repro.prover import ImplementationProof\n"
        "typed = analyze(parse_package(sys.stdin.read()))\n"
        "outcomes = ImplementationProof(typed, exec=ExecConfig(\n"
        "    jobs=1, backend='serial', cache=False)).run(None).outcomes\n"
        "print(json.dumps([[o.vc.subprogram, o.vc.name, o.vc.kind,\n"
        "                   o.stage,\n"
        "                   o.result.proved if o.result else None]\n"
        "                  for o in outcomes]))\n")
    src_dir = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env = dict(os.environ, PYTHONPATH=src_dir)
    process = subprocess.run(
        [sys.executable, "-c", script], input=source, env=env,
        capture_output=True, text=True, timeout=300, check=True)
    keys = [tuple(row) for row in json.loads(process.stdout)]
    _FRESH_REFERENCE[source] = keys
    return keys


async def run_service(config, body):
    service = VerificationService(config)
    await service.start()
    try:
        return await body(service)
    finally:
        await service.stop()


class TestServiceCore:
    def test_submit_stream_result(self, tmp_path):
        async def body(service):
            outbox = asyncio.Queue()
            accepted = await service.submit(submit_msg(), outbox)
            assert accepted["reply"] == "accepted"
            assert accepted["lane"] == "bulk"
            result = await service.wait(accepted["id"])
            messages = []
            while not outbox.empty():
                messages.append(outbox.get_nowait())
            return accepted, result, messages

        accepted, result, messages = asyncio.run(
            run_service(ServeConfig(state_dir=tmp_path / "state"), body))
        assert result["status"] == "ok"
        assert result["result"]["total_vcs"] == 12
        assert result["result"]["auto_discharged"] > 0
        # events stream strictly before the terminal result, and carry
        # the exec taxonomy (submitted/started/finished per obligation)
        assert messages[-1]["reply"] == "result"
        events = [m["event"] for m in messages[:-1]]
        assert events and all(m["reply"] == "event"
                              for m in messages[:-1])
        assert {e["event"] for e in events} >= {"submitted", "finished"}
        assert sum(result["exec_stats"]["obligations"].values()) >= 1

    def test_daemon_matches_batch_reference(self, tmp_path):
        async def body(service):
            accepted = await service.submit(submit_msg())
            return await service.wait(accepted["id"])

        result = asyncio.run(
            run_service(ServeConfig(state_dir=tmp_path / "state"), body))
        assert verdict_keys(result) == batch_reference_keys()

    def test_examine_request(self):
        async def body(service):
            accepted = await service.submit(submit_msg(kind="examine"))
            assert accepted["lane"] == "interactive"
            return await service.wait(accepted["id"])

        result = asyncio.run(run_service(ServeConfig(), body))
        assert result["status"] == "ok"
        assert result["result"]["feasible"] is True
        assert result["result"]["vc_count"] > 0
        names = [s["name"] for s in result["result"]["subprograms"]]
        assert names == ["Invert", "Invert_Twice"]

    def test_error_requests_still_reply(self):
        async def body(service):
            bad_source = await service.submit(submit_msg(
                package={"source": "package Broken"}))
            bad_name = await service.submit(submit_msg(
                subprograms=["Nonexistent"]))
            return (await service.wait(bad_source["id"]),
                    await service.wait(bad_name["id"]))

        source_result, name_result = asyncio.run(
            run_service(ServeConfig(), body))
        assert source_result["status"] == "error"
        assert "analyze" in source_result["error"]
        assert name_result["status"] == "error"
        assert "Nonexistent" in name_result["error"]

    def test_duplicate_id_rejected(self):
        async def body(service):
            await service.submit(submit_msg(id="job-1"))
            with pytest.raises(ProtocolError) as err:
                await service.submit(submit_msg(id="job-1"))
            assert err.value.code == "duplicate_id"
            await service.wait("job-1")

        asyncio.run(run_service(ServeConfig(), body))

    def test_unknown_id(self):
        async def body(service):
            with pytest.raises(ProtocolError) as err:
                await service.wait("ghost")
            assert err.value.code == "unknown_id"

        asyncio.run(run_service(ServeConfig(), body))


class TestLanesAndBackpressure:
    def test_backpressure_bounded_queue(self):
        # bulk has zero workers: everything queues, nothing drains
        config = ServeConfig(lanes={"interactive": 1, "bulk": 0},
                             max_queue=2)

        async def body(service):
            await service.submit(submit_msg())
            await service.submit(submit_msg())
            with pytest.raises(ProtocolError) as err:
                await service.submit(submit_msg())
            assert err.value.code == "backpressure"
            # the interactive lane is unaffected by bulk's full queue
            accepted = await service.submit(submit_msg(kind="examine"))
            result = await service.wait(accepted["id"])
            assert result["status"] == "ok"
            assert service.board.depth("bulk") == 2

        asyncio.run(run_service(config, body))

    def test_interactive_dispatches_ahead_of_queued_bulk(self):
        # one worker in each lane; flood bulk, then submit interactive:
        # the interactive request must not wait for bulk's backlog
        config = ServeConfig(max_queue=16)

        async def body(service):
            for _ in range(4):
                await service.submit(submit_msg())
            accepted = await service.submit(submit_msg(kind="examine"))
            result = await service.wait(accepted["id"])
            snapshot = service.board.snapshot()
            # interactive finished while bulk work was still backlogged
            assert result["status"] == "ok"
            assert snapshot["interactive"]["served"] == 1
            pending = service.board.pending_ids()
            return pending

        pending = asyncio.run(run_service(config, body))
        # run_service stopped the service; queued bulk work simply drains
        # on shutdown or stays pending -- nothing crashed
        assert isinstance(pending, dict)

    def test_lane_capacity_caps_concurrency(self):
        config = ServeConfig(lanes={"interactive": 1, "bulk": 1})

        async def body(service):
            accepted = [await service.submit(submit_msg())
                        for _ in range(3)]
            results = [await service.wait(a["id"]) for a in accepted]
            assert all(r["status"] == "ok" for r in results)
            snapshot = service.board.snapshot()
            assert snapshot["bulk"]["served"] == 3
            assert snapshot["bulk"]["max_depth"] >= 2   # work queued up

        asyncio.run(run_service(config, body))


class TestTenantIsolation:
    def test_same_namespace_warm_cross_namespace_cold(self, tmp_path):
        """Satellite: two namespaces proving the same fingerprint must
        not share hits; a same-namespace repeat must run fully warm."""
        config = ServeConfig(state_dir=tmp_path / "state")

        async def body(service):
            first = await service.submit(submit_msg(namespace="alice"))
            first_result = await service.wait(first["id"])
            alice = service.tenants.get("alice")
            cold_hits = alice.result_cache.hits

            again = await service.submit(submit_msg(namespace="alice"))
            again_result = await service.wait(again["id"])
            # every scheduled obligation of the repeat is a warm hit
            assert alice.result_cache.hits > cold_hits
            assert again_result["exec_stats"]["cache_misses"] == 0
            assert again_result["exec_stats"]["cache_hits"] == \
                sum(again_result["exec_stats"]["obligations"].values())
            assert alice.norm_cache.hits > 0

            other = await service.submit(submit_msg(namespace="bob"))
            other_result = await service.wait(other["id"])
            bob = service.tenants.get("bob")
            # bob proved the identical package yet observed nothing of
            # alice's warm state: distinct instances, zero hits
            assert bob.result_cache is not alice.result_cache
            assert bob.norm_cache is not alice.norm_cache
            assert bob.result_cache.hits == 0
            assert other_result["exec_stats"]["cache_hits"] == 0

            # ... and the verdicts are identical in all three runs
            assert verdict_keys(first_result) == \
                verdict_keys(again_result) == verdict_keys(other_result)

        asyncio.run(run_service(config, body))

    def test_tenant_disk_tiers_are_disjoint(self, tmp_path):
        config = ServeConfig(state_dir=tmp_path / "state")

        async def body(service):
            for namespace in ("alice", "bob"):
                accepted = await service.submit(
                    submit_msg(namespace=namespace))
                await service.wait(accepted["id"])

        asyncio.run(run_service(config, body))
        cache_root = tmp_path / "state" / "cache"
        assert (cache_root / "alice").is_dir()
        assert (cache_root / "bob").is_dir()
        alice_files = {p.name for p in (cache_root / "alice").iterdir()}
        bob_files = {p.name for p in (cache_root / "bob").iterdir()}
        # same package, same keys -- but materialized in separate trees
        assert alice_files and alice_files == bob_files


class TestReplay:
    def test_in_process_replay(self, tmp_path):
        state = tmp_path / "state"

        # phase 1: bulk lane is admit-only -- the request is journaled
        # and queued but cannot run; "crash" by abandoning the service
        async def admit_only(service):
            accepted = await service.submit(submit_msg(id="job-1"))
            assert accepted["durable"] is True
            assert service.board.depth("bulk") == 1

        asyncio.run(run_service(
            ServeConfig(state_dir=state,
                        lanes={"interactive": 1, "bulk": 0}),
            admit_only))

        # phase 2: restart with bulk capacity; the journal replays and
        # the request runs to a verdict identical to the batch reference
        async def replay(service):
            result = await service.wait("job-1")
            assert result["status"] == "ok"
            # duplicate-id protection survives the restart
            with pytest.raises(ProtocolError):
                await service.submit(submit_msg(id="job-1"))
            return result

        service = VerificationService(ServeConfig(state_dir=state))

        async def body(_service):
            return await replay(_service)

        async def main():
            replayed = await service.start()
            assert replayed == 1
            try:
                return await body(service)
            finally:
                await service.stop()

        result = asyncio.run(main())
        assert verdict_keys(result) == batch_reference_keys()
        # phase 3: the stored result survives; nothing replays again
        third = VerificationService(ServeConfig(state_dir=state))

        async def idle():
            assert await third.start() == 0
            stored = await third.wait("job-1")
            await third.stop()
            return stored

        assert asyncio.run(idle())["id"] == "job-1"


@pytest.mark.slow
class TestDaemonSubprocess:
    """The CI smoke suite (satellite): a real daemon subprocess driven
    over stdio by the thin client, including ``kill -9`` replay."""

    def test_examine_and_prove_match_batch(self, tmp_path):
        client = ServeClient.spawn("--state-dir", str(tmp_path / "state"))
        try:
            assert client.ping("hello")["payload"] == "hello"
            examine = client.submit(kind="examine",
                                    package={"source": SRC},
                                    namespace="ci")
            assert examine["lane"] == "interactive"
            examine_result = client.wait(examine["id"], timeout=120)
            assert examine_result["status"] == "ok"
            assert examine_result["result"]["feasible"] is True

            prove = client.submit(kind="prove", package={"source": SRC},
                                  namespace="ci")
            prove_result = client.wait(prove["id"], timeout=120)
            assert prove_result["status"] == "ok"
            assert verdict_keys(prove_result) == \
                fresh_process_reference_keys()
            events = client.events_for(prove["id"])
            assert {e["event"] for e in events} >= \
                {"submitted", "started", "finished"}

            status = client.status()
            assert status["lanes"]["bulk"]["served"] == 1
            assert status["lanes"]["interactive"]["served"] == 1
            with pytest.raises(ClientError):
                client.submit(kind="prove", package={"corpus": "none"})
            client.shutdown()
        finally:
            client.close()
        assert client.process.returncode == 0

    def test_kill_9_replay_completes(self, tmp_path):
        state = str(tmp_path / "state")
        # bulk admit-only: the request is journaled, acknowledged, and
        # deterministically still pending when the daemon dies
        first = ServeClient.spawn("--state-dir", state,
                                  "--lanes", "interactive=1,bulk=0")
        try:
            accepted = first.submit(kind="prove",
                                    package={"source": SRC},
                                    namespace="ci", id="durable-1")
            assert accepted["durable"] is True
        finally:
            first.process.kill()
            first.close()
        assert first.process.returncode == -9

        second = ServeClient.spawn("--state-dir", state)
        try:
            assert second.status()["replayed"] == 1
            result = second.wait("durable-1", timeout=120)
            assert result["status"] == "ok"
            assert verdict_keys(result) == fresh_process_reference_keys()
            second.shutdown()
        finally:
            second.close()

        # a third start serves the stored result without re-running
        third = ServeClient.spawn("--state-dir", state)
        try:
            assert third.status()["replayed"] == 0
            assert third.wait("durable-1", timeout=30)["id"] == "durable-1"
            third.shutdown()
        finally:
            third.close()

    def test_flag_validation_kills_daemon_loudly(self, tmp_path):
        import subprocess
        import sys
        import os
        src_dir = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env = dict(os.environ, PYTHONPATH=src_dir)
        for flags in (["--max-queue", "0"], ["--lanes", "express=9"],
                      ["--jobs", "0"]):
            process = subprocess.run(
                [sys.executable, "-m", "repro.serve", "--stdio", *flags],
                env=env, capture_output=True, text=True, timeout=60)
            assert process.returncode != 0
            assert "error:" in process.stderr


@pytest.mark.slow
class TestAESDifferentialGate:
    """Daemon verdicts on the sampled AES corpus must be bit-identical
    to the serial batch reference -- both lanes, warm and cold."""

    def test_sampled_corpus_identical_across_lanes_and_warmth(self):
        from repro.aes.annotations import annotated_package
        from repro.aes.proof_scripts import aes_proof_scripts

        typed = annotated_package()
        sample = sorted(typed.signatures)[:6]
        scripts = aes_proof_scripts()
        reference = ImplementationProof(
            typed, scripts=scripts,
            exec=ExecConfig(jobs=1, backend="serial",
                            cache=False)).run(sample)
        reference_keys = [
            (o.vc.subprogram, o.vc.name, o.vc.kind, o.stage,
             o.result.proved if o.result else None)
            for o in reference.outcomes]

        async def body(service):
            results = []
            for lane in ("bulk", "interactive", "bulk"):   # third = warm
                accepted = await service.submit({
                    "op": "submit", "kind": "prove",
                    "package": {"corpus": "aes"}, "namespace": "aes-ci",
                    "subprograms": sample, "lane": lane})
                results.append(await service.wait(accepted["id"]))
            return results

        results = asyncio.run(run_service(ServeConfig(), body))
        for result in results:
            assert result["status"] == "ok"
            assert verdict_keys(result) == reference_keys
        # the warm repeat really was warm
        assert results[-1]["exec_stats"]["cache_misses"] == 0
        assert results[-1]["exec_stats"]["cache_hits"] == \
            sum(results[-1]["exec_stats"]["obligations"].values())
