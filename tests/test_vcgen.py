"""VC generation and simplification tests."""

import pytest

from repro.lang import analyze, parse_package
from repro.logic import render_full
from repro.logic.measure import tree_bytes
from repro.vcgen import (
    Examiner, ExaminerLimits, Obligation, WPError, generate_obligations,
)


def examine(src, **kwargs):
    typed = analyze(parse_package(src))
    return Examiner(typed, **kwargs).examine(), typed


class TestBasicVCs:
    def test_trivially_safe_program_discharges(self):
        report, _ = examine("""
package P is
   type Byte is mod 256;
   type Arr is array (0 .. 15) of Byte;
   procedure Q (A : in Arr; B : out Arr) is
   begin
      for I in 0 .. 15 loop
         B (I) := A (I);
      end loop;
   end Q;
end P;
""")
        assert report.feasible
        assert report.vc_count > 0
        assert report.discharged_count == report.vc_count

    def test_unprovable_index_survives(self):
        report, _ = examine("""
package P is
   type Arr is array (0 .. 15) of Integer;
   procedure Q (A : in Arr; I : in Integer; Y : out Integer) is
   begin
      Y := A (I);
   end Q;
end P;
""")
        assert report.feasible
        left = report.undischarged()
        assert len(left) == 1
        assert left[0].kind == "index"

    def test_masked_index_discharged(self):
        # The canonical AES idiom: indexing a 256-entry table with x & 255.
        report, _ = examine("""
package P is
   type Byte is mod 256;
   type Word is mod 4294967296;
   type Table is array (0 .. 255) of Word;
   T : constant Table := (others => 0);
   procedure Q (X : in Word; Y : out Word) is
   begin
      Y := T (Integer (Shift_Right (X, 24) and 255));
   end Q;
end P;
""")
        assert report.discharged_count == report.vc_count

    def test_byte_typed_index_discharged_via_type_bounds(self):
        report, _ = examine("""
package P is
   type Byte is mod 256;
   type Table is array (0 .. 255) of Byte;
   S : constant Table := (others => 1);
   procedure Q (X : in Byte; Y : out Byte) is
   begin
      Y := S (Integer (X));
   end Q;
end P;
""")
        assert report.discharged_count == report.vc_count

    def test_array_element_bounds_known(self):
        # Indexing a table by an element of a Byte array is safe by type.
        report, _ = examine("""
package P is
   type Byte is mod 256;
   type Table is array (0 .. 255) of Byte;
   type Arr is array (0 .. 15) of Byte;
   S : constant Table := (others => 1);
   procedure Q (A : in Arr; Y : out Byte) is
   begin
      Y := S (Integer (A (3)));
   end Q;
end P;
""")
        assert report.discharged_count == report.vc_count

    def test_division_check(self):
        report, _ = examine("""
package P is
   procedure Q (A : in Integer; B : in Integer; Y : out Integer)
   --# pre B > 0;
   is
   begin
      Y := A / B;
   end Q;
end P;
""")
        # The precondition B > 0 must make the div check provable... by the
        # prover; the simplifier's contextual pass already handles it since
        # the hypothesis is harvested as an interval.
        assert report.feasible
        assert report.discharged_count == report.vc_count

    def test_division_without_pre_survives(self):
        report, _ = examine("""
package P is
   procedure Q (A : in Integer; B : in Integer; Y : out Integer) is
   begin
      Y := A / B;
   end Q;
end P;
""")
        kinds = [vc.kind for vc in report.undischarged()]
        assert kinds == ["div"]


class TestLoopsAndCuts:
    def test_loop_invariant_vcs_generated(self):
        report, typed = examine("""
package P is
   procedure Q (N : in Integer; Y : out Integer)
   --# pre N >= 0;
   --# post Y = N;
   is
   begin
      Y := 0;
      for I in 1 .. N loop
         --# assert Y = I - 1;
         Y := Y + 1;
      end loop;
   end Q;
end P;
""")
        kinds = {vc.kind for vc in report.all_vcs()}
        assert "invariant" in kinds
        assert "post" in kinds

    def test_loop_counter_bounds_available_in_body(self):
        report, _ = examine("""
package P is
   type Arr is array (0 .. 9) of Integer;
   procedure Q (A : out Arr) is
   begin
      for I in 0 .. 9 loop
         A (I) := I;
      end loop;
   end Q;
end P;
""")
        assert report.discharged_count == report.vc_count

    def test_reverse_loop_counter_bounds(self):
        report, _ = examine("""
package P is
   type Arr is array (0 .. 9) of Integer;
   procedure Q (A : out Arr) is
   begin
      for I in reverse 0 .. 9 loop
         A (I) := I;
      end loop;
   end Q;
end P;
""")
        assert report.discharged_count == report.vc_count

    def test_loop_bounds_modified_in_body_rejected(self):
        typed = analyze(parse_package("""
package P is
   procedure Q (N : in Integer; Y : out Integer) is
      H : Integer;
   begin
      H := N;
      for I in 0 .. H loop
         H := H + 1;
         Y := I;
      end loop;
   end Q;
end P;
"""))
        sp = typed.signatures["Q"]
        with pytest.raises(WPError, match="bounds depend"):
            generate_obligations(typed, sp)

    def test_straight_line_cut_forgets_context(self):
        # After a cut, only the asserted fact is available; a postcondition
        # needing more must fail to discharge automatically.
        report, _ = examine("""
package P is
   procedure Q (X : in Integer; Y : out Integer)
   --# post Y = X + 1;
   is
   begin
      Y := X + 1;
      --# assert Y > X;
      null;
   end Q;
end P;
""")
        posts = [vc for vc in report.undischarged() if vc.kind == "post"]
        assert posts, "cut must have hidden Y = X + 1 from the postcondition"

    def test_while_loop_with_invariant(self):
        report, _ = examine("""
package P is
   procedure Q (N : in Integer; Y : out Integer)
   --# pre N >= 0;
   is
      X : Integer;
   begin
      X := N;
      Y := 0;
      while X > 0 loop
         --# assert X >= 0;
         X := X - 1;
         Y := Y + 1;
      end loop;
   end Q;
end P;
""")
        assert report.feasible
        kinds = {vc.kind for vc in report.all_vcs()}
        assert "invariant" in kinds


class TestReturnsAndCalls:
    def test_early_returns_in_branches(self):
        report, _ = examine("""
package P is
   function Sign (X : in Integer) return Integer
   --# post Result <= 1;
   is
   begin
      if X > 0 then
         return 1;
      elsif X < 0 then
         return -1;
      end if;
      return 0;
   end Sign;
end P;
""")
        assert report.feasible
        assert report.discharged_count == report.vc_count

    def test_return_inside_loop_rejected(self):
        typed = analyze(parse_package("""
package P is
   function F (N : in Integer) return Integer is
   begin
      for I in 0 .. N loop
         return I;
      end loop;
      return 0;
   end F;
end P;
"""))
        with pytest.raises(WPError, match="return"):
            generate_obligations(typed, typed.signatures["F"])

    def test_call_precondition_checked_at_site(self):
        report, _ = examine("""
package P is
   procedure Inner (X : in Integer; Y : out Integer)
   --# pre X > 0;
   is
   begin
      Y := X;
   end Inner;
   procedure Outer (A : in Integer; B : out Integer) is
   begin
      Inner (A, B);
   end Outer;
end P;
""")
        undischarged = [vc for vc in report.undischarged()
                        if vc.subprogram == "Outer"]
        assert [vc.kind for vc in undischarged] == ["precondition"]

    def test_callee_post_assumed(self):
        report, _ = examine("""
package P is
   procedure Inner (X : in Integer; Y : out Integer)
   --# post Y = X + 1;
   is
   begin
      Y := X + 1;
   end Inner;
   procedure Outer (A : in Integer; B : out Integer)
   --# post B = A + 1;
   is
   begin
      Inner (A, B);
   end Outer;
end P;
""")
        # Outer's postcondition should simplify away using Inner's contract.
        outer = [vc for vc in report.undischarged()
                 if vc.subprogram == "Outer"]
        assert outer == []


class TestResourceModel:
    UNROLLED_HEADER = """
package P is
   type Word is mod 4294967296;
   type Table is array (0 .. 255) of Word;
   T : constant Table := (others => 1);
   procedure Q (X0 : in Word; Y : out Word) is
      A : Word;
      B : Word;
      C : Word;
      D : Word;
   begin
      A := X0;
      B := X0 xor 1;
      C := X0 xor 2;
      D := X0 xor 3;
"""

    @staticmethod
    def unrolled_rounds(n):
        # Each round makes every temporary depend on all four predecessors
        # through table lookups: the tree form grows ~4x per round.
        lines = []
        for _ in range(n):
            lines.append(
                "      A := T (Integer (A and 255)) xor "
                "T (Integer (B and 255)) xor T (Integer (C and 255)) xor "
                "T (Integer (D and 255));")
            lines.append("      B := A xor T (Integer (B and 255));")
            lines.append("      C := B xor T (Integer (C and 255));")
            lines.append("      D := C xor T (Integer (D and 255));")
        return "\n".join(lines)

    def source(self, rounds):
        return (self.UNROLLED_HEADER + self.unrolled_rounds(rounds)
                + "\n      Y := D;\n   end Q;\nend P;\n")

    def test_tree_bytes_grow_with_unrolling(self):
        sizes = []
        for rounds in (2, 4, 6):
            typed = analyze(parse_package(self.source(rounds)))
            obls = generate_obligations(typed, typed.signatures["Q"])
            sizes.append(sum(tree_bytes(o.term) for o in obls))
        assert sizes[0] < sizes[1] < sizes[2]
        # Strongly super-linear growth (the paper's explosion).
        assert sizes[2] > 10 * sizes[1]

    def test_budget_makes_analysis_infeasible(self):
        limits = ExaminerLimits(max_tree_bytes=200_000)
        report, _ = examine(self.source(12), limits=limits)
        assert not report.feasible
        assert report.infeasible_subprograms == ["Q"]

    def test_same_program_feasible_with_big_budget(self):
        limits = ExaminerLimits(max_tree_bytes=10**18)
        report, _ = examine(self.source(6), limits=limits)
        assert report.feasible

    def test_rolled_loop_with_cut_stays_small(self):
        rolled = """
package P is
   type Word is mod 4294967296;
   type Table is array (0 .. 255) of Word;
   type State is array (0 .. 3) of Word;
   T : constant Table := (others => 1);
   procedure Q (X : in State; Y : out State) is
      S : State;
   begin
      for I in 0 .. 3 loop
         S (I) := X (I);
      end loop;
      for R in 0 .. 9 loop
         --# assert R >= 0;
         for I in 0 .. 3 loop
            S (I) := T (Integer (S (I) and 255)) xor S (I);
         end loop;
      end loop;
      for I in 0 .. 3 loop
         Y (I) := S (I);
      end loop;
   end Q;
end P;
"""
        report, _ = examine(rolled)
        assert report.feasible
        unrolled_report, _ = examine(self.source(10),
                                     limits=ExaminerLimits(max_tree_bytes=10**18))
        assert report.generated_bytes * 100 < unrolled_report.generated_bytes
