"""Stack-safety regression and differential tests for the iterative term
engine.

The obligation scheduler discharges VCs from worker threads whose C stacks
are small and fixed.  Before the engine went iterative, normalizing or
substituting into a deep term from such a thread overflowed the C stack and
killed the whole interpreter (a segfault -- no Python exception, no
"undischarged" mapping).  The tests here run the converted traversals
inside a ``threading.stack_size(512 * 1024)`` thread: they crashed the
process before the fix and must pass after it.

The differential tests pin the conversion: a verbatim copy of the old
*recursive* algorithms (confined to this test file; ``src/`` is lint-clean
of recursion-limit hacks) is run against the iterative engine on the full
refactored-AES VC corpus plus the deepest optimized-AES subprogram, and
results must be identical -- same result terms (object identity, thanks to
hash-consing), same ``RewriteStats`` to the bit.
"""

import contextlib
import sys
import threading

import pytest

from repro.aes import refactored_package
from repro.exec import ExecConfig
from repro.lang import analyze, parse_package
from repro.logic import (
    Rewriter, add, band, default_rules, fingerprint, intc, mk,
    substitute, substitute_simplifying, var,
)
from repro.logic.canon import COMMUTATIVE_OPS, _value_token
from repro.logic.measure import max_depth
from repro.logic.rewriter import _MAX_FIXPOINT_ITERS
from repro.logic.substitute import _rebuild_raw, rebuild_smart, rename_bound
from repro.prover import ImplementationProof
from repro.vcgen import generate_obligations
from repro.vcgen.simplifier import TypeBoundHook

SMALL_STACK = 512 * 1024


# ---------------------------------------------------------------------------
# Recursive reference implementations (the pre-conversion algorithms).
# They live only here: the production engine must never need a recursion-
# limit escape hatch, but the references legitimately do.
# ---------------------------------------------------------------------------

@contextlib.contextmanager
def _deep_recursion_allowed(limit=100_000):
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, limit))
    try:
        yield
    finally:
        sys.setrecursionlimit(old)


class _RecursiveRewriter(Rewriter):
    """The seed's recursive ``normalize``, verbatim."""

    def normalize(self, term):
        memo = self._memo
        hit = memo.get(term._id)
        if hit is not None:
            return hit
        self._charge(nodes=1)
        if term.args:
            new_args = tuple(self.normalize(a) for a in term.args)
            current = rebuild_smart(term.op, new_args, term.value)
            if current is not term and current._id in memo:
                memo[term._id] = memo[current._id]
                return memo[term._id]
        else:
            current = term
        for _ in range(_MAX_FIXPOINT_ITERS):
            replacement = self._apply_one(current)
            if replacement is None:
                break
            if replacement._id in memo:
                current = memo[replacement._id]
            elif replacement.args and any(
                a._id not in memo or memo[a._id] is not a
                for a in replacement.args
            ):
                current = self.normalize(replacement)
            else:
                current = replacement
        else:
            self._charge(exhausted=1)
        memo[term._id] = current
        memo[current._id] = current
        return current


def _recursive_subst(term, mapping, rebuild, cache):
    """The seed's recursive ``_subst``, verbatim."""
    hit = cache.get(term._id)
    if hit is not None:
        return hit
    if term.op == "var":
        result = mapping.get(term.value, term)
    elif not term.args and term.op not in ("forall", "exists"):
        result = term
    elif term.op in ("forall", "exists"):
        bound = set(term.value)
        inner = {k: v for k, v in mapping.items() if k not in bound}
        if not inner:
            result = term
        else:
            replaced_frees = set()
            for v in inner.values():
                replaced_frees |= v.free_vars()
            if replaced_frees & bound:
                term = rename_bound(term, replaced_frees | set(inner))
                bound = set(term.value)
                inner = {k: v for k, v in mapping.items() if k not in bound}
            body = _recursive_subst(term.args[0], inner, rebuild, {})
            result = rebuild(term.op, (body,), term.value)
    else:
        new_args = tuple(_recursive_subst(a, mapping, rebuild, cache)
                         for a in term.args)
        if all(n is o for n, o in zip(new_args, term.args)):
            result = term
        else:
            result = rebuild(term.op, new_args, term.value)
    cache[term._id] = result
    return result


def _recursive_fingerprint(term, cache):
    """A naive recursive Merkle digest with the same canonical rules."""
    import hashlib

    hit = cache.get(term._id)
    if hit is not None:
        return hit
    child = [_recursive_fingerprint(a, cache) for a in term.args]
    if term.op in COMMUTATIVE_OPS:
        child = sorted(child)
    payload = "\x1f".join([term.op, _value_token(term.value)] + child)
    digest = hashlib.sha256(payload.encode()).hexdigest()
    cache[term._id] = digest
    return digest


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _run_in_small_stack_thread(fn, stack_bytes=SMALL_STACK):
    """Run ``fn`` in a thread with a small fixed C stack; re-raise errors.

    Before the iterative conversion this pattern did not raise -- it
    segfaulted the interpreter, which is exactly the crash class under
    test.
    """
    out = {}

    def work():
        try:
            out["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - surfaced to caller
            out["error"] = exc

    old = threading.stack_size(stack_bytes)
    try:
        th = threading.Thread(target=work)
        th.start()
        th.join()
    finally:
        threading.stack_size(old)
    if "error" in out:
        raise out["error"]
    assert "value" in out, "worker thread died without reporting a result"
    return out["value"]


def _deep_masked_chain(n):
    """A term of depth ``2n + 1``: the add/mask idiom of unrolled AES."""
    t = var("x")
    for _ in range(n):
        t = band(add(t, intc(1)), intc(255))
    return t


DEEP_N = 1500  # depth 3001; segfaulted a 512 KiB-stack thread pre-fix


@pytest.fixture(scope="module")
def aes_corpus():
    """(typed, {subprogram: [terms]}) for the full refactored-AES corpus."""
    typed = refactored_package()
    corpus = {}
    for sp in typed.package.subprograms:
        obls = generate_obligations(typed, typed.signatures[sp.name])
        if obls:
            corpus[sp.name] = [o.term for o in obls]
    return typed, corpus


@pytest.fixture(scope="module")
def deep_optimized_corpus():
    """The deepest optimized-AES subprogram's VCs (depth ~200)."""
    from repro.aes.optimized import optimized_source

    typed = analyze(parse_package(optimized_source()))
    obls = generate_obligations(typed, typed.signatures["Expand_Key"])
    return typed, {"Expand_Key": [o.term for o in obls]}


# ---------------------------------------------------------------------------
# Small-stack regression tests
# ---------------------------------------------------------------------------

class TestSmallStackThreads:
    def test_normalize_deep_term_small_stack(self):
        term = _deep_masked_chain(DEEP_N)
        result = _run_in_small_stack_thread(
            lambda: Rewriter(default_rules()).normalize(term))
        with _deep_recursion_allowed():
            reference = _RecursiveRewriter(default_rules()).normalize(term)
        assert result is reference

    def test_substitute_deep_term_small_stack(self):
        term = _deep_masked_chain(DEEP_N)
        mapping = {"x": var("y")}
        raw = _run_in_small_stack_thread(lambda: substitute(term, mapping))
        folded = _run_in_small_stack_thread(
            lambda: substitute_simplifying(term, mapping))
        with _deep_recursion_allowed():
            assert raw is _recursive_subst(term, mapping, _rebuild_raw, {})
            assert folded is _recursive_subst(term, mapping, rebuild_smart, {})

    def test_fingerprint_deep_term_small_stack(self):
        term = _deep_masked_chain(DEEP_N)
        digest = _run_in_small_stack_thread(lambda: fingerprint(term))
        with _deep_recursion_allowed():
            assert digest == _recursive_fingerprint(term, {})

    def test_deep_measurement_small_stack(self):
        term = _deep_masked_chain(DEEP_N)
        depth = _run_in_small_stack_thread(lambda: max_depth(term))
        assert depth == 2 * DEEP_N + 1

    def test_implementation_proof_jobs2_small_stack(self, aes_corpus):
        """The ISSUE's headline scenario: threaded discharge of the deepest
        refactored-AES subprogram on 512 KiB worker stacks."""
        typed, corpus = aes_corpus
        deepest = max(
            corpus,
            key=lambda name: max(max_depth(t) for t in corpus[name]))
        baseline = ImplementationProof(
            typed, exec=ExecConfig(jobs=1, cache=False)).run([deepest])
        result = _run_in_small_stack_thread(
            lambda: ImplementationProof(
                typed, exec=ExecConfig(jobs=2, cache=False)).run(
                [deepest]))
        assert result.feasible
        assert [(o.vc.name, o.stage) for o in result.outcomes] == \
            [(o.vc.name, o.stage) for o in baseline.outcomes]


# ---------------------------------------------------------------------------
# Differential tests: iterative engine vs the recursive reference
# ---------------------------------------------------------------------------

def _assert_normalize_differential(typed, corpus):
    for name, terms in corpus.items():
        hook = TypeBoundHook(typed, name)
        with _deep_recursion_allowed():
            reference = _RecursiveRewriter(default_rules(hook=hook))
            ref_results = [reference.normalize(t) for t in terms]
        iterative = Rewriter(default_rules(hook=hook))
        new_results = [iterative.normalize(t) for t in terms]
        for ref, new in zip(ref_results, new_results):
            assert new is ref
        assert iterative.stats == reference.stats


class TestDifferentialCorpus:
    def test_normalize_identical_on_refactored_corpus(self, aes_corpus):
        typed, corpus = aes_corpus
        assert sum(len(v) for v in corpus.values()) > 200
        _assert_normalize_differential(typed, corpus)

    def test_normalize_identical_on_deep_optimized_corpus(
            self, deep_optimized_corpus):
        typed, corpus = deep_optimized_corpus
        assert max(max_depth(t) for t in corpus["Expand_Key"]) > 100
        _assert_normalize_differential(typed, corpus)

    def test_substitute_identical_on_refactored_corpus(self, aes_corpus):
        _, corpus = aes_corpus
        for terms in corpus.values():
            for term in terms:
                mapping = {n: var(f"{n}~diff") for n in term.free_vars()}
                if not mapping:
                    continue
                with _deep_recursion_allowed():
                    ref_raw = _recursive_subst(term, mapping, _rebuild_raw, {})
                    ref_smart = _recursive_subst(
                        term, mapping, rebuild_smart, {})
                assert substitute(term, mapping) is ref_raw
                assert substitute_simplifying(term, mapping) is ref_smart

    def test_fingerprint_identical_on_refactored_corpus(self, aes_corpus):
        _, corpus = aes_corpus
        cache = {}
        with _deep_recursion_allowed():
            for terms in corpus.values():
                for term in terms:
                    assert fingerprint(term) == \
                        _recursive_fingerprint(term, cache)

    def test_raw_rebuild_memo_alias_path(self):
        """The memo-alias shortcut (raw term folding onto an already
        normalized form) must behave identically to the reference."""
        folded = add(var("i"), intc(1))
        raw = mk("add", (mk("add", (var("i"), intc(1))), intc(-1)))
        rewriter = Rewriter(default_rules())
        assert rewriter.normalize(folded) is not None
        assert rewriter.normalize(raw) is var("i")
        reference = _RecursiveRewriter(default_rules())
        assert reference.normalize(folded) is rewriter._memo[folded._id]
        assert reference.normalize(raw) is var("i")
        assert reference.stats == rewriter.stats
