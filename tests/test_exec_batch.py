"""Micro-obligation batching tests (DESIGN.md §18): batch formation and
warm-cache hoisting, the worker-side absorb-once discipline, outcome
identity across batch sizes and backends, the dispatch telemetry, and
loud validation of the batching knobs in ExecConfig and both CLIs."""

import json
from dataclasses import dataclass
from typing import Any, Optional, Tuple

import pytest

from repro.exec import (
    BatchPayload, CallPayload, ExecConfig, Obligation, ObligationScheduler,
    Telemetry, make_batch,
)
from repro.exec.payload import ObligationPayload, _WARM_ABSORBED
from repro.exec.retry import RetryPolicy
from repro.exec.scheduler import _batch_worker
from repro.logic import add, encode_terms, fingerprint, intc, var
from repro.logic.normcache import NormalizationCache


# -- module-level payload targets (picklable by qualified name) ------------

def _square(x):
    return x * x


@dataclass(frozen=True)
class _WarmPayload(ObligationPayload):
    """Minimal payload with the VCPayload warm-shipping contract."""

    value: int
    warm_key: Optional[str] = None
    warm_norms: Any = None

    def run(self):
        return self.value * 10


def _warm_norms():
    """A real (fingerprints, wire) warm batch of two normal forms."""
    terms = [add(var("x"), intc(1)), add(var("y"), intc(2))]
    fps = tuple(fingerprint(t) for t in terms)
    return (fps, encode_terms(terms))


def _obs(n):
    return [Obligation(kind="vc", label=f"sq{i}",
                       thunk=(lambda i=i: i * i),
                       payload=CallPayload(_square, (i,)))
            for i in range(n)]


class TestMakeBatch:
    def test_shared_warm_hoisted_once_and_stripped(self):
        norms = _warm_norms()
        payloads = [_WarmPayload(i, warm_key="k", warm_norms=norms)
                    for i in range(3)]
        batch = make_batch([(i, p, f"t{i}", None)
                            for i, p in enumerate(payloads)])
        assert len(batch) == 3
        # one hoisted entry for the shared (key, fingerprints) pair
        assert len(batch.warm) == 1
        assert batch.warm[0] == ("k", norms)
        # members ship without their own copy...
        for _, payload, _, _ in batch.entries:
            assert payload.warm_norms is None
            assert payload.warm_key == "k"
        # ...but the caller's payloads are untouched (blamed solo
        # re-runs must still carry their own warm batch).
        assert all(p.warm_norms is norms for p in payloads)

    def test_distinct_warm_scopes_each_hoisted(self):
        norms_a, norms_b = _warm_norms(), _warm_norms()
        batch = make_batch([
            (0, _WarmPayload(0, warm_key="a", warm_norms=norms_a), "t0",
             None),
            (1, _WarmPayload(1, warm_key="b", warm_norms=norms_b), "t1",
             None),
        ])
        assert {key for key, _ in batch.warm} == {"a", "b"}

    def test_payloads_without_warm_pass_through(self):
        payload = CallPayload(_square, (2,))
        batch = make_batch([(0, payload, "t0", "key0")])
        assert batch.warm == ()
        assert batch.entries == ((0, payload, "t0", "key0"),)


class TestBatchWorker:
    def test_warm_absorbed_exactly_once_per_batch(self, monkeypatch):
        """The regression the hoisting exists for: a batch of K payloads
        sharing one warm batch decodes and absorbs it once, not K
        times."""
        import repro.exec.payload as payload_mod
        calls = []
        real = payload_mod._absorb_warm
        monkeypatch.setattr(payload_mod, "_absorb_warm",
                            lambda key, norms: (calls.append(key),
                                                real(key, norms)))
        monkeypatch.setattr(payload_mod, "_WARM_ABSORBED", set())
        norms = _warm_norms()
        entries = [(i, _WarmPayload(i, warm_key="scope", warm_norms=norms),
                    f"t{i}", None) for i in range(4)]
        results = _batch_worker(make_batch(entries), RetryPolicy(), None)
        assert [r[1] for r in results] == ["ok"] * 4
        assert calls == ["scope"]

    def test_absorbed_normal_forms_identical_to_unbatched(self):
        """What lands in the worker's normalization cache is the same
        whether the warm batch rides one hoisted slot or every payload:
        hoisting moves the bytes, never the contents."""
        from repro.logic.wire import decode_terms
        fps, wire = _warm_norms()
        solo, batched = NormalizationCache(), NormalizationCache()
        solo.absorb("scope", zip(fps, decode_terms(wire)))
        batch = make_batch([
            (i, _WarmPayload(i, warm_key="scope", warm_norms=(fps, wire)),
             f"t{i}", None) for i in range(3)])
        (key, norms), = batch.warm
        batched.absorb(key, zip(norms[0], decode_terms(norms[1])))
        assert solo.export("scope") == batched.export("scope")

    def test_results_match_solo_worker_runs(self):
        from repro.exec.scheduler import _process_worker
        entries = [(i, CallPayload(_square, (i,)), f"t{i}", None)
                   for i in range(5)]
        batched = _batch_worker(make_batch(entries), RetryPolicy(), None)
        solo = tuple(_process_worker(i, p, RetryPolicy(), None, t)
                     for i, p, t, _ in entries)
        # identical index/status/wire triples (walls differ, of course)
        assert [r[:3] for r in batched] == [r[:3] for r in solo]


class TestBatchedSchedulingIdentity:
    @pytest.mark.parametrize("backend,jobs", [
        ("serial", 1), ("thread", 3), ("process", 2)])
    def test_outcomes_identical_across_batch_sizes(self, backend, jobs):
        reference = None
        for batch_size in (1, 2, 16):
            outcomes = ObligationScheduler(
                jobs=jobs, backend=backend, cache=False,
                telemetry=Telemetry(), batch_size=batch_size,
            ).run(_obs(11))
            values = [(o.status, o.value) for o in outcomes]
            if reference is None:
                reference = values
            assert values == reference, (backend, batch_size)
        assert reference == [("ok", i * i) for i in range(11)]

    def test_unpicklable_member_still_fails_loudly(self):
        """The batch admission meter ships unpicklable payloads solo, so
        the submission path's loud error behaviour survives batching."""
        bad = CallPayload(lambda: 1)          # lambdas do not pickle
        obs = _obs(6)
        obs.insert(3, Obligation(kind="vc", label="bad",
                                 thunk=(lambda: 1), payload=bad))
        outcomes = ObligationScheduler(
            jobs=2, backend="process", cache=False, telemetry=Telemetry(),
            on_error="record").run(obs)
        assert outcomes[3].status == "errored"
        ok = [o for i, o in enumerate(outcomes) if i != 3]
        assert all(o.ok for o in ok)

    def test_thread_timeout_disables_batching(self):
        """With a per-obligation timeout the thread backend waits on one
        future per obligation (the future wait *is* the timeout
        instrument), so batching must stand down."""
        telemetry = Telemetry()
        outcomes = ObligationScheduler(
            jobs=2, backend="thread", cache=False, telemetry=telemetry,
            timeout_seconds=5.0, batch_size=8).run(_obs(6))
        assert [o.value for o in outcomes] == [i * i for i in range(6)]
        assert telemetry.stats().batched == 0


class TestDispatchTelemetry:
    def test_batched_dispatch_counters(self):
        telemetry = Telemetry()
        ObligationScheduler(jobs=2, backend="process", cache=False,
                            telemetry=telemetry,
                            batch_size=16).run(_obs(20))
        stats = telemetry.stats()
        assert stats.batched >= 1
        assert stats.batch_items == 20
        dispatched = [e for e in telemetry.events()
                      if e.event == "dispatched"]
        assert dispatched
        assert all(e.detail.startswith("items=") for e in dispatched)
        assert sum(int(e.detail[len("items="):])
                   for e in dispatched) == 20
        assert stats.dispatch_p95_seconds >= stats.dispatch_p50_seconds \
            >= 0.0
        assert "batched dispatches" in stats.summary()
        dump = stats.to_json()
        for field in ("batched", "batch_items", "dispatch_p50_seconds",
                      "dispatch_p95_seconds"):
            assert field in dump

    def test_batch_size_one_reports_nothing_batched(self):
        telemetry = Telemetry()
        ObligationScheduler(jobs=2, backend="process", cache=False,
                            telemetry=telemetry,
                            batch_size=1).run(_obs(6))
        stats = telemetry.stats()
        assert stats.batched == 0
        assert stats.batch_items == 0
        assert "batched dispatches" not in stats.summary()


class TestBatchKnobValidation:
    @pytest.mark.parametrize("value", [0, -1, -16, False, True, 2.5, "8"])
    def test_config_rejects_bad_batch_size(self, value):
        with pytest.raises(ValueError, match="batch_size"):
            ExecConfig(batch_size=value)

    @pytest.mark.parametrize("value", [0, -1, False, True, 0.5, "big"])
    def test_config_rejects_bad_batch_bytes_cap(self, value):
        with pytest.raises(ValueError, match="batch_bytes_cap"):
            ExecConfig(batch_bytes_cap=value)

    @pytest.mark.parametrize("kwargs", [
        {"batch_size": 0}, {"batch_size": -3},
        {"batch_bytes_cap": 0}, {"batch_bytes_cap": -1}])
    def test_scheduler_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            ObligationScheduler(jobs=1, backend="serial", **kwargs)

    def test_config_json_round_trip(self):
        config = ExecConfig(jobs=3, backend="thread", batch_size=7,
                            batch_bytes_cap=123456)
        clone = ExecConfig.from_json(json.loads(
            json.dumps(config.to_json())))
        assert clone.batch_size == 7
        assert clone.batch_bytes_cap == 123456
        assert clone == config

    def test_config_defaults(self):
        config = ExecConfig()
        assert config.batch_size == 16
        assert config.batch_bytes_cap == 4 * 1024 * 1024
        scheduler = config.scheduler()
        assert scheduler.batch_size == 16
        assert scheduler.batch_bytes_cap == 4 * 1024 * 1024


class TestCLIBatchFlags:
    @pytest.mark.parametrize("argv", [
        ["--batch-size", "0"], ["--batch-size", "-2"],
        ["--batch-size", "many"],
        ["--batch-bytes-cap", "0"], ["--batch-bytes-cap", "-1"],
        ["--batch-bytes-cap", "huge"]])
    def test_plan_cli_rejects_bad_knobs(self, argv):
        from repro.plan.cli import main
        with pytest.raises(SystemExit):
            main(argv)

    @pytest.mark.parametrize("argv", [
        ["--batch-size", "0"], ["--batch-size", "oops"],
        ["--batch-bytes-cap", "0"], ["--batch-bytes-cap", "-5"],
        ["--batch-bytes-cap", "oops"]])
    def test_harness_runner_rejects_bad_knobs(self, argv):
        from repro.harness.runner import main
        with pytest.raises(SystemExit):
            main(argv)
