"""Metrics analyzer tests."""

import pytest

from repro.lang import analyze, parse_package
from repro.metrics import (
    analyze_metrics, complexity_metrics, element_metrics, mccabe,
    package_architecture, render_report,
)

SRC = """
package M is

   type Byte is mod 256;
   type Arr is array (0 .. 7) of Byte;
   K : constant Byte := 7;

   function F (X : in Byte; Flag : in Boolean) return Byte is
      Y : Byte;
   begin
      if Flag and then X > 3 then
         Y := X + K;
      elsif X > 1 then
         Y := X;
      else
         Y := 0;
      end if;
      return Y;
   end F;

   procedure G (A : in Arr; B : out Arr) is
   begin
      for I in 0 .. 7 loop
         for J in 0 .. 0 loop
            B (I) := A (I);
         end loop;
      end loop;
   end G;

end M;
"""


@pytest.fixture(scope="module")
def pkg():
    return analyze(parse_package(SRC)).package


class TestElements:
    def test_counts(self, pkg):
        m = element_metrics(pkg)
        assert m.subprograms == 2
        # F: if-statement + 3 assignments + return = 5; G: 2 loops + assign.
        assert m.statements == 5 + 3
        assert m.lines_of_code > 20
        assert m.construct_nesting_level == 2
        assert m.average_subprogram_size == pytest.approx(4.0)

    def test_logical_sloc_includes_declarations(self, pkg):
        m = element_metrics(pkg)
        assert m.logical_sloc == m.statements + m.declarations


class TestComplexity:
    def test_mccabe(self, pkg):
        # F: 1 + if(2 branches) + and_then = 4; G: 1 + 2 loops = 3.
        assert mccabe(pkg.subprogram("F")) == 4
        assert mccabe(pkg.subprogram("G")) == 3

    def test_averages(self, pkg):
        c = complexity_metrics(pkg)
        assert c.average_mccabe == pytest.approx(3.5)
        assert c.max_mccabe == 4
        assert c.total_short_circuit == 1
        assert c.max_loop_nesting == 2

    def test_essential_complexity_structured(self, pkg):
        c = complexity_metrics(pkg)
        # Fully structured code with one function return: essential = 1.
        assert c.per_subprogram["F"].essential == 1
        assert c.per_subprogram["G"].essential == 1


class TestArchitecture:
    def test_package_architecture(self, pkg):
        arch = package_architecture(pkg)
        kinds = {(e.kind, e.name) for e in arch.elements}
        assert ("type", "Byte") in kinds
        assert ("table", "K") in kinds
        assert ("function", "F") in kinds

    def test_render_report(self, pkg):
        text = render_report(analyze_metrics(pkg, label="demo"))
        assert "avg McCabe" in text
        assert "lines of code" in text
