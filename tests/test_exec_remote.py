"""Distributed proof-farm tests (DESIGN.md §16): scheduler semantics
over socket-connected workers, the versioned handshake, the shared
networked cache tier, and the remote failure matrix -- kill -9 mid
obligation, lease expiry, flapping-host quarantine, degradation to the
process backend -- with verdicts bit-identical to serial throughout."""

import contextlib
import os
import signal
import socket
import threading
import time

import pytest

from repro.exec import (
    CallPayload, ExecConfig, Obligation, ObligationScheduler, ResultCache,
    RetryPolicy, Telemetry, make_key,
)
from repro.exec.remote import (
    REJECTED_EXIT, Link, RemoteCoordinator, spawn_worker,
)
from repro.exec.scheduler import BackendUnusableError
from repro.prover import ImplementationProof
from repro.protocol import PROTOCOL_VERSION

from tests.test_exec_scheduler import outcome_key

#: Repo root, prepended to worker PYTHONPATHs so ``tests.*`` payload
#: functions unpickle worker-side.
ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# -- module-level payload targets (picklable by qualified name) ------------

def _square(x):
    return x * x


def _pid_tag(x):
    return (os.getpid(), x)


def _boom(x):
    raise ValueError(f"boom {x}")


def _wait_for(path, value, limit=30.0):
    """Spin until ``path`` exists (a test-controlled release file)."""
    deadline = time.monotonic() + limit
    while not os.path.exists(path):
        if time.monotonic() >= deadline:
            raise RuntimeError(f"release file {path} never appeared")
        time.sleep(0.02)
    return value


def _write_pid_and_wait(marker, release, value, limit=30.0):
    """Publish the worker pid (so the test can kill -9 it), then wait
    for the release file.  The blamed re-run returns immediately."""
    with open(marker, "w") as handle:
        handle.write(str(os.getpid()))
    return _wait_for(release, value, limit)


def _crash_once(sentinel, value):
    """Hard-kill the hosting worker the first time, succeed after."""
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os._exit(1)
    return value


# -- helpers ---------------------------------------------------------------

def _ob(label, payload, group=None, key=None):
    return Obligation(kind="test", label=label, thunk=payload.run,
                      cache_key=key, group=group, payload=payload)


def _scheduler(addresses, **kw):
    kw.setdefault("jobs", 4)
    kw.setdefault("backend", "remote")
    kw.setdefault("cache", False)
    kw.setdefault("telemetry", Telemetry())
    kw.setdefault("remote_workers", tuple(addresses))
    return ObligationScheduler(**kw)


@contextlib.contextmanager
def farm(count=2, prefix="w"):
    """``count`` listen-mode workers; yields their addresses."""
    procs, addresses = [], []
    try:
        for i in range(count):
            proc, address = spawn_worker(listen="127.0.0.1:0",
                                         name=f"{prefix}{i}",
                                         pythonpath_extra=(ROOT,))
            procs.append(proc)
            addresses.append(address)
        yield addresses
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
            proc.wait()


def _wait_until(predicate, limit=20.0, message="condition"):
    deadline = time.monotonic() + limit
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting: {message}"
        time.sleep(0.02)


def _details(telemetry, event):
    return [e.detail for e in telemetry.events() if e.event == event]


class TestRemoteScheduling:
    def test_results_in_input_order_off_host(self):
        with farm(2) as addresses:
            telemetry = Telemetry()
            outcomes = _scheduler(addresses, telemetry=telemetry).run(
                [_ob(f"p{i}", CallPayload(_pid_tag, (i,)))
                 for i in range(8)])
            assert [o.value[1] for o in outcomes] == list(range(8))
            assert all(o.status == "ok" for o in outcomes)
            # the work genuinely left the parent process
            assert all(o.value[0] != os.getpid() for o in outcomes)
            served_by = {d.split()[0] for d in _details(telemetry,
                                                        "finished")}
            assert served_by <= {"worker=w0", "worker=w1"}
            assert served_by

    def test_batched_dispatch_identical_to_unbatched(self):
        """§18 differential gate, remote edition: the same obligations
        produce identical outcomes whether the farm leases them one at a
        time or in batched units, and batching is visibly engaged."""
        with farm(2) as addresses:
            runs, telemetry = {}, {}
            for batch_size in (1, 8):
                telemetry[batch_size] = Telemetry()
                outcomes = _scheduler(
                    addresses, telemetry=telemetry[batch_size],
                    batch_size=batch_size).run(
                    [_ob(f"i{i}", CallPayload(_square, (i,)))
                     for i in range(12)])
                runs[batch_size] = [(o.status, o.value) for o in outcomes]
            assert runs[1] == runs[8] == [("ok", i * i) for i in range(12)]
            assert telemetry[1].stats().batched == 0
            assert telemetry[8].stats().batched >= 1
            assert telemetry[8].stats().batch_items >= 4

    def test_groups_chain_serially(self):
        with farm(2) as addresses:
            outcomes = _scheduler(addresses).run(
                [_ob(f"g{i}", CallPayload(_pid_tag, (i,)), group="g")
                 for i in range(5)])
            assert [o.value[1] for o in outcomes] == list(range(5))

    def test_payloadless_obligation_runs_inline(self):
        with farm(1) as addresses:
            sentinel = []
            plain = Obligation(
                kind="test", label="inline",
                thunk=lambda: sentinel.append(os.getpid()) or 7)
            outcomes = _scheduler(addresses).run(
                [plain, _ob("shipped", CallPayload(_square, (3,)))])
            assert outcomes[0].value == 7
            assert sentinel == [os.getpid()]
            assert outcomes[1].value == 9

    def test_on_error_record_and_raise(self):
        with farm(1) as addresses:
            outcomes = _scheduler(addresses, on_error="record").run(
                [_ob("ok", CallPayload(_square, (3,))),
                 _ob("bad", CallPayload(_boom, (7,)))])
            assert outcomes[0].ok and outcomes[0].value == 9
            assert outcomes[1].status == "errored"
            assert "boom 7" in outcomes[1].error
            with pytest.raises(ValueError, match="boom 1"):
                _scheduler(addresses).run(
                    [_ob("bad", CallPayload(_boom, (1,)))])

    def test_parent_cache_round_trip(self):
        with farm(2) as addresses:
            cache = ResultCache()

            def obs():
                return [_ob(f"k{i}", CallPayload(_square, (i,)),
                            key=make_key("farm-cache", str(i)))
                        for i in range(4)]

            first = _scheduler(addresses, cache=cache).run(obs())
            second = _scheduler(addresses, cache=cache).run(obs())
            assert [o.value for o in first] == [0, 1, 4, 9]
            assert [o.status for o in first] == ["ok"] * 4
            assert [o.status for o in second] == ["cached"] * 4
            assert [o.value for o in second] == [0, 1, 4, 9]

    def test_worker_local_cache_warm_across_runs(self):
        """A persistent (listen-mode) worker keeps its local result tier
        across scheduler runs: the second run's keyed obligation is
        answered from the worker's own cache -- its payload never runs
        (it would raise)."""
        with farm(1) as addresses:
            key = make_key("farm-local", "k")
            first = _scheduler(addresses).run(
                [_ob("compute", CallPayload(_square, (6,)), key=key)])
            assert first[0].value == 36
            telemetry = Telemetry()
            second = _scheduler(addresses, telemetry=telemetry).run(
                [_ob("hit", CallPayload(_boom, (0,)), key=key)])
            assert second[0].status == "ok" and second[0].value == 36
            assert any("served=local" in d
                       for d in _details(telemetry, "finished"))


class TestSharedCacheTier:
    def test_concurrent_duplicate_key_served_from_tier(self, tmp_path):
        """Two in-flight obligations share a cache key on different
        workers: the second worker's ``cache_get`` read-through hits the
        coordinator's result memo (populated by the first worker's
        verdict) -- its payload, which would raise, never runs."""
        with farm(2, prefix="t") as addresses:
            key = make_key("farm-tier", "k")
            coordinator = RemoteCoordinator(
                dial=addresses, cache_lookup=lambda _key: None,
                per_worker=2)
            coordinator.start()
            try:
                assert coordinator.wait_for_workers(2, 10.0)
                blocker_release = str(tmp_path / "release")
                policy = RetryPolicy()
                # t0 is blocked behind a release file; the duplicate-key
                # obligation queues behind it on the same worker.
                assert coordinator.lease(
                    0, CallPayload(_wait_for, (blocker_release, 0)),
                    policy, None, "blocker", None, avoid=("t1",)) == "t0"
                assert coordinator.lease(
                    1, CallPayload(_square, (11,)), policy, None,
                    "compute", key, avoid=("t0",)) == "t1"
                assert coordinator.lease(
                    2, CallPayload(_boom, (2,)), policy, None,
                    "duplicate", key, avoid=("t1",)) == "t0"
                results = {}
                deadline = time.monotonic() + 20.0
                while 1 not in results:
                    event = coordinator.poll(timeout=0.25)
                    assert time.monotonic() < deadline
                    if event and event[0] == "result":
                        results[event[1]] = event
                with open(blocker_release, "w"):
                    pass
                while 0 not in results or 2 not in results:
                    event = coordinator.poll(timeout=0.25)
                    assert time.monotonic() < deadline
                    if event and event[0] == "result":
                        results[event[1]] = event
                assert results[1][2][1] == "ok"
                assert results[2][2][1] == "ok"
                assert results[2][4] == "tier"          # served tier
                assert results[2][2][2] == results[1][2][2]   # same wire
            finally:
                coordinator.stop()


class TestRemoteHandshake:
    def _dial(self, coordinator):
        host, _, port = coordinator.bound_address.rpartition(":")
        return Link(socket.create_connection((host, int(port)),
                                             timeout=5.0))

    def test_version_mismatch_rejected(self):
        coordinator = RemoteCoordinator(listen="127.0.0.1:0")
        coordinator.start()
        try:
            link = self._dial(coordinator)
            link.send({"op": "hello", "protocol": PROTOCOL_VERSION + 1,
                       "name": "skewed", "pid": 1})
            reply = link.recv(timeout=5.0)
            assert reply["reply"] == "error"
            assert reply["code"] == "protocol_mismatch"
            link.close()
        finally:
            coordinator.stop()

    def test_missing_version_rejected(self):
        """Unlike serve clients, a remote worker must advertise its
        protocol version -- a silently version-skewed prover is worse
        than a stale dashboard."""
        coordinator = RemoteCoordinator(listen="127.0.0.1:0")
        coordinator.start()
        try:
            link = self._dial(coordinator)
            link.send({"op": "hello", "name": "mute", "pid": 1})
            reply = link.recv(timeout=5.0)
            assert reply["reply"] == "error"
            assert reply["code"] == "protocol_mismatch"
            link.close()
        finally:
            coordinator.stop()

    def test_duplicate_name_rejected(self):
        coordinator = RemoteCoordinator(listen="127.0.0.1:0")
        coordinator.start()
        try:
            first = self._dial(coordinator)
            first.send({"op": "hello", "protocol": PROTOCOL_VERSION,
                        "name": "twin", "pid": 1})
            welcome = first.recv(timeout=5.0)
            assert welcome["reply"] == "welcome"
            assert welcome["protocol"] == PROTOCOL_VERSION
            second = self._dial(coordinator)
            second.send({"op": "hello", "protocol": PROTOCOL_VERSION,
                         "name": "twin", "pid": 2})
            reply = second.recv(timeout=5.0)
            assert reply["reply"] == "error"
            assert reply["code"] == "duplicate_id"
            first.close()
            second.close()
        finally:
            coordinator.stop()

    def test_worker_exits_on_skewed_coordinator(self):
        """The worker side of the contract: a welcome carrying the wrong
        protocol version makes the worker exit REJECTED_EXIT instead of
        computing verdicts under a skewed schema."""
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        host, port = server.getsockname()
        proc, _ = spawn_worker(connect=f"{host}:{port}",
                               name="victim", pythonpath_extra=(ROOT,))
        try:
            conn, _ = server.accept()
            link = Link(conn)
            hello = link.recv(timeout=10.0)
            assert hello["op"] == "hello"
            assert hello["protocol"] == PROTOCOL_VERSION
            link.send({"reply": "welcome", "protocol": 99,
                       "shared_cache": False})
            assert proc.wait(timeout=15.0) == REJECTED_EXIT
            link.close()
        finally:
            server.close()
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_previous_protocol_version_rejected(self):
        """Protocol 3 added the batched lease generation; a version-2
        hello therefore cannot be grandfathered in -- the worker would
        sit on ``lease_batch`` messages it cannot decode."""
        assert PROTOCOL_VERSION >= 3
        coordinator = RemoteCoordinator(listen="127.0.0.1:0")
        coordinator.start()
        try:
            link = self._dial(coordinator)
            link.send({"op": "hello", "protocol": 2,
                       "name": "relic", "pid": 1})
            reply = link.recv(timeout=5.0)
            assert reply["reply"] == "error"
            assert reply["code"] == "protocol_mismatch"
            link.close()
        finally:
            coordinator.stop()

    def test_old_version_worker_process_exits_cleanly(self):
        """End to end: a worker binary from before the batching protocol
        (simulated by pinning ``PROTOCOL_VERSION = 2`` before the worker
        module binds it) dials a current coordinator and exits
        ``REJECTED_EXIT`` -- a clean, diagnosable rejection rather than
        a hang or a garbled lease."""
        import subprocess
        import sys as _sys
        coordinator = RemoteCoordinator(listen="127.0.0.1:0")
        coordinator.start()
        script = (
            "import sys, repro.protocol as protocol\n"
            "protocol.PROTOCOL_VERSION = 2\n"
            "from repro.exec.remote import worker\n"
            "sys.exit(worker.main(['--connect', sys.argv[1],"
            " '--name', 'relic']))\n")
        src = os.path.join(ROOT, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src, ROOT] + ([env["PYTHONPATH"]]
                           if env.get("PYTHONPATH") else []))
        try:
            proc = subprocess.Popen(
                [_sys.executable, "-c", script,
                 coordinator.bound_address], env=env)
            assert proc.wait(timeout=20.0) == REJECTED_EXIT
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            coordinator.stop()


class TestRemoteFailureMatrix:
    def test_kill9_mid_obligation_blames_and_reruns(self, tmp_path):
        """kill -9 on a worker mid-obligation: exactly that worker's
        in-flight leases are blamed and re-run solo on the survivor;
        every verdict still lands."""
        marker = str(tmp_path / "pid")
        release = str(tmp_path / "release")
        with farm(2, prefix="k") as addresses:
            telemetry = Telemetry()
            scheduler = _scheduler(addresses, jobs=4, telemetry=telemetry)
            obs = [_ob("slow", CallPayload(_write_pid_and_wait,
                                           (marker, release, 42)))]
            obs += [_ob(f"q{i}", CallPayload(_square, (i,)))
                    for i in range(6)]

            def assassin():
                _wait_until(lambda: os.path.exists(marker), 15.0,
                            "worker pid marker")
                with open(marker) as handle:
                    os.kill(int(handle.read()), signal.SIGKILL)
                with open(release, "w"):
                    pass

            killer = threading.Thread(target=assassin, daemon=True)
            killer.start()
            outcomes = scheduler.run(obs)
            killer.join(timeout=15.0)
            assert [o.status for o in outcomes] == ["ok"] * 7
            assert outcomes[0].value == 42
            assert [o.value for o in outcomes[1:]] == \
                [i * i for i in range(6)]
            crashed = _details(telemetry, "crashed")
            assert crashed and all("lost" in d for d in crashed)

    def test_lease_expiry_drops_worker_and_reruns(self, tmp_path):
        """A lease that outlives its deadline is treated as a dead host:
        the connection is closed, the obligation blamed and re-run after
        the worker rejoins."""
        release = str(tmp_path / "release")
        with farm(1, prefix="e") as addresses:
            telemetry = Telemetry()
            scheduler = _scheduler(addresses, jobs=1, telemetry=telemetry,
                                   lease_timeout_seconds=1.0)
            timer = threading.Timer(
                2.5, lambda: open(release, "w").close())
            timer.start()
            try:
                outcomes = scheduler.run(
                    [_ob("stuck", CallPayload(_wait_for, (release, 7)))])
            finally:
                timer.cancel()
            assert outcomes[0].status == "ok" and outcomes[0].value == 7
            crashed = _details(telemetry, "crashed")
            assert any("lease expired" in d for d in crashed)

    def test_flapping_worker_quarantined(self, tmp_path):
        """A worker that loses in-flight leases twice is quarantined by
        name: its re-registration is rejected (the respawned process
        exits REJECTED_EXIT) and the remaining work completes on a
        replacement worker, verdicts intact."""
        s1 = str(tmp_path / "s1")
        s2 = str(tmp_path / "s2")
        proc_a, address_a = spawn_worker(listen="127.0.0.1:0",
                                         name="flappy",
                                         pythonpath_extra=(ROOT,))
        port_a = int(address_a.rpartition(":")[2])
        # Reserve a port for the replacement worker so its address can be
        # dialed from the start (the dialer retries until it exists).
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind(("127.0.0.1", 0))
        port_b = probe.getsockname()[1]
        probe.close()
        state = {"a": proc_a, "b": None, "rejected_rc": None,
                 "error": None}

        def supervise():
            try:
                for _ in range(2):          # two crash deaths
                    state["a"].wait()
                    state["a"], _ = spawn_worker(
                        listen=f"127.0.0.1:{port_a}", name="flappy",
                        pythonpath_extra=(ROOT,))
                # The second respawn re-registers a quarantined name:
                # rejected at the handshake.
                state["rejected_rc"] = state["a"].wait()
                state["b"], _ = spawn_worker(
                    listen=f"127.0.0.1:{port_b}", name="backup",
                    pythonpath_extra=(ROOT,))
            except Exception as exc:   # noqa: BLE001 - surfaced below
                state["error"] = exc

        supervisor = threading.Thread(target=supervise, daemon=True)
        supervisor.start()
        telemetry = Telemetry()
        try:
            scheduler = _scheduler(
                (address_a, f"127.0.0.1:{port_b}"), jobs=2,
                telemetry=telemetry)
            outcomes = scheduler.run(
                [_ob("c1", CallPayload(_crash_once, (s1, 1)), group="g"),
                 _ob("c2", CallPayload(_crash_once, (s2, 2)), group="g")])
            supervisor.join(timeout=20.0)
            assert state["error"] is None
            assert not supervisor.is_alive()
            assert [o.status for o in outcomes] == ["ok", "ok"]
            assert [o.value for o in outcomes] == [1, 2]
            assert state["rejected_rc"] == REJECTED_EXIT
            quarantined = [e for e in telemetry.events()
                           if e.event == "quarantined"]
            assert any(e.label == "worker:flappy" for e in quarantined)
            finished = _details(telemetry, "finished")
            assert any("worker=backup" in d for d in finished)
        finally:
            for proc in (state["a"], state["b"]):
                if proc is not None and proc.poll() is None:
                    proc.kill()
                    proc.wait()

    def test_no_workers_raises_backend_unusable(self, monkeypatch):
        monkeypatch.setattr(ObligationScheduler, "REMOTE_WORKER_GRACE",
                            0.3)
        scheduler = ObligationScheduler(
            jobs=2, backend="remote", remote_listen="127.0.0.1:0",
            cache=False, telemetry=Telemetry())
        with pytest.raises(BackendUnusableError, match="no workers"):
            scheduler.run([_ob("x", CallPayload(_square, (2,)))])

    def test_degrades_to_process_backend(self, monkeypatch):
        """The extended degradation chain: an unusable farm falls back
        to the process backend and finishes the run there."""
        monkeypatch.setattr(ObligationScheduler, "REMOTE_WORKER_GRACE",
                            0.3)
        telemetry = Telemetry()
        scheduler = ObligationScheduler(
            jobs=2, backend="remote", remote_listen="127.0.0.1:0",
            on_backend_failure="degrade", cache=False,
            telemetry=telemetry)
        outcomes = scheduler.run(
            [_ob(f"d{i}", CallPayload(_square, (i,))) for i in range(4)])
        assert [o.value for o in outcomes] == [0, 1, 4, 9]
        degraded = [e for e in telemetry.events()
                    if e.event == "degraded"]
        assert degraded and degraded[0].label == "remote->process"
        assert "no workers" in degraded[0].detail


class TestRemoteDifferential:
    """The acceptance gate: backend='remote' verdicts are bit-identical
    to serial on the sampled AES corpus -- cold, warm (shared cache),
    and after a worker crash."""

    def _keys(self, result):
        return [outcome_key(o) for o in result.outcomes]

    def test_sampled_aes_corpus_identical_cold_warm_crashed(self):
        from repro.aes.annotations import annotated_package
        from repro.aes.proof_scripts import aes_proof_scripts

        typed = annotated_package()
        sample = sorted(typed.signatures)[:6]
        scripts = aes_proof_scripts()

        def run(config):
            return ImplementationProof(typed, scripts=scripts,
                                       exec=config).run(sample)

        serial = run(ExecConfig(jobs=1, backend="serial", cache=False))
        assert serial.total_vcs > 0
        with farm(2, prefix="aes") as addresses:
            shared = ResultCache()
            cold = run(ExecConfig(jobs=4, backend="remote",
                                  remote_workers=tuple(addresses),
                                  cache=shared))
            warm = run(ExecConfig(jobs=4, backend="remote",
                                  remote_workers=tuple(addresses),
                                  cache=shared))
            assert self._keys(cold) == self._keys(serial)
            assert self._keys(warm) == self._keys(serial)

    def test_aes_verdicts_survive_worker_loss(self):
        from repro.aes.annotations import annotated_package
        from repro.aes.proof_scripts import aes_proof_scripts

        typed = annotated_package()
        sample = sorted(typed.signatures)[:4]
        scripts = aes_proof_scripts()

        def run(config):
            return ImplementationProof(typed, scripts=scripts,
                                       exec=config).run(sample)

        serial = run(ExecConfig(jobs=1, backend="serial", cache=False))
        with farm(2, prefix="loss") as addresses:
            baseline = run(ExecConfig(jobs=4, backend="remote",
                                      remote_workers=tuple(addresses),
                                      cache=False))
            assert self._keys(baseline) == self._keys(serial)
        with farm(1, prefix="half") as addresses:
            dead = tuple(addresses) + ("127.0.0.1:1",)
            degraded_farm = run(ExecConfig(jobs=4, backend="remote",
                                           remote_workers=dead,
                                           cache=False))
            assert self._keys(degraded_farm) == self._keys(serial)
