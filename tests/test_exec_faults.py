"""Chaos tests for the fault-tolerant execution layer (DESIGN.md §12).

Faults are injected on a deterministic per-obligation schedule: each
obligation carries a *plan* -- a tuple of faults consumed one per attempt
("crash" kills the worker process, "raise" throws a transient error,
"stall" sleeps briefly) -- and attempt counters live in files so the
schedule survives the process boundary and pool respawns.  The headline
gate re-runs the sampled AES corpus on all three backends under injected
faults and requires bit-identical per-VC verdicts.
"""

import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Tuple

import pytest

from repro.exec import (
    BackendUnusableError, CallPayload, ExecConfig, Obligation,
    ObligationPayload, ObligationScheduler, RetryPolicy, Telemetry,
)
from repro.exec import scheduler as scheduler_mod

from tests.test_exec_scheduler import outcome_key

#: Backoff fast enough that a chaos run costs milliseconds, not seconds.
FAST_RETRY = RetryPolicy(retries=2, base_delay=0.001, max_delay=0.005)


# -- deterministic cross-process fault schedules ---------------------------

def _attempt_file(state_dir, name):
    return os.path.join(state_dir, name.replace(os.sep, "_")
                        .replace("/", "_") + ".attempts")


def _next_attempt(state_dir, name):
    """1-based attempt number for one obligation, shared across worker
    processes: one byte appended per attempt (attempts of a single
    obligation are sequential, so the size read-back is race-free)."""
    path = _attempt_file(state_dir, name)
    fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
    try:
        os.write(fd, b".")
    finally:
        os.close(fd)
    return os.path.getsize(path)


def _apply_fault(state_dir, name, plan):
    attempt = _next_attempt(state_dir, name)
    fault = plan[attempt - 1] if attempt <= len(plan) else None
    if fault == "crash":
        os._exit(3)            # kill the worker outright, no cleanup
    if fault == "raise":
        raise RuntimeError(
            f"injected transient fault ({name}, attempt {attempt})")
    if fault == "stall":
        time.sleep(0.2)


# -- module-level payload targets (picklable by qualified name) ------------

def _faulty_value(state_dir, name, plan, value):
    _apply_fault(state_dir, name, plan)
    return value


def _busy(seconds):
    deadline = time.time() + seconds
    while time.time() < deadline:
        pass
    return "done"


def _hang_ignoring_alarm(seconds):
    """Simulate a wedged worker: block SIGALRM so the hard timeout cannot
    fire, then spin.  Only the parent's fallback deadline can end this."""
    if hasattr(signal, "pthread_sigmask"):
        signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
    return _busy(seconds)


@dataclass(frozen=True)
class ChaosPayload(ObligationPayload):
    """Wrap a real payload with a fault plan: apply this attempt's fault,
    then delegate the actual work (and the result codecs) to the inner
    payload."""

    inner: Any
    state_dir: str
    name: str
    plan: Tuple[str, ...]

    def run(self):
        _apply_fault(self.state_dir, self.name, self.plan)
        return self.inner.run()

    def encode_result(self, value):
        return self.inner.encode_result(value)

    def decode_result(self, wire):
        return self.inner.decode_result(wire)


def _chaos_wrap(ob, state_dir, plan):
    if not plan:
        return ob
    inner_thunk = ob.thunk

    def thunk():
        _apply_fault(state_dir, ob.label, plan)
        return inner_thunk()

    payload = None if ob.payload is None else ChaosPayload(
        inner=ob.payload, state_dir=state_dir, name=ob.label, plan=plan)
    return replace(ob, thunk=thunk, payload=payload)


@contextmanager
def _inject(state_dir, planner):
    """Wrap every obligation entering any scheduler with the fault plan
    ``planner(index, obligation)`` assigns it."""
    original = ObligationScheduler.run

    def run(self, obligations, stop_on=None):
        wrapped = [_chaos_wrap(ob, state_dir, tuple(planner(i, ob)))
                   for i, ob in enumerate(obligations)]
        return original(self, wrapped, stop_on)

    ObligationScheduler.run = run
    try:
        yield
    finally:
        ObligationScheduler.run = original


def _faulty_ob(state_dir, name, plan, value, group=None):
    payload = CallPayload(_faulty_value,
                          (str(state_dir), name, tuple(plan), value))
    return Obligation(kind="chaos", label=name, thunk=payload.run,
                      group=group, payload=payload)


def _scheduler(**kw):
    kw.setdefault("jobs", 2)
    kw.setdefault("backend", "process")
    kw.setdefault("cache", False)
    kw.setdefault("telemetry", Telemetry())
    kw.setdefault("retries", FAST_RETRY)
    return ObligationScheduler(**kw)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy(retries=3)
        for attempt in (1, 2, 3):
            assert policy.delay(attempt, "vc:Sub_Bytes/vc1") == \
                policy.delay(attempt, "vc:Sub_Bytes/vc1")

    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(retries=5, base_delay=0.1, factor=2.0,
                             max_delay=100.0, jitter=0.0)
        assert [policy.delay(a) for a in (1, 2, 3, 4)] == \
            [0.1, 0.2, 0.4, 0.8]

    def test_max_delay_caps_backoff(self):
        policy = RetryPolicy(retries=9, base_delay=0.1, factor=10.0,
                             max_delay=0.5, jitter=0.1)
        for attempt in range(1, 10):
            assert policy.delay(attempt, "x") <= 0.5

    def test_jitter_bounded_by_fraction(self):
        policy = RetryPolicy(retries=1, base_delay=0.1, factor=2.0,
                             max_delay=100.0, jitter=0.25)
        delay = policy.delay(1, "token")
        assert 0.1 <= delay <= 0.1 * 1.25

    def test_zero_policy_never_sleeps(self):
        policy = RetryPolicy()
        assert policy.retries == 0
        assert RetryPolicy(base_delay=0.0).delay(3, "t") == 0.0

    def test_coerce(self):
        assert RetryPolicy.coerce(3) == RetryPolicy(retries=3)
        policy = RetryPolicy(retries=1, base_delay=0.2)
        assert RetryPolicy.coerce(policy) is policy
        with pytest.raises(TypeError):
            RetryPolicy.coerce(True)
        with pytest.raises(TypeError):
            RetryPolicy.coerce("twice")
        with pytest.raises(ValueError, match="retries"):
            RetryPolicy.coerce(-1)

    def test_validation(self):
        with pytest.raises(ValueError, match="base_delay"):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError, match="factor"):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValueError, match="max_delay"):
            RetryPolicy(max_delay=-1.0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy(retries=1).delay(0)

    def test_to_json(self):
        assert RetryPolicy(retries=2).to_json() == {
            "retries": 2, "base_delay": 0.05, "factor": 2.0,
            "max_delay": 2.0, "jitter": 0.1}


# ---------------------------------------------------------------------------
# Crash recovery (process backend)
# ---------------------------------------------------------------------------

class TestCrashRecovery:
    def test_single_crash_recovers_and_completes(self, tmp_path):
        """One worker-killing obligation: the pool is respawned, the
        obligation re-runs solo and succeeds, nothing is quarantined and
        the run never raises (default ``on_error='raise'``)."""
        telemetry = Telemetry()
        obs = [_faulty_ob(tmp_path, f"c{i}",
                          ("crash",) if i == 2 else (), i * 10)
               for i in range(6)]
        outcomes = _scheduler(telemetry=telemetry).run(obs)
        assert [o.value for o in outcomes] == [0, 10, 20, 30, 40, 50]
        assert all(o.ok for o in outcomes)
        stats = telemetry.stats()
        assert stats.crashes >= 1
        assert stats.quarantined == 0
        assert stats.retried_ok >= 1       # the crasher succeeded on re-run

    def test_double_crasher_quarantined_run_continues(self, tmp_path):
        """An obligation that kills its worker on every attempt is blamed
        twice, quarantined with a ``crashed`` outcome, and everything else
        still completes -- the run is not aborted."""
        telemetry = Telemetry()
        obs = [_faulty_ob(tmp_path, f"q{i}",
                          ("crash",) * 8 if i == 1 else (), i)
               for i in range(5)]
        outcomes = _scheduler(telemetry=telemetry).run(obs)
        assert outcomes[1].status == "crashed"
        assert not outcomes[1].ok
        assert "quarantined" in outcomes[1].error
        for i in (0, 2, 3, 4):
            assert outcomes[i].ok and outcomes[i].value == i
        stats = telemetry.stats()
        assert stats.quarantined == 1
        assert stats.crashes >= 2          # two blames for the killer
        events = [e.event for e in telemetry.events()
                  if e.label == "q1"]
        assert "quarantined" in events

    def test_crash_in_group_preserves_serial_order(self, tmp_path):
        """Crash recovery must not reorder a group: successors only
        dispatch after the crashed predecessor is finalized solo."""
        obs = [_faulty_ob(tmp_path, f"g{i}",
                          ("crash",) if i == 2 else (), i, group="g")
               for i in range(5)]
        outcomes = _scheduler(jobs=4).run(obs)
        assert [o.value for o in outcomes] == [0, 1, 2, 3, 4]
        assert all(o.ok for o in outcomes)

    def test_transient_raise_recovers_on_all_backends(self, tmp_path):
        """A thunk/payload that raises once is absorbed by the retry
        policy on every backend and recorded as ``retried_ok``."""
        for backend, jobs in (("serial", 1), ("thread", 2), ("process", 2)):
            telemetry = Telemetry()
            state = tmp_path / backend
            state.mkdir()
            obs = [_faulty_ob(state, f"t{i}",
                              ("raise",) if i == 1 else (), i)
                   for i in range(3)]
            outcomes = _scheduler(backend=backend, jobs=jobs,
                                  telemetry=telemetry).run(obs)
            assert [o.value for o in outcomes] == [0, 1, 2], backend
            assert telemetry.stats().retried_ok == 1, backend


# ---------------------------------------------------------------------------
# Backend degradation
# ---------------------------------------------------------------------------

def _obs(n=4):
    return [Obligation(kind="test", label=f"o{i}",
                       thunk=lambda i=i: i * i) for i in range(n)]


class _NoThreads:
    def __init__(self, *a, **kw):
        raise RuntimeError("can't start new thread (injected)")


class TestDegradation:
    @pytest.fixture
    def no_process_pool(self, monkeypatch):
        def refuse(self):
            raise BackendUnusableError("process",
                                       "no multiprocessing (injected)")
        monkeypatch.setattr(ObligationScheduler, "_spawn_pool", refuse)

    @pytest.fixture
    def no_thread_pool(self, monkeypatch):
        monkeypatch.setattr(scheduler_mod, "ThreadPoolExecutor", _NoThreads)

    def test_process_degrades_to_thread(self, no_process_pool):
        telemetry = Telemetry()
        outcomes = _scheduler(telemetry=telemetry,
                              on_backend_failure="degrade").run(_obs())
        assert [o.value for o in outcomes] == [0, 1, 4, 9]
        stats = telemetry.stats()
        assert stats.degraded == 1
        degraded = [e for e in telemetry.events() if e.event == "degraded"]
        assert [e.label for e in degraded] == ["process->thread"]
        assert "injected" in degraded[0].detail

    def test_thread_degrades_to_serial(self, no_thread_pool):
        telemetry = Telemetry()
        outcomes = _scheduler(backend="thread", telemetry=telemetry,
                              on_backend_failure="degrade").run(_obs())
        assert [o.value for o in outcomes] == [0, 1, 4, 9]
        assert telemetry.stats().degraded == 1

    def test_full_chain_process_to_serial(self, no_process_pool,
                                          no_thread_pool):
        telemetry = Telemetry()
        outcomes = _scheduler(telemetry=telemetry,
                              on_backend_failure="degrade").run(_obs())
        assert [o.value for o in outcomes] == [0, 1, 4, 9]
        assert telemetry.stats().degraded == 2
        assert [e.label for e in telemetry.events()
                if e.event == "degraded"] == \
            ["process->thread", "thread->serial"]

    def test_on_backend_failure_raise_propagates(self, no_process_pool):
        with pytest.raises(BackendUnusableError, match="process"):
            _scheduler(on_backend_failure="raise").run(_obs())

    def test_degrade_keeps_finished_outcomes(self, monkeypatch, tmp_path):
        """Outcomes reached before the degradation stay final: when the
        thread pool stops accepting work partway, the serial fallback
        runs only the unfinished obligations -- nothing runs twice."""
        from concurrent.futures import ThreadPoolExecutor as RealPool

        class FlakySubmitPool:
            """Accepts two submissions, then refuses like a thread-starved
            interpreter would."""

            def __init__(self, max_workers=None):
                self._inner = RealPool(max_workers=max_workers)
                self._accepted = 0

            def submit(self, fn, *args, **kwargs):
                self._accepted += 1
                if self._accepted > 2:
                    raise RuntimeError("can't start new thread (injected)")
                return self._inner.submit(fn, *args, **kwargs)

            def shutdown(self, wait=True):
                self._inner.shutdown(wait=wait)

        monkeypatch.setattr(scheduler_mod, "ThreadPoolExecutor",
                            FlakySubmitPool)
        telemetry = Telemetry()
        obs = [_faulty_ob(tmp_path, f"d{i}", (), i) for i in range(4)]
        # batch_size=1: per-obligation submissions, so the injected
        # third-submit refusal is reachable (batched dispatch would fold
        # all four obligations into the two accepted submissions).
        outcomes = _scheduler(backend="thread", telemetry=telemetry,
                              on_backend_failure="degrade",
                              batch_size=1).run(obs)
        assert [o.value for o in outcomes] == [0, 1, 2, 3]
        assert telemetry.stats().degraded == 1
        # every obligation ran exactly once despite the backend switch
        for i in range(4):
            assert os.path.getsize(_attempt_file(str(tmp_path),
                                                 f"d{i}")) == 1


# ---------------------------------------------------------------------------
# Failure taxonomy & abandoned workers
# ---------------------------------------------------------------------------

class TestFailureTaxonomy:
    def test_every_failure_mode_lands_in_telemetry(self, tmp_path,
                                                   monkeypatch):
        """One run exhibiting all five taxonomy entries: a hard timeout,
        crash blames, a quarantine, a retried-ok recovery, and (in a
        follow-up pass on the same telemetry) a degradation."""
        if not hasattr(signal, "SIGALRM"):
            pytest.skip("no SIGALRM on this platform")
        telemetry = Telemetry()
        obs = [
            _faulty_ob(tmp_path, "fine", (), 1),
            _faulty_ob(tmp_path, "flaky", ("raise",), 2),
            _faulty_ob(tmp_path, "killer", ("crash",) * 8, 3),
            Obligation(kind="chaos", label="hang",
                       thunk=lambda: _busy(30.0),
                       payload=CallPayload(_busy, (30.0,))),
        ]
        outcomes = _scheduler(telemetry=telemetry, timeout_seconds=0.3,
                              on_error="record").run(obs)
        assert outcomes[0].ok
        assert outcomes[1].ok
        assert outcomes[2].status == "crashed"
        assert outcomes[3].status == "timed_out"

        def refuse(self):
            raise BackendUnusableError("process", "gone (injected)")
        monkeypatch.setattr(ObligationScheduler, "_spawn_pool", refuse)
        _scheduler(telemetry=telemetry,
                   on_backend_failure="degrade").run(_obs(2))

        failures = telemetry.stats().failures
        assert set(failures) == {"timeout", "crashed", "quarantined",
                                 "degraded", "retried_ok"}
        assert all(count >= 1 for count in failures.values()), failures

    def test_failures_in_json_dump(self, tmp_path):
        telemetry = Telemetry()
        _scheduler(telemetry=telemetry).run(
            [_faulty_ob(tmp_path, "flaky", ("raise",), 7)])
        dump = telemetry.to_json(context={"backend": "process"})
        assert dump["stats"]["failures"]["retried_ok"] == 1
        assert "abandoned_workers" in dump["stats"]
        assert dump["context"]["backend"] == "process"


class TestAbandonedWorkers:
    def test_thread_backend_records_abandoned_worker(self):
        """A timed-out thread cannot be preempted; abandoning it at pool
        shutdown must be visible in telemetry, not a silent drop."""
        telemetry = Telemetry()
        obs = [Obligation(kind="test", label="slow",
                          thunk=lambda: time.sleep(1.5) or "late"),
               Obligation(kind="test", label="fast", thunk=lambda: 42)]
        outcomes = ObligationScheduler(
            jobs=2, backend="thread", cache=False, telemetry=telemetry,
            timeout_seconds=0.2).run(obs)
        assert outcomes[0].status == "timed_out"
        assert outcomes[1].ok and outcomes[1].value == 42
        stats = telemetry.stats()
        assert stats.abandoned_workers == 1
        events = [e for e in telemetry.events()
                  if e.event == "worker_abandoned"]
        assert [e.label for e in events] == ["backend:thread"]

    def test_process_backend_records_abandoned_worker(self, monkeypatch,
                                                      tmp_path):
        """A worker that blocks SIGALRM and spins is unreachable by the
        hard timeout; the parent's fallback deadline abandons it and the
        abandonment is recorded."""
        if not hasattr(signal, "SIGALRM"):
            pytest.skip("no SIGALRM on this platform")
        monkeypatch.setattr(ObligationScheduler,
                            "TIMEOUT_FALLBACK_SLACK", 0.3)
        telemetry = Telemetry()
        wedged = Obligation(kind="test", label="wedged",
                            thunk=lambda: "unused",
                            payload=CallPayload(_hang_ignoring_alarm,
                                                (3.0,)))
        outcomes = _scheduler(telemetry=telemetry,
                              timeout_seconds=0.2).run(
            [wedged, _faulty_ob(tmp_path, "healthy", (), 5)])
        assert outcomes[0].status == "timed_out"
        assert "unresponsive" in outcomes[0].error
        assert outcomes[1].ok and outcomes[1].value == 5
        stats = telemetry.stats()
        assert stats.abandoned_workers == 1
        assert [e.label for e in telemetry.events()
                if e.event == "worker_abandoned"] == ["backend:process"]


# ---------------------------------------------------------------------------
# The headline chaos gate: AES corpus, bit-identical verdicts under faults
# ---------------------------------------------------------------------------

class TestChaosDifferentialAES:
    """Injected faults must never change a proof verdict: serial, thread
    and process runs of the sampled AES corpus agree bit-for-bit even
    while workers crash, payloads raise transiently, and stalls fire."""

    def _keys(self, result):
        return [outcome_key(o) for o in result.outcomes]

    def test_sampled_corpus_identical_under_injected_faults(self, tmp_path):
        from repro.aes.annotations import annotated_package
        from repro.aes.proof_scripts import aes_proof_scripts
        from repro.prover import ImplementationProof

        typed = annotated_package()
        sample = sorted(typed.signatures)[:5]
        scripts = aes_proof_scripts()

        def transient(i, ob):
            # recoverable everywhere: a single transient raise per fifth
            # obligation, absorbed by the retry policy
            return ("raise",) if i % 5 == 1 else ()

        def hostile(i, ob):
            # process-only extras: a worker-killing crash and a stall on
            # top of the transient raises
            if i % 5 == 1:
                return ("raise",)
            if i == 3:
                return ("crash",)
            if i == 4:
                return ("stall",)
            return ()

        def run(backend, jobs, planner, sub):
            state = tmp_path / sub
            state.mkdir()
            telemetry = Telemetry()
            with _inject(str(state), planner):
                result = ImplementationProof(
                    typed, scripts=scripts,
                    exec=ExecConfig(jobs=jobs, backend=backend, cache=False,
                                    retries=FAST_RETRY,
                                    telemetry=telemetry)).run(sample)
            return result, telemetry.stats()

        serial, serial_stats = run("serial", 1, transient, "serial")
        thread, thread_stats = run("thread", 4, transient, "thread")
        process, process_stats = run("process", 4, hostile, "process")

        assert serial.total_vcs > 4
        assert self._keys(thread) == self._keys(serial)
        assert self._keys(process) == self._keys(serial)
        assert process.auto_percent == serial.auto_percent
        # the faults genuinely fired and were genuinely absorbed
        assert serial_stats.retried_ok >= 1
        assert thread_stats.retried_ok >= 1
        assert process_stats.retried_ok >= 1
        assert process_stats.crashes >= 1
        assert process_stats.quarantined == 0
        assert process_stats.errors == 0


# ---------------------------------------------------------------------------
# Runner CLI guards (satellites)
# ---------------------------------------------------------------------------

class TestRunnerFlags:
    def test_jobs_zero_is_an_error(self):
        from repro.harness import runner
        with pytest.raises(SystemExit, match="--jobs must be >= 1"):
            runner._parse_jobs(["--jobs", "0"])

    def test_jobs_negative_is_an_error(self):
        from repro.harness import runner
        with pytest.raises(SystemExit, match="--jobs must be >= 1"):
            runner._parse_jobs(["--jobs=-3"])

    def test_jobs_non_integer_is_an_error(self):
        from repro.harness import runner
        with pytest.raises(SystemExit, match="expects an integer"):
            runner._parse_jobs(["--jobs", "many"])

    def test_jobs_valid_and_default(self):
        from repro.harness import runner
        assert runner._parse_jobs(["--jobs", "4"]) == 4
        assert runner._parse_jobs([]) == 1

    def test_retry_flags_build_a_policy(self):
        from repro.harness import runner
        policy = runner._parse_retry_policy(
            ["--retries", "3", "--max-retry-delay", "0.5"])
        assert policy == RetryPolicy(retries=3, max_delay=0.5)
        assert runner._parse_retry_policy([]) == RetryPolicy()

    def test_retry_flags_invalid(self):
        from repro.harness import runner
        with pytest.raises(SystemExit, match="--retries"):
            runner._parse_retry_policy(["--retries", "-1"])
        with pytest.raises(SystemExit, match="--max-retry-delay"):
            runner._parse_retry_policy(["--max-retry-delay", "-2"])

    def test_on_backend_failure_flag(self):
        from repro.harness import runner
        assert runner._parse_on_backend_failure([]) == "raise"
        assert runner._parse_on_backend_failure(
            ["--on-backend-failure", "degrade"]) == "degrade"
        with pytest.raises(SystemExit, match="on-backend-failure"):
            runner._parse_on_backend_failure(
                ["--on-backend-failure", "panic"])


# ---------------------------------------------------------------------------
# Batched dispatch under faults (DESIGN.md §18)
# ---------------------------------------------------------------------------

class TestBatchedChaos:
    def test_crasher_inside_batch_blames_members_once(self, tmp_path):
        """A worker crash takes its whole batch down: every member is
        blamed once (one strike, never quarantine-worthy alone), then
        the survivors re-run solo and succeed."""
        telemetry = Telemetry()
        obs = [_faulty_ob(tmp_path, f"b{i}",
                          ("crash",) if i == 2 else (), i * 10)
               for i in range(8)]
        outcomes = _scheduler(telemetry=telemetry,
                              batch_size=4).run(obs)
        assert [o.value for o in outcomes] == [i * 10 for i in range(8)]
        assert all(o.ok for o in outcomes)
        stats = telemetry.stats()
        assert stats.batched >= 1
        # every member of the broken batch takes the blame...
        assert stats.crashes >= 2
        # ...but a single collective strike never quarantines anyone
        assert stats.quarantined == 0
        assert stats.retried_ok >= 1

    def test_double_crasher_in_batch_quarantined_innocents_ok(
            self, tmp_path):
        """The solo re-run after a broken batch is the second strike for
        a persistent crasher: it is quarantined there, while its batch
        mates -- innocent of both crashes -- all complete."""
        telemetry = Telemetry()
        obs = [_faulty_ob(tmp_path, f"p{i}",
                          ("crash",) * 8 if i == 1 else (), i)
               for i in range(8)]
        outcomes = _scheduler(telemetry=telemetry,
                              batch_size=4).run(obs)
        assert outcomes[1].status == "crashed"
        assert "quarantined" in outcomes[1].error
        for i in (0, 2, 3, 4, 5, 6, 7):
            assert outcomes[i].ok and outcomes[i].value == i, i
        stats = telemetry.stats()
        assert stats.quarantined == 1
        assert stats.crashes >= 2

    def test_transient_raise_inside_batch_retries_in_place(self, tmp_path):
        """A member raising a transient error is retried inside the
        worker's batch loop -- the batch is not broken up and nobody
        else is blamed."""
        telemetry = Telemetry()
        obs = [_faulty_ob(tmp_path, f"r{i}",
                          ("raise",) if i == 3 else (), i)
               for i in range(6)]
        outcomes = _scheduler(telemetry=telemetry,
                              batch_size=6, jobs=1).run(obs)
        assert [o.value for o in outcomes] == list(range(6))
        stats = telemetry.stats()
        assert stats.retried_ok == 1
        assert stats.crashes == 0

    def test_wedged_batch_times_out_every_member(self, monkeypatch,
                                                 tmp_path):
        """A batch whose worker wedges past the scaled fallback deadline
        is abandoned wholesale: every member times out (no silent
        drops), and healthy work elsewhere still completes."""
        if not hasattr(signal, "SIGALRM"):
            pytest.skip("no SIGALRM on this platform")
        monkeypatch.setattr(ObligationScheduler,
                            "TIMEOUT_FALLBACK_SLACK", 0.3)
        telemetry = Telemetry()
        wedged = [Obligation(kind="test", label=f"w{i}",
                             thunk=lambda: "unused",
                             payload=CallPayload(_hang_ignoring_alarm,
                                                 (6.0,)))
                  for i in range(2)]
        healthy = [_faulty_ob(tmp_path, f"h{i}", (), i) for i in range(2)]
        outcomes = _scheduler(telemetry=telemetry, timeout_seconds=0.2,
                              batch_size=2, jobs=2).run(wedged + healthy)
        assert [o.status for o in outcomes[:2]] == ["timed_out"] * 2
        assert all(o.ok for o in outcomes[2:])
        assert telemetry.stats().abandoned_workers >= 1

    def test_batched_verdicts_identical_to_unbatched_under_faults(
            self, tmp_path):
        """The §12 discipline extended to §18: the same fault schedule
        produces bit-identical outcome keys whether dispatch is batched
        or per-obligation."""
        runs = {}
        for batch_size in (1, 4):
            state = tmp_path / f"bs{batch_size}"
            state.mkdir()
            obs = [_faulty_ob(state, f"d{i}",
                              {1: ("raise",), 4: ("crash",),
                               6: ("crash",) * 8}.get(i, ()), i)
                   for i in range(10)]
            outcomes = _scheduler(telemetry=Telemetry(), on_error="record",
                                  batch_size=batch_size).run(obs)
            runs[batch_size] = [(o.obligation.label, o.status, o.value,
                                 o.error is None) for o in outcomes]
        assert runs[1] == runs[4]
