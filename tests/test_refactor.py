"""Tests for the refactoring engine and transformation library."""

import pytest

from repro.lang import analyze, parse_package, print_package
from repro.lang import ast
from repro.refactor import (
    ExtractFunction, ExtractProcedureClone, IntroduceIntermediateVariable,
    MergeLoopNest, MoveIntoConditional, MoveOutOfConditional,
    RefactoringEngine, RemoveDeadSubprogram, RemoveIntermediateVariable,
    Rename, RerollLoop, ReverseTableLookup, SeparateLoop, ShiftLoopBounds,
    SplitLoopNest, SplitProcedure, TransformationError,
    UserSpecifiedTransformation,
)

UNROLLED = """
package P is
   type Byte is mod 256;
   type Arr is array (0 .. 3) of Byte;
   procedure Q (A : in Arr; B : out Arr) is
   begin
      B (0) := A (0) xor 255;
      B (1) := A (1) xor 255;
      B (2) := A (2) xor 255;
      B (3) := A (3) xor 255;
   end Q;
end P;
"""


def engine_for(src, observables, check="full"):
    return RefactoringEngine(parse_package(src), observables, check=check)


class TestRerollLoop:
    def test_reroll_four_groups(self):
        engine = engine_for(UNROLLED, ["Q"])
        application = engine.apply(
            RerollLoop(subprogram="Q", start=0, group_size=1, count=4))
        assert application.preserved
        body = engine.package.subprogram("Q").body
        assert len(body) == 1
        assert isinstance(body[0], ast.For)
        assert application.theorems[0].evidence == "symbolic"

    def test_reroll_rejects_broken_pattern(self):
        broken = UNROLLED.replace("B (2) := A (2) xor 255;",
                                  "B (2) := A (2) xor 254;")
        engine = engine_for(broken, ["Q"])
        with pytest.raises(TransformationError, match="affine|differ"):
            engine.apply(RerollLoop(subprogram="Q", start=0,
                                    group_size=1, count=4))

    def test_reroll_rejects_defective_order(self):
        # Same statements, but one uses a different *variable*: not affine.
        broken = UNROLLED.replace("B (1) := A (1) xor 255;",
                                  "B (1) := B (0) xor 255;")
        engine = engine_for(broken, ["Q"])
        with pytest.raises(TransformationError):
            engine.apply(RerollLoop(subprogram="Q", start=0,
                                    group_size=1, count=4))

    def test_reroll_affine_stride(self):
        src = """
package P is
   type Byte is mod 256;
   type Arr is array (0 .. 7) of Byte;
   procedure Q (A : in Arr; B : out Arr) is
   begin
      B (0) := A (1);
      B (2) := A (3);
      B (4) := A (5);
      B (6) := A (7);
      B (1) := 0;
      B (3) := 0;
      B (5) := 0;
      B (7) := 0;
   end Q;
end P;
"""
        engine = engine_for(src, ["Q"])
        engine.apply(RerollLoop(subprogram="Q", start=0, group_size=1,
                                count=4, var="I"))
        engine.apply(RerollLoop(subprogram="Q", start=1, group_size=1,
                                count=4, var="J"))
        body = engine.package.subprogram("Q").body
        assert all(isinstance(s, ast.For) for s in body)

    def test_undo_restores_previous_version(self):
        engine = engine_for(UNROLLED, ["Q"])
        before = print_package(engine.package)
        engine.apply(RerollLoop(subprogram="Q", start=0, group_size=1,
                                count=4))
        assert print_package(engine.package) != before
        engine.undo()
        assert print_package(engine.package) == before


class TestFreshVariableCapture:
    """Loop variables live outside the declared context, so "fresh" must
    mean more than ``ctx.var_type(v) is None``.  Regression tests for the
    planner-discovered defect where rerolling statements *inside* an
    existing ``for I`` loop introduced an inner loop also named I: the
    outer-loop occurrences in the rerolled statements were silently
    captured (``RK (6*I + ...)`` started indexing with the inner I),
    producing a type-correct but wrong program."""

    NESTED = """
package P is
   type Byte is mod 256;
   type Arr is array (0 .. 7) of Byte;
   procedure Q (A : in Arr; B : out Arr) is
   begin
      for I in 0 .. 1 loop
         B (4 * I + 0) := A (4 * I + 0) xor 255;
         B (4 * I + 1) := A (4 * I + 1) xor 255;
         B (4 * I + 2) := A (4 * I + 2) xor 255;
         B (4 * I + 3) := A (4 * I + 3) xor 255;
      end loop;
   end Q;
end P;
"""

    def test_reroll_rejects_enclosing_loop_variable(self):
        engine = engine_for(self.NESTED, ["Q"])
        with pytest.raises(TransformationError, match="capture"):
            engine.apply(RerollLoop(subprogram="Q", start=0, group_size=1,
                                    count=4, var="I", path=(0,)))

    def test_reroll_enumeration_avoids_shadowing(self):
        typed = analyze(parse_package(self.NESTED))
        inner_sites = [s for s in RerollLoop.enumerate_sites(typed)
                       if s.path == (0,)]
        assert inner_sites, "the unrolled run inside the loop is a site"
        assert all(s.var != "I" for s in inner_sites)
        # The non-shadowing variable must also yield a *correct* program:
        # the symbolic equivalence theorem accepts the nested reroll.
        engine = engine_for(self.NESTED, ["Q"])
        application = engine.apply(inner_sites[0])
        assert application.preserved
        outer = engine.package.subprogram("Q").body[0]
        assert isinstance(outer.body[0], ast.For)
        assert outer.body[0].var != outer.var

    def test_reroll_rejects_variable_used_in_statements(self):
        # Wrapping statements that *contain* a loop over I in a new outer
        # loop over I is the capture in the other direction.
        src = UNROLLED.replace(
            "      B (3) := A (3) xor 255;",
            "      B (3) := A (3) xor 255;\n"
            "      for I in 0 .. 3 loop\n"
            "         B (I) := B (I) xor 1;\n"
            "      end loop;")
        engine = engine_for(src, ["Q"])
        with pytest.raises(TransformationError, match="capture"):
            # group = [one assignment, the I-loop] repeated: inapplicable
            # anyway, but the capture check must fire first and the var
            # check must hold for any hand-built instance.
            engine.apply(RerollLoop(subprogram="Q", start=3, group_size=2,
                                    count=1, var="I"))

    def test_split_rejects_enclosing_and_equal_variables(self):
        src = """
package P is
   type Byte is mod 256;
   type Arr is array (0 .. 7) of Byte;
   procedure Q (A : in Arr; B : out Arr) is
   begin
      for I in 0 .. 1 loop
         for K in 0 .. 3 loop
            B (4 * I + K) := A (4 * I + K) xor 255;
         end loop;
      end loop;
   end Q;
end P;
"""
        engine = engine_for(src, ["Q"])
        with pytest.raises(TransformationError, match="capture"):
            engine.apply(SplitLoopNest(subprogram="Q", index=0, inner=2,
                                       outer_var="I", inner_var="J",
                                       path=(0,)))
        with pytest.raises(TransformationError, match="differ"):
            engine.apply(SplitLoopNest(subprogram="Q", index=0, inner=2,
                                       outer_var="J", inner_var="J",
                                       path=(0,)))

    def test_merge_rejects_enclosing_loop_variable(self):
        src = """
package P is
   type Byte is mod 256;
   type Arr is array (0 .. 7) of Byte;
   procedure Q (A : in Arr; B : out Arr) is
   begin
      for I in 0 .. 1 loop
         for J in 0 .. 1 loop
            for K in 0 .. 1 loop
               B (4 * I + 2 * J + K) := A (4 * I + 2 * J + K) xor 255;
            end loop;
         end loop;
      end loop;
   end Q;
end P;
"""
        engine = engine_for(src, ["Q"])
        with pytest.raises(TransformationError, match="capture"):
            engine.apply(MergeLoopNest(subprogram="Q", index=0, var="I",
                                       path=(0,)))
        typed = analyze(parse_package(src))
        inner = [s for s in MergeLoopNest.enumerate_sites(typed)
                 if s.path == (0,)]
        assert inner and all(s.var not in ("I", "J", "K") for s in inner)
        application = engine.apply(inner[0])
        assert application.preserved


class TestConditionals:
    SRC = """
package P is
   procedure Q (X : in Integer; F : in Boolean; Y : out Integer) is
      T : Integer;
   begin
      T := X + 1;
      if F then
         Y := T;
      else
         Y := 0;
      end if;
   end Q;
end P;
"""

    def test_move_into_conditional(self):
        engine = engine_for(self.SRC, ["Q"])
        application = engine.apply(
            MoveIntoConditional(subprogram="Q", index=0))
        assert application.preserved
        body = engine.package.subprogram("Q").body
        assert len(body) == 1
        first = body[0]
        assert isinstance(first, ast.If)
        assert isinstance(first.branches[0][1][0], ast.Assign)

    def test_move_into_rejects_interference(self):
        src = """
package P is
   procedure Q (X : in Integer; Y : out Integer) is
      F : Boolean;
   begin
      F := X > 0;
      if F then
         Y := 1;
      else
         Y := 0;
      end if;
   end Q;
end P;
"""
        engine = engine_for(src, ["Q"])
        with pytest.raises(TransformationError, match="condition reads"):
            engine.apply(MoveIntoConditional(subprogram="Q", index=0))

    def test_move_out_of_conditional_roundtrip(self):
        engine = engine_for(self.SRC, ["Q"])
        engine.apply(MoveIntoConditional(subprogram="Q", index=0))
        engine.apply(MoveOutOfConditional(subprogram="Q", index=0))
        body = engine.package.subprogram("Q").body
        assert isinstance(body[0], ast.Assign)
        assert isinstance(body[1], ast.If)


class TestSplitProcedure:
    SRC = """
package P is
   type Byte is mod 256;
   type Arr is array (0 .. 3) of Byte;
   procedure Q (A : in Arr; B : out Arr; Total : out Byte) is
      T : Byte;
   begin
      T := 0;
      for I in 0 .. 3 loop
         T := T + A (I);
      end loop;
      Total := T;
      for I in 0 .. 3 loop
         B (I) := A (I);
      end loop;
   end Q;
end P;
"""

    def test_split_extracts_procedure(self):
        engine = engine_for(self.SRC, ["Q"])
        application = engine.apply(SplitProcedure(
            subprogram="Q", start=0, end=3, new_name="Sum_All"))
        assert application.preserved
        pkg = engine.package
        assert {sp.name for sp in pkg.subprograms} == {"Q", "Sum_All"}
        q = pkg.subprogram("Q")
        assert isinstance(q.body[0], ast.ProcCall)
        new = pkg.subprogram("Sum_All")
        modes = {p.name: p.mode for p in new.params}
        assert modes["A"] == "in"
        assert modes["Total"] == "out"
        # T is dead after the region and local: moved into the new procedure.
        assert "T" in {d.name for d in new.decls}

    def test_split_rejects_region_with_return(self):
        src = """
package P is
   function F (X : in Integer) return Integer is
   begin
      return X;
   end F;
end P;
"""
        engine = engine_for(src, ["F"])
        with pytest.raises(TransformationError, match="return"):
            engine.apply(SplitProcedure(subprogram="F", start=0, end=1,
                                        new_name="G"))


class TestLoopForms:
    def test_shift_bounds(self):
        src = """
package P is
   type Arr is array (0 .. 3) of Integer;
   procedure Q (B : out Arr) is
   begin
      for I in 0 .. 3 loop
         B (I) := I;
      end loop;
   end Q;
end P;
"""
        engine = engine_for(src, ["Q"])
        application = engine.apply(ShiftLoopBounds(subprogram="Q", index=0,
                                                   delta=1))
        assert application.preserved
        loop = engine.package.subprogram("Q").body[0]
        assert loop.lo == ast.IntLit(value=1)
        assert loop.hi == ast.IntLit(value=4)

    def test_split_and_merge_nest(self):
        src = """
package P is
   type Arr is array (0 .. 15) of Integer;
   procedure Q (B : out Arr) is
   begin
      for K in 0 .. 15 loop
         B (K) := K * 2;
      end loop;
   end Q;
end P;
"""
        engine = engine_for(src, ["Q"])
        engine.apply(SplitLoopNest(subprogram="Q", index=0, inner=4))
        outer = engine.package.subprogram("Q").body[0]
        assert isinstance(outer, ast.For)
        assert isinstance(outer.body[0], ast.For)
        engine.apply(MergeLoopNest(subprogram="Q", index=0, var="K2"))
        merged = engine.package.subprogram("Q").body[0]
        assert merged.hi == ast.IntLit(value=15)


class TestExtractFunction:
    SRC = """
package P is
   type Byte is mod 256;
   procedure Q (A : in Byte; B : in Byte; X : out Byte; Y : out Byte) is
   begin
      X := (A xor 27) and 254;
      Y := (B xor 27) and 254;
   end Q;
end P;
"""

    def test_extract_function_replaces_clones(self):
        engine = engine_for(self.SRC, ["Q"])
        application = engine.apply(ExtractFunction(function_source="""
   function Scramble (V : in Byte) return Byte is
   begin
      return (V xor 27) and 254;
   end Scramble;
""", minimum_occurrences=2))
        assert application.preserved
        q = engine.package.subprogram("Q")
        calls = [n for n in ast.walk(q) if isinstance(n, ast.FuncCall)
                 and n.name == "Scramble"]
        assert len(calls) == 2

    def test_extract_function_requires_occurrences(self):
        engine = engine_for(self.SRC, ["Q"])
        with pytest.raises(TransformationError, match="matched 0"):
            engine.apply(ExtractFunction(function_source="""
   function Nope (V : in Byte) return Byte is
   begin
      return (V xor 99) and 254;
   end Nope;
"""))


class TestExtractProcedureClone:
    SRC = """
package P is
   type Byte is mod 256;
   type Arr is array (0 .. 3) of Byte;
   procedure Q (A : in Arr; B : out Arr; C : out Arr) is
   begin
      for I in 0 .. 3 loop
         B (I) := A (I) xor 9;
      end loop;
      for I in 0 .. 3 loop
         C (I) := A (I) xor 9;
      end loop;
   end Q;
end P;
"""

    def test_extract_clone_blocks(self):
        engine = engine_for(self.SRC, ["Q"])
        application = engine.apply(ExtractProcedureClone(procedure_source="""
   procedure Mask_All (Src : in Arr; Dst : out Arr) is
   begin
      for I in 0 .. 3 loop
         Dst (I) := Src (I) xor 9;
      end loop;
   end Mask_All;
""", minimum_occurrences=2))
        assert application.preserved
        q = engine.package.subprogram("Q")
        assert all(isinstance(s, ast.ProcCall) for s in q.body)


class TestSeparateLoop:
    def test_separate_independent_parts(self):
        src = """
package P is
   type Arr is array (0 .. 3) of Integer;
   procedure Q (A : in Arr; B : out Arr; C : out Arr) is
   begin
      for I in 0 .. 3 loop
         B (I) := A (I) + 1;
         C (I) := B (I) * 2;
      end loop;
   end Q;
end P;
"""
        engine = engine_for(src, ["Q"])
        application = engine.apply(SeparateLoop(subprogram="Q", index=0,
                                                split_at=1))
        assert application.preserved
        body = engine.package.subprogram("Q").body
        assert len(body) == 2

    def test_separate_rejects_backward_flow(self):
        src = """
package P is
   type Arr is array (0 .. 3) of Integer;
   procedure Q (A : in Arr; B : out Arr; S : out Integer) is
   begin
      S := 0;
      for I in 0 .. 3 loop
         B (I) := A (I) + S;
         S := S + 1;
      end loop;
   end Q;
end P;
"""
        engine = engine_for(src, ["Q"])
        with pytest.raises(TransformationError):
            engine.apply(SeparateLoop(subprogram="Q", index=1, split_at=1))


class TestStorage:
    def test_remove_intermediate(self):
        src = """
package P is
   procedure Q (X : in Integer; Y : out Integer) is
      T : Integer;
   begin
      T := X * 2;
      Y := T + 1;
   end Q;
end P;
"""
        engine = engine_for(src, ["Q"])
        application = engine.apply(RemoveIntermediateVariable(
            subprogram="Q", variable="T"))
        assert application.preserved
        q = engine.package.subprogram("Q")
        assert not q.decls
        assert len(q.body) == 1

    def test_remove_rejects_unstable_value(self):
        src = """
package P is
   procedure Q (X : in Integer; Y : out Integer) is
      T : Integer;
      U : Integer;
   begin
      U := X;
      T := U * 2;
      U := U + 1;
      Y := T + U;
   end Q;
end P;
"""
        engine = engine_for(src, ["Q"])
        with pytest.raises(TransformationError, match="stable"):
            engine.apply(RemoveIntermediateVariable(subprogram="Q",
                                                    variable="T"))

    def test_introduce_intermediate(self):
        src = """
package P is
   procedure Q (X : in Integer; Y : out Integer) is
   begin
      Y := (X + 1) * (X + 1);
   end Q;
end P;
"""
        engine = engine_for(src, ["Q"])
        application = engine.apply(IntroduceIntermediateVariable(
            subprogram="Q", variable="T", type_name="Integer",
            expression="X + 1", at_index=0))
        assert application.preserved
        q = engine.package.subprogram("Q")
        assert q.decls[0].name == "T"
        assert len(q.body) == 2

    def test_rename_subprogram(self):
        engine = engine_for(UNROLLED, ["Q"])
        engine.apply(Rename(kind="subprogram", old="Q", new="Invert"))
        assert engine.package.subprogram("Invert")

    def test_rename_type_everywhere(self):
        engine = engine_for(UNROLLED, ["Q"])
        engine.apply(Rename(kind="type", old="Arr", new="Block16"))
        text = print_package(engine.package)
        assert "Arr" not in text
        assert "Block16" in text


class TestRemoveDeadSubprogram:
    """A superseded original (no remaining callers) can be deleted; a
    subprogram anything still references -- or one on the observable
    interface of a full-interface engine -- cannot."""

    SRC = """
package P is
   type Byte is mod 256;
   function Double (X : Byte) return Byte is
   begin
      return X * 2;
   end Double;
   procedure Old_Q (A : in Byte; B : out Byte) is
   begin
      B := Double (A);
   end Old_Q;
   procedure Q (A : in Byte; B : out Byte) is
   begin
      B := A xor 255;
   end Q;
end P;
"""

    def test_remove_dead_subprogram(self):
        engine = engine_for(self.SRC, ["Q"])
        application = engine.apply(RemoveDeadSubprogram(subprogram="Old_Q"))
        assert application.preserved
        names = [sp.name for sp in engine.package.subprograms]
        assert names == ["Double", "Q"]
        # Removing Old_Q orphaned Double; it is now removable too.
        engine.apply(RemoveDeadSubprogram(subprogram="Double"))
        assert [sp.name for sp in engine.package.subprograms] == ["Q"]

    def test_rejects_referenced_subprogram(self):
        engine = engine_for(self.SRC, ["Q"])
        with pytest.raises(TransformationError, match="referenced by Old_Q"):
            engine.apply(RemoveDeadSubprogram(subprogram="Double"))

    def test_rejects_missing_subprogram(self):
        engine = engine_for(self.SRC, ["Q"])
        with pytest.raises(TransformationError, match="no subprogram"):
            engine.apply(RemoveDeadSubprogram(subprogram="Nope"))

    def test_enumerates_uncalled_in_package_order(self):
        typed = analyze(parse_package(self.SRC))
        sites = [s.subprogram
                 for s in RemoveDeadSubprogram.enumerate_sites(typed)]
        assert sites == ["Old_Q", "Q"]

    def test_full_interface_engine_protects_observables(self):
        engine = RefactoringEngine(parse_package(self.SRC), ["Q"],
                                   check="full", check_observables=True)
        with pytest.raises(TransformationError, match="observable"):
            engine.apply(RemoveDeadSubprogram(subprogram="Q"))
        # Non-observable dead code is still fair game on such an engine.
        assert engine.apply(
            RemoveDeadSubprogram(subprogram="Old_Q")).preserved


class TestReverseTableLookup:
    SRC = """
package P is
   type Byte is mod 256;
   type Table is array (0 .. 255) of Byte;
   Double : constant Table := (others => 0);
   procedure Q (X : in Byte; Y : out Byte) is
   begin
      Y := Double (Integer (X));
   end Q;
end P;
"""

    def make_src(self):
        entries = ", ".join(str((2 * i) % 256) for i in range(256))
        return self.SRC.replace("(others => 0)", f"({entries})")

    def test_reverse_lookup_with_correct_function(self):
        engine = engine_for(self.make_src(), ["Q"])
        application = engine.apply(ReverseTableLookup(
            table="Double",
            function_source="""
   function GF_Double (I : in Integer) return Byte is
      V : Byte;
   begin
      V := Byte (I mod 256);
      return V + V;
   end GF_Double;
"""))
        assert application.preserved
        text = print_package(engine.package)
        assert "Double : constant" not in text
        assert "GF_Double" in text

    def test_reverse_lookup_rejects_wrong_function(self):
        engine = engine_for(self.make_src(), ["Q"])
        with pytest.raises(TransformationError, match="does not compute"):
            engine.apply(ReverseTableLookup(
                table="Double",
                function_source="""
   function Bad (I : in Integer) return Byte is
   begin
      return Byte (I mod 256);
   end Bad;
"""))


class TestUserSpecified:
    def test_replace_subprogram_checked(self):
        engine = engine_for(UNROLLED, ["Q"])
        application = engine.apply(UserSpecifiedTransformation(
            description="rewrite Q with a loop",
            replace_subprograms="""
   procedure Q (A : in Arr; B : out Arr) is
   begin
      for I in 0 .. 3 loop
         B (I) := A (I) xor 255;
      end loop;
   end Q;
"""))
        assert application.preserved

    def test_wrong_replacement_refused(self):
        engine = engine_for(UNROLLED, ["Q"])
        with pytest.raises(TransformationError, match="NOT preserved"):
            engine.apply(UserSpecifiedTransformation(
                description="defective rewrite",
                replace_subprograms="""
   procedure Q (A : in Arr; B : out Arr) is
   begin
      for I in 0 .. 3 loop
         B (I) := A (I) xor 254;
      end loop;
   end Q;
"""))
        # The engine state is unchanged after a refused application.
        assert len(engine.history) == 0

    def test_missing_removals_strict_by_default(self):
        engine = engine_for(UNROLLED, ["Q"])
        with pytest.raises(TransformationError, match="not found"):
            engine.apply(UserSpecifiedTransformation(
                description="remove a subprogram that is already gone",
                remove_subprograms=("Old_Q",)))
        with pytest.raises(TransformationError, match="not found"):
            engine.apply(UserSpecifiedTransformation(
                description="remove a declaration that is already gone",
                remove_decls=("Word",)))

    def test_missing_removals_tolerated_on_request(self):
        # A planned chain may have tidied the named subprogram away
        # already; tolerate_missing skips it instead of stranding the
        # stage, and removals of names that *are* present still happen.
        engine = engine_for(UNROLLED, ["Q"])
        application = engine.apply(UserSpecifiedTransformation(
            description="rewrite Q; removals tolerant of prior tidying",
            remove_subprograms=("Old_Q",),
            remove_decls=("Word",),
            tolerate_missing=True,
            replace_subprograms="""
   procedure Q (A : in Arr; B : out Arr) is
   begin
      for I in 0 .. 3 loop
         B (I) := A (I) xor 255;
      end loop;
   end Q;
"""))
        assert application.preserved
