"""ExecConfig API tests: the finalized ``exec=`` parameter, the hard
``TypeError`` on the removed PR-3 legacy keywords, remote-backend field
validation, the JSON wire form, and the stable top-level public surface."""

import warnings

import pytest

from repro.exec import (
    ExecConfig, ObligationScheduler, RetryPolicy, Telemetry,
    coerce_exec_config,
)
from repro.exec.config import LEGACY_EXEC_KWARGS, reject_legacy_exec_kwargs
from repro.lang import analyze, parse_package

from tests.test_exec_scheduler import SRC


class TestExecConfig:
    def test_defaults_match_historical_behaviour(self):
        config = ExecConfig()
        assert config.jobs == 1
        assert config.backend == "thread"
        assert config.cache is None
        assert config.telemetry is None
        assert config.timeout_seconds is None
        # a plain-int retry count is coerced to the equivalent policy
        assert config.retries == RetryPolicy(retries=0)
        assert config.retries.retries == 0
        assert config.on_error == "raise"
        assert config.on_backend_failure == "raise"
        assert config.remote_workers == ()
        assert config.remote_listen is None
        assert config.lease_timeout_seconds is None
        assert config.remote_shared_cache is True
        assert config.effective_serial

    def test_scheduler_derivation(self):
        telemetry = Telemetry()
        scheduler = ExecConfig(jobs=3, backend="process", cache=False,
                               telemetry=telemetry, timeout_seconds=2.0,
                               retries=1, on_error="record").scheduler()
        assert isinstance(scheduler, ObligationScheduler)
        assert scheduler.jobs == 3
        assert scheduler.backend == "process"
        assert scheduler.cache is None            # cache=False disables
        assert scheduler.telemetry is telemetry
        assert scheduler.timeout_seconds == 2.0
        assert scheduler.retries == 1
        assert scheduler.on_error == "record"

    def test_scheduler_derivation_remote_fields(self):
        scheduler = ExecConfig(
            backend="remote", jobs=4, cache=False, telemetry=Telemetry(),
            remote_workers=("farm1:9000", "farm2:9000"),
            lease_timeout_seconds=30.0,
            remote_shared_cache=False).scheduler()
        assert scheduler.backend == "remote"
        assert scheduler.remote_workers == ("farm1:9000", "farm2:9000")
        assert scheduler.remote_listen is None
        assert scheduler.lease_timeout_seconds == 30.0
        assert scheduler.remote_shared_cache is False

    def test_validation(self):
        with pytest.raises(ValueError, match="backend"):
            ExecConfig(backend="rocket")
        with pytest.raises(ValueError, match="jobs"):
            ExecConfig(jobs=0)
        with pytest.raises(ValueError, match="on_error"):
            ExecConfig(on_error="ignore")
        with pytest.raises(ValueError, match="retries"):
            ExecConfig(retries=-1)
        with pytest.raises(ValueError, match="on_backend_failure"):
            ExecConfig(on_backend_failure="panic")

    def test_non_positive_timeout_rejected(self):
        """Regression: ``timeout_seconds=0`` used to pass validation but
        silently disable the worker-side alarm (``setitimer(..., 0)``
        cancels the timer), turning the 'timeout' into 'no timeout'."""
        with pytest.raises(ValueError, match="timeout_seconds"):
            ExecConfig(timeout_seconds=0)
        with pytest.raises(ValueError, match="timeout_seconds"):
            ExecConfig(timeout_seconds=-1.5)
        with pytest.raises(ValueError, match="timeout_seconds"):
            ObligationScheduler(timeout_seconds=0)
        assert ExecConfig(timeout_seconds=0.5).timeout_seconds == 0.5

    def test_retry_policy_accepted_and_preserved(self):
        policy = RetryPolicy(retries=3, base_delay=0.01, max_delay=0.2)
        config = ExecConfig(retries=policy)
        assert config.retries is policy
        scheduler = ExecConfig(jobs=2, retries=policy, cache=False,
                               telemetry=Telemetry()).scheduler()
        assert scheduler.retry_policy is policy
        assert scheduler.retries == 3            # compat int view

    def test_hashable_and_frozen(self):
        config = ExecConfig(jobs=2)
        assert hash(config) == hash(ExecConfig(jobs=2))
        with pytest.raises(Exception):
            config.jobs = 4

    def test_with_telemetry(self):
        telemetry = Telemetry()
        config = ExecConfig(jobs=2).with_telemetry(telemetry)
        assert config.telemetry is telemetry
        assert config.jobs == 2


class TestRemoteFields:
    def test_remote_backend_requires_worker_source(self):
        with pytest.raises(ValueError, match="worker source"):
            ExecConfig(backend="remote")
        # either source alone satisfies the check
        ExecConfig(backend="remote", remote_workers=("h:1",))
        ExecConfig(backend="remote", remote_listen="127.0.0.1:0")

    def test_address_validation(self):
        with pytest.raises(ValueError, match="host:port"):
            ExecConfig(remote_workers=("nocolon",))
        with pytest.raises(ValueError, match="not an integer"):
            ExecConfig(remote_workers=("host:http",))
        with pytest.raises(ValueError, match="out of range"):
            ExecConfig(remote_workers=("host:70000",))
        with pytest.raises(ValueError, match="host:port"):
            ExecConfig(remote_listen=9000)
        # hostless ":0" binds all interfaces on an ephemeral port
        assert ExecConfig(remote_listen=":0").remote_listen == ":0"

    def test_worker_list_coerced_to_tuple(self):
        config = ExecConfig(remote_workers=["a:1", "b:2"])
        assert config.remote_workers == ("a:1", "b:2")
        assert hash(config)                       # stays hashable
        with pytest.raises(ValueError, match="remote_workers"):
            ExecConfig(remote_workers="host:1")   # a bare string is a bug

    def test_lease_timeout_and_shared_cache_validation(self):
        with pytest.raises(ValueError, match="lease_timeout_seconds"):
            ExecConfig(lease_timeout_seconds=0)
        with pytest.raises(ValueError, match="remote_shared_cache"):
            ExecConfig(remote_shared_cache="yes")

    def test_remote_is_never_effectively_serial(self):
        config = ExecConfig(backend="remote", jobs=1,
                            remote_workers=("h:1",))
        assert not config.effective_serial


class TestJsonWireForm:
    def test_round_trip_including_remote_fields(self):
        config = ExecConfig(
            jobs=6, backend="remote", timeout_seconds=4.5,
            retries=RetryPolicy(retries=2, base_delay=0.01),
            on_error="record", on_backend_failure="degrade",
            cache_memory_entries=128,
            remote_workers=("farm1:9000", "farm2:9000"),
            lease_timeout_seconds=20.0, remote_shared_cache=False)
        data = config.to_json()
        assert data["remote_workers"] == ["farm1:9000", "farm2:9000"]
        assert ExecConfig.from_json(data) == config

    def test_round_trip_defaults(self):
        config = ExecConfig()
        assert ExecConfig.from_json(config.to_json()) == config

    def test_cache_and_telemetry_never_travel(self):
        data = ExecConfig(cache=False, telemetry=Telemetry()).to_json()
        assert "cache" not in data
        assert "telemetry" not in data
        with pytest.raises(ValueError, match="unknown exec config keys"):
            ExecConfig.from_json({"jobs": 2, "cache": "/tmp/evil"})
        with pytest.raises(ValueError, match="unknown exec config keys"):
            ExecConfig.from_json({"telemetry": {}})

    def test_from_json_validates_like_the_constructor(self):
        with pytest.raises(ValueError, match="JSON object"):
            ExecConfig.from_json([1, 2])
        with pytest.raises(ValueError, match="bad retries policy"):
            ExecConfig.from_json({"retries": {"bogus": 1}})
        with pytest.raises(ValueError, match="remote_workers"):
            ExecConfig.from_json({"remote_workers": "farm1:9000"})
        with pytest.raises(ValueError, match="out of range"):
            ExecConfig.from_json({"remote_workers": ["farm1:99999"]})
        with pytest.raises(ValueError, match="worker source"):
            ExecConfig.from_json({"backend": "remote"})


class TestCoercion:
    def test_no_arguments_is_default(self):
        assert coerce_exec_config(None, owner="t") == ExecConfig()

    def test_explicit_exec_passes_through(self):
        config = ExecConfig(jobs=5, backend="process")
        assert coerce_exec_config(config, owner="t") is config

    def test_non_config_exec_rejected(self):
        with pytest.raises(TypeError, match="ExecConfig"):
            coerce_exec_config(4, owner="t")


class TestLegacyKwargsRemoved:
    """The PR-3 deprecation shims are gone: every entry point now raises a
    hard ``TypeError`` with the ``exec=ExecConfig(...)`` migration hint."""

    def test_reject_helper_spells_out_the_migration(self):
        with pytest.raises(TypeError) as exc:
            reject_legacy_exec_kwargs("Owner", {"jobs": 4, "cache": False})
        message = str(exc.value)
        assert message.startswith("Owner: ")
        assert "removed" in message
        assert "exec=ExecConfig(cache=False, jobs=4)" in message

    def test_obligation_timeout_maps_to_timeout_seconds(self):
        with pytest.raises(TypeError,
                           match=r"exec=ExecConfig\(timeout_seconds=30\.0\)"):
            reject_legacy_exec_kwargs("P", {"obligation_timeout": 30.0})

    def test_unknown_keyword_gets_the_stock_message(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            reject_legacy_exec_kwargs("P", {"jorbs": 4})

    def test_empty_kwargs_is_a_no_op(self):
        reject_legacy_exec_kwargs("P", {})

    @pytest.mark.parametrize("name", LEGACY_EXEC_KWARGS)
    def test_every_legacy_name_is_caught(self, name):
        with pytest.raises(TypeError, match="legacy"):
            reject_legacy_exec_kwargs("P", {name: 1})

    def test_implementation_proof_rejects_legacy(self):
        from repro.prover import ImplementationProof

        typed = analyze(parse_package(SRC))
        with pytest.raises(TypeError, match="ImplementationProof.*legacy"):
            ImplementationProof(typed, jobs=2, cache=False)

    def test_prove_implication_rejects_legacy(self):
        from repro.implication import prove_implication

        with pytest.raises(TypeError, match="prove_implication.*legacy"):
            prove_implication(None, None, jobs=2)

    def test_refactoring_engine_rejects_legacy(self):
        from repro.refactor import RefactoringEngine

        with pytest.raises(TypeError, match="RefactoringEngine.*legacy"):
            RefactoringEngine(None, observables=[], jobs=2)

    def test_echo_verifier_rejects_legacy(self):
        from repro.core import EchoVerifier

        with pytest.raises(TypeError, match="EchoVerifier.*legacy"):
            EchoVerifier(None, None, observables=[], telemetry=Telemetry())

    def test_verify_aes_rejects_legacy(self):
        from repro.core import verify_aes

        with pytest.raises(TypeError, match="verify_aes.*legacy"):
            verify_aes(jobs=8)

    def test_harness_tables_reject_legacy(self):
        from repro.harness.tables import (
            implementation_proof_stats, implication_proof_stats,
        )

        with pytest.raises(TypeError, match="implementation_proof_stats"):
            implementation_proof_stats(jobs=2)
        with pytest.raises(TypeError, match="implication_proof_stats"):
            implication_proof_stats(obligation_timeout=5.0)

    def test_signatures_expose_exec_not_the_legacy_names(self):
        import inspect

        from repro.core import verify_aes

        parameters = inspect.signature(verify_aes).parameters
        assert "exec" in parameters
        for name in ("jobs", "cache", "telemetry", "obligation_timeout"):
            assert name not in parameters

    def test_no_warning_on_modern_path(self):
        from repro.prover import ImplementationProof

        typed = analyze(parse_package(SRC))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ImplementationProof(
                typed, exec=ExecConfig(jobs=2, cache=False)).run()


class TestPublicSurface:
    def test_top_level_exports(self):
        import repro

        for name in ("EchoVerifier", "verify_aes", "ExecConfig",
                     "ResultCache", "Telemetry", "EchoResult"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_quickstart_imports(self):
        from repro import (     # noqa: F401
            EchoResult, EchoVerifier, ExecConfig, ResultCache, Telemetry,
            verify_aes,
        )
