"""ExecConfig API tests: the unified ``exec=`` parameter, the deprecated
``jobs=/cache=/telemetry=`` keyword shims (warn + behave identically),
validation, and the stable top-level public surface."""

import warnings

import pytest

from repro.exec import (
    ExecConfig, ObligationScheduler, ResultCache, RetryPolicy, Telemetry,
    coerce_exec_config,
)
from repro.exec.config import UNSET
from repro.lang import analyze, parse_package
from repro.prover import ImplementationProof
from repro.spec import parse_theory

from tests.test_core_harness import PROGRAM, SPEC
from tests.test_exec_scheduler import SRC, outcome_key


class TestExecConfig:
    def test_defaults_match_historical_behaviour(self):
        config = ExecConfig()
        assert config.jobs == 1
        assert config.backend == "thread"
        assert config.cache is None
        assert config.telemetry is None
        assert config.timeout_seconds is None
        # a plain-int retry count is coerced to the equivalent policy
        assert config.retries == RetryPolicy(retries=0)
        assert config.retries.retries == 0
        assert config.on_error == "raise"
        assert config.on_backend_failure == "raise"
        assert config.effective_serial

    def test_scheduler_derivation(self):
        telemetry = Telemetry()
        scheduler = ExecConfig(jobs=3, backend="process", cache=False,
                               telemetry=telemetry, timeout_seconds=2.0,
                               retries=1, on_error="record").scheduler()
        assert isinstance(scheduler, ObligationScheduler)
        assert scheduler.jobs == 3
        assert scheduler.backend == "process"
        assert scheduler.cache is None            # cache=False disables
        assert scheduler.telemetry is telemetry
        assert scheduler.timeout_seconds == 2.0
        assert scheduler.retries == 1
        assert scheduler.on_error == "record"

    def test_validation(self):
        with pytest.raises(ValueError, match="backend"):
            ExecConfig(backend="rocket")
        with pytest.raises(ValueError, match="jobs"):
            ExecConfig(jobs=0)
        with pytest.raises(ValueError, match="on_error"):
            ExecConfig(on_error="ignore")
        with pytest.raises(ValueError, match="retries"):
            ExecConfig(retries=-1)
        with pytest.raises(ValueError, match="on_backend_failure"):
            ExecConfig(on_backend_failure="panic")

    def test_non_positive_timeout_rejected(self):
        """Regression: ``timeout_seconds=0`` used to pass validation but
        silently disable the worker-side alarm (``setitimer(..., 0)``
        cancels the timer), turning the 'timeout' into 'no timeout'."""
        with pytest.raises(ValueError, match="timeout_seconds"):
            ExecConfig(timeout_seconds=0)
        with pytest.raises(ValueError, match="timeout_seconds"):
            ExecConfig(timeout_seconds=-1.5)
        with pytest.raises(ValueError, match="timeout_seconds"):
            ObligationScheduler(timeout_seconds=0)
        assert ExecConfig(timeout_seconds=0.5).timeout_seconds == 0.5

    def test_retry_policy_accepted_and_preserved(self):
        policy = RetryPolicy(retries=3, base_delay=0.01, max_delay=0.2)
        config = ExecConfig(retries=policy)
        assert config.retries is policy
        scheduler = ExecConfig(jobs=2, retries=policy, cache=False,
                               telemetry=Telemetry()).scheduler()
        assert scheduler.retry_policy is policy
        assert scheduler.retries == 3            # compat int view

    def test_hashable_and_frozen(self):
        config = ExecConfig(jobs=2)
        assert hash(config) == hash(ExecConfig(jobs=2))
        with pytest.raises(Exception):
            config.jobs = 4

    def test_with_telemetry(self):
        telemetry = Telemetry()
        config = ExecConfig(jobs=2).with_telemetry(telemetry)
        assert config.telemetry is telemetry
        assert config.jobs == 2


class TestCoercion:
    def test_no_arguments_is_default(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = coerce_exec_config(None, owner="t")
        assert config == ExecConfig()

    def test_explicit_exec_passes_through(self):
        config = ExecConfig(jobs=5, backend="process")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert coerce_exec_config(config, owner="t") is config

    def test_legacy_keywords_warn_and_map(self):
        cache = ResultCache()
        telemetry = Telemetry()
        with pytest.warns(DeprecationWarning, match="t: .*deprecated"):
            config = coerce_exec_config(None, owner="t", jobs=4,
                                        cache=cache, telemetry=telemetry,
                                        timeout_seconds=1.5)
        assert config == ExecConfig(jobs=4, cache=cache,
                                    telemetry=telemetry,
                                    timeout_seconds=1.5)

    def test_mixing_exec_and_legacy_is_an_error(self):
        with pytest.raises(TypeError, match="not both"):
            coerce_exec_config(ExecConfig(), owner="t", jobs=4)

    def test_non_config_exec_rejected(self):
        with pytest.raises(TypeError, match="ExecConfig"):
            coerce_exec_config(4, owner="t")


class TestDeprecatedShims:
    """Every entry point accepts the legacy triplet, warns, and produces
    exactly the result its ``exec=`` equivalent produces."""

    def test_implementation_proof_shim_identical(self):
        typed = analyze(parse_package(SRC))
        with pytest.warns(DeprecationWarning, match="ImplementationProof"):
            legacy = ImplementationProof(typed, jobs=2, cache=False).run()
        modern = ImplementationProof(
            typed, exec=ExecConfig(jobs=2, cache=False)).run()
        assert [outcome_key(o) for o in legacy.outcomes] == \
               [outcome_key(o) for o in modern.outcomes]
        assert legacy.auto_percent == modern.auto_percent

    def test_obligation_timeout_shim(self):
        typed = analyze(parse_package(SRC))
        with pytest.warns(DeprecationWarning):
            proof = ImplementationProof(typed, cache=False,
                                        obligation_timeout=30.0)
        assert proof.exec.timeout_seconds == 30.0

    def test_prove_implication_shim_identical(self):
        from repro.extract import extract_specification
        from repro.implication import prove_implication

        original = parse_theory(SPEC)
        typed = analyze(parse_package(PROGRAM))
        extracted = extract_specification(typed).theory

        def key(res):
            return ([(o.lemma.name, o.proved, o.evidence, o.detail)
                     for o in res.outcomes],
                    res.tcc_total, res.tcc_proved, res.tcc_unproved)

        with pytest.warns(DeprecationWarning, match="prove_implication"):
            legacy = prove_implication(original, extracted,
                                       jobs=2, cache=False)
        modern = prove_implication(original, extracted,
                                   exec=ExecConfig(jobs=2, cache=False))
        assert key(legacy) == key(modern)

    def test_refactoring_engine_shim(self):
        from repro.refactor import RefactoringEngine

        with pytest.warns(DeprecationWarning, match="RefactoringEngine"):
            engine = RefactoringEngine(parse_package(PROGRAM),
                                       observables=["Bump"],
                                       check="differential", jobs=2,
                                       cache=False)
        assert engine.exec.jobs == 2
        assert engine.exec.cache is False

    def test_echo_verifier_shim_identical_results(self):
        """The headline migration contract: the legacy triplet and the
        ExecConfig path produce identical EchoResults end to end."""
        from repro.core import EchoVerifier
        from repro.refactor import RerollLoop

        def run(**kw):
            verifier = EchoVerifier(parse_package(PROGRAM),
                                    parse_theory(SPEC),
                                    observables=["Bump"], **kw)
            verifier.refactor([RerollLoop(subprogram="Bump", start=0,
                                          group_size=1, count=4, var="I")])
            return verifier.verify()

        with pytest.warns(DeprecationWarning, match="EchoVerifier"):
            legacy = run(jobs=2, cache=False)
        modern = run(exec=ExecConfig(jobs=2, cache=False))

        assert legacy.verified == modern.verified
        assert legacy.match.percent == modern.match.percent
        assert [(o.vc.name, o.stage) for o in
                legacy.implementation.outcomes] == \
               [(o.vc.name, o.stage) for o in
                modern.implementation.outcomes]
        assert legacy.implication.holds == modern.implication.holds
        assert legacy.summary() == modern.summary()

    def test_verify_aes_signature_has_exec(self):
        """verify_aes exposes exec= plus the deprecated shims (running it
        is minutes; the full run is exercised by the benchmarks)."""
        import inspect

        from repro.core import verify_aes

        parameters = inspect.signature(verify_aes).parameters
        assert "exec" in parameters
        for name in ("jobs", "cache", "telemetry"):
            assert parameters[name].default is UNSET

    def test_no_warning_on_modern_path(self):
        typed = analyze(parse_package(SRC))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ImplementationProof(
                typed, exec=ExecConfig(jobs=2, cache=False)).run()


class TestPublicSurface:
    def test_top_level_exports(self):
        import repro

        for name in ("EchoVerifier", "verify_aes", "ExecConfig",
                     "ResultCache", "Telemetry", "EchoResult"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_quickstart_imports(self):
        from repro import (     # noqa: F401
            EchoResult, EchoVerifier, ExecConfig, ResultCache, Telemetry,
            verify_aes,
        )
