"""Term wire-format tests: structural round-trips that restore interning
identity, pickle integration, fingerprint stability across process
boundaries, and malformed-wire rejection."""

import pickle
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import (
    add, canonical_text, decode_term, decode_terms, encode_term,
    encode_terms, eq, fingerprint, forall, intc, ite, mk, mul, var, xor,
    WireFormatError,
)
from repro.logic.wire import WIRE_MAGIC


# -- strategies -------------------------------------------------------------

_names = st.sampled_from(["x", "y", "z", "acc", "B", "K"])


def _terms(depth=3):
    base = st.one_of(
        st.integers(-64, 64).map(intc),
        _names.map(var),
    )
    if depth == 0:
        return base
    sub = _terms(depth - 1)
    return st.one_of(
        base,
        st.tuples(sub, sub).map(lambda p: add(*p)),
        st.tuples(sub, sub).map(lambda p: mul(*p)),
        st.tuples(sub, sub).map(lambda p: eq(*p)),
        st.tuples(sub, sub).map(lambda p: xor(p[0], p[1])),
        st.tuples(sub, sub, sub).map(lambda p: ite(eq(p[0], p[1]), p[1],
                                                   p[2])),
        st.tuples(_names, sub).map(
            lambda p: forall((p[0],), eq(var(p[0]), p[1]))),
    )


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(_terms())
    def test_decode_encode_is_identity(self, term):
        """In-process: decoding re-interns onto the *same* object."""
        assert decode_term(encode_term(term)) is term

    @settings(max_examples=100, deadline=None)
    @given(_terms())
    def test_pickle_restores_identity(self, term):
        assert pickle.loads(pickle.dumps(term)) is term

    @settings(max_examples=100, deadline=None)
    @given(_terms())
    def test_fingerprint_survives(self, term):
        wire = encode_term(term)
        assert fingerprint(decode_term(wire)) == fingerprint(term)
        assert canonical_text(decode_term(wire)) == canonical_text(term)

    @settings(max_examples=50, deadline=None)
    @given(_terms(), _terms())
    def test_multi_root_sharing(self, a, b):
        """Two roots encode into one shared node table and decode to the
        same objects."""
        ra, rb = decode_terms(encode_terms((a, b)))
        assert ra is a and rb is b

    def test_shared_subterm_encoded_once(self):
        shared = add(var("x"), intc(1))
        term = mul(shared, shared)
        _, nodes, _ = encode_term(term)
        # x, 1, add, mul: the shared DAG stays a DAG on the wire.
        assert len(nodes) == 4

    def test_pickled_list_preserves_aliasing(self):
        t = add(var("x"), intc(7))
        out = pickle.loads(pickle.dumps([t, t, mul(t, t)]))
        assert out[0] is out[1] is t
        assert out[2].args[0] is t

    def test_quantifier_value_tuple(self):
        body = eq(add(var("k"), intc(1)), var("n"))
        q = forall(("k",), body)
        assert decode_term(encode_term(q)) is q


class TestCrossProcess:
    def test_identity_and_fingerprint_in_fresh_interpreter(self):
        """A fresh interpreter (different hash seed, different interning
        history) unpickles the wire into *its* table: aliasing holds and
        fingerprints agree with the sender's."""
        t = ite(eq(var("x"), intc(0)), add(var("y"), intc(1)),
                mul(var("y"), intc(2)))
        blob = pickle.dumps([t, t])
        program = (
            "import pickle, sys\n"
            "from repro.logic import fingerprint, term_table\n"
            "a, b = pickle.load(sys.stdin.buffer)\n"
            "assert a is b, 'aliasing lost across the boundary'\n"
            "assert a is not None\n"
            "print(fingerprint(a))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", program],
            input=blob, capture_output=True, check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "999"},
        ).stdout.decode().strip()
        assert out == fingerprint(t)


class TestMalformedWire:
    def test_bad_magic(self):
        with pytest.raises(WireFormatError):
            decode_terms(("not-a-wire", [], [0]))

    def test_forward_reference_rejected(self):
        wire = (WIRE_MAGIC, [("add", (1,), None), ("int", (), 1)], [0])
        with pytest.raises(WireFormatError):
            decode_terms(wire)

    def test_root_out_of_range(self):
        wire = (WIRE_MAGIC, [("int", (), 1)], [3])
        with pytest.raises(WireFormatError):
            decode_terms(wire)

    def test_not_a_tuple(self):
        with pytest.raises(WireFormatError):
            decode_terms("garbage")
