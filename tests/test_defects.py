"""Seeded-defect experiment tests (a representative sample; the full
tables 2/3 run lives in the benchmark harness)."""

import random

import pytest

from repro.defects import curated_defects, run_defect, stage_table
from repro.defects.seeder import random_mutation
from repro.defects.types import DEFECT_KINDS


@pytest.fixture(scope="module")
def defects():
    return {d.name: d for d in curated_defects()}


class TestCuratedSet:
    def test_fifteen_defects_three_per_kind(self, defects):
        assert len(defects) == 15
        by_kind = {}
        for d in defects.values():
            by_kind[d.kind] = by_kind.get(d.kind, 0) + 1
        assert by_kind == {kind: 3 for kind in DEFECT_KINDS}

    def test_exactly_one_benign(self, defects):
        assert sum(1 for d in defects.values() if d.benign) == 1

    def test_patch_sites_exist(self, defects):
        from repro.aes.optimized import optimized_source
        from repro.aes.refactored import refactored_source
        for d in defects.values():
            for old, _ in d.optimized_patch:
                assert old in optimized_source(), (d.name, old[:50])
            for old, _ in d.refactored_patch:
                assert old in refactored_source(), (d.name, old[:50])


class TestDetectionStages:
    def test_refactoring_catches_broken_round(self, defects):
        outcome = run_defect(defects["D02-index-round-key"], setup=1)
        assert outcome.stage == "refactoring"

    def test_refactoring_catches_corrupt_table(self, defects):
        outcome = run_defect(defects["D01-numeric-table-entry"], setup=2)
        assert outcome.stage == "refactoring"
        assert "does not compute" in outcome.detail

    def test_exception_freedom_catches_oob_in_both_setups(self, defects):
        for setup in (1, 2):
            outcome = run_defect(defects["D06-index-shift-rows"], setup)
            assert outcome.stage == "implementation", outcome.detail

    def test_functional_defect_setup1_implication(self, defects):
        outcome = run_defect(defects["D11-reference-sbox"], setup=1)
        assert outcome.stage == "implication", outcome.detail

    def test_functional_defect_setup2_implementation(self, defects):
        outcome = run_defect(defects["D11-reference-sbox"], setup=2)
        assert outcome.stage == "implementation", outcome.detail

    def test_benign_defect_never_caught(self, defects):
        for setup in (1, 2):
            outcome = run_defect(
                defects["D15-statement-key-array-length"], setup)
            assert outcome.stage == "not caught"
            assert outcome.defect.benign


class TestStageTable:
    def test_rows_shape(self, defects):
        from repro.defects import DefectOutcome
        sample = [
            DefectOutcome(defects["D01-numeric-table-entry"], 1,
                          "refactoring"),
            DefectOutcome(defects["D06-index-shift-rows"], 1,
                          "implementation"),
            DefectOutcome(defects["D11-reference-sbox"], 1, "implication"),
            DefectOutcome(defects["D15-statement-key-array-length"], 1,
                          "not caught"),
        ]
        rows = stage_table(sample)
        assert rows == {"refactoring": 1, "implementation": 1,
                        "implication": 1, "left": 1}


class TestRandomSeeder:
    def test_random_mutations_detected_or_benign(self):
        from repro.aes.refactored import refactored_package
        from repro.aes.fips197 import fips197_theory
        from repro.extract import extract_specification
        from repro.implication import prove_implication
        from repro.equiv import differential_check
        from repro.lang import analyze

        typed = refactored_package()
        rng = random.Random(20090701)
        detected = 0
        total = 3  # implication runs are the slow part; keep the sample small
        for _ in range(total):
            mutation = random_mutation(typed, rng)
            assert mutation is not None
            mutated = analyze(mutation.package)
            extraction = extract_specification(mutated)
            if mutation.subprogram in extraction.skipped:
                detected += 1  # extraction itself failed: visibly defective
                continue
            result = prove_implication(fips197_theory(), extraction.theory)
            if not result.holds:
                detected += 1
            else:
                # The implication proof accepted the mutant: it must be
                # behaviourally equivalent (otherwise the proof is unsound).
                check = differential_check(
                    typed, mutation.subprogram, mutated, mutation.subprogram,
                    trials=16)
                assert check.equivalent, mutation.description
        assert detected >= 1
