"""Type checker and interpreter tests for MiniAda."""

import pytest

from repro.lang import (
    Interpreter, RuntimeFault, StepLimitExceeded, TypeError_, analyze,
    parse_package,
)
from repro.lang import ast


def analyzed(src):
    return analyze(parse_package(src))


BASE = """
package P is

   type Byte is mod 256;
   type Word is mod 4294967296;
   subtype Small is Integer range 0 .. 9;
   type ByteArray is array (0 .. 3) of Byte;
   type Matrix is array (0 .. 1) of ByteArray;

   function Double (X : in Byte) return Byte is
   begin
      return X + X;
   end Double;

   function Gcd (A : in Integer; B : in Integer) return Integer is
      X : Integer;
      Y : Integer;
      T : Integer;
   begin
      X := A;
      Y := B;
      while Y /= 0 loop
         T := Y;
         Y := X mod Y;
         X := T;
      end loop;
      return X;
   end Gcd;

   procedure Fill (A : out ByteArray; V : in Byte) is
   begin
      for I in 0 .. 3 loop
         A (I) := V;
      end loop;
   end Fill;

   procedure SumAll (A : in ByteArray; Total : out Word) is
   begin
      Total := 0;
      for I in 0 .. 3 loop
         Total := Total + Word (A (I)) + Pad (0);
      end loop;
   end SumAll;

   function Pad (B : in Integer) return Word is
   begin
      return 0 * Word (B);
   end Pad;

end P;
"""


class TestTypecheck:
    def test_resolution_arrayref_vs_call(self):
        typed = analyzed(BASE)
        sp = typed.package.subprogram("SumAll")
        refs = [n for n in ast.walk(sp) if isinstance(n, ast.ArrayRef)]
        calls = [n for n in ast.walk(sp) if isinstance(n, ast.FuncCall)]
        assert refs and calls
        assert not [n for n in ast.walk(sp) if isinstance(n, ast.App)]

    def test_unknown_name_rejected(self):
        with pytest.raises(TypeError_, match="unknown"):
            analyzed("""
package P is
   procedure Q (X : out Integer) is
   begin
      X := Nope;
   end Q;
end P;
""")

    def test_modular_types_distinct(self):
        with pytest.raises(TypeError_):
            analyzed("""
package P is
   type Byte is mod 256;
   type Word is mod 4294967296;
   procedure Q (A : in Byte; B : in Word; C : out Word) is
   begin
      C := A + B;
   end Q;
end P;
""")

    def test_assignment_to_constant_rejected(self):
        with pytest.raises(TypeError_, match="constant"):
            analyzed("""
package P is
   K : constant Integer := 3;
   procedure Q is
   begin
      K := 4;
   end Q;
end P;
""")

    def test_condition_must_be_boolean(self):
        with pytest.raises(TypeError_):
            analyzed("""
package P is
   procedure Q (X : in Integer) is
   begin
      if X then
         null;
      end if;
   end Q;
end P;
""")

    def test_arity_mismatch(self):
        with pytest.raises(TypeError_, match="arguments"):
            analyzed("""
package P is
   function F (X : in Integer) return Integer is
   begin
      return X;
   end F;
   procedure Q (Y : out Integer) is
   begin
      Y := F (1, 2);
   end Q;
end P;
""")

    def test_out_param_needs_variable(self):
        with pytest.raises(TypeError_, match="out"):
            analyzed("""
package P is
   procedure Inner (X : out Integer) is
   begin
      X := 1;
   end Inner;
   procedure Q is
   begin
      Inner (42);
   end Q;
end P;
""")

    def test_shift_builtin_types(self):
        typed = analyzed("""
package P is
   type Word is mod 4294967296;
   function F (X : in Word) return Word is
   begin
      return Shift_Left (X, 8) or Shift_Right (X, 24);
   end F;
end P;
""")
        assert typed.package.subprogram("F").is_function

    def test_constant_table_evaluated(self):
        typed = analyzed(BASE + "")
        typed2 = analyzed("""
package P is
   type T is array (0 .. 3) of Integer;
   A : constant T := (1, 2, 3, 4);
   B : constant T := (others => 7);
end P;
""")
        assert typed2.constants["A"][1] == (1, 2, 3, 4)
        assert typed2.constants["B"][1] == (7, 7, 7, 7)


class TestInterpreter:
    def setup_method(self):
        self.typed = analyzed(BASE)
        self.interp = Interpreter(self.typed)

    def test_modular_wraparound(self):
        assert self.interp.call_function("Double", [200]) == 144  # 400 mod 256

    def test_gcd(self):
        assert self.interp.call_function("Gcd", [48, 36]) == 12
        assert self.interp.call_function("Gcd", [7, 13]) == 1

    def test_procedure_out_array(self):
        out = self.interp.call_procedure("Fill", [None, 9])
        assert out["A"] == [9, 9, 9, 9]

    def test_in_and_out_params(self):
        out = self.interp.call_procedure("SumAll", [[1, 2, 3, 4], None])
        assert out["Total"] == 10

    def test_uninitialized_read_faults(self):
        typed = analyzed("""
package P is
   procedure Q (Y : out Integer) is
      X : Integer;
   begin
      Y := X;
   end Q;
end P;
""")
        with pytest.raises(RuntimeFault, match="uninitialized"):
            Interpreter(typed).call_procedure("Q", [None])

    def test_index_out_of_bounds_faults(self):
        typed = analyzed("""
package P is
   type A4 is array (0 .. 3) of Integer;
   procedure Q (A : in A4; I : in Integer; Y : out Integer) is
   begin
      Y := A (I);
   end Q;
end P;
""")
        interp = Interpreter(typed)
        assert interp.call_procedure("Q", [[5, 6, 7, 8], 2, None])["Y"] == 7
        with pytest.raises(RuntimeFault, match="out of range"):
            interp.call_procedure("Q", [[5, 6, 7, 8], 4, None])

    def test_division_by_zero_faults(self):
        typed = analyzed("""
package P is
   procedure Q (A : in Integer; B : in Integer; Y : out Integer) is
   begin
      Y := A / B;
   end Q;
end P;
""")
        with pytest.raises(RuntimeFault, match="division"):
            Interpreter(typed).call_procedure("Q", [1, 0, None])

    def test_range_constraint_faults(self):
        typed = analyzed("""
package P is
   subtype Small is Integer range 0 .. 9;
   procedure Q (X : in Integer; Y : out Small) is
   begin
      Y := X;
   end Q;
end P;
""")
        interp = Interpreter(typed)
        assert interp.call_procedure("Q", [5, None])["Y"] == 5
        with pytest.raises(RuntimeFault, match="outside"):
            interp.call_procedure("Q", [10, None])

    def test_assert_checked(self):
        typed = analyzed("""
package P is
   procedure Q (X : in Integer; Y : out Integer) is
   begin
      --# assert X > 0;
      Y := X;
   end Q;
end P;
""")
        interp = Interpreter(typed)
        assert interp.call_procedure("Q", [1, None])["Y"] == 1
        with pytest.raises(RuntimeFault, match="assertion"):
            interp.call_procedure("Q", [0, None])

    def test_step_limit(self):
        typed = analyzed("""
package P is
   procedure Q (Y : out Integer) is
   begin
      Y := 0;
      while Y >= 0 loop
         Y := Y + 1;
      end loop;
   end Q;
end P;
""")
        with pytest.raises(StepLimitExceeded):
            Interpreter(typed, step_limit=10_000).call_procedure("Q", [None])

    def test_reverse_loop_order(self):
        typed = analyzed("""
package P is
   type A4 is array (0 .. 3) of Integer;
   procedure Q (A : out A4) is
      N : Integer;
   begin
      N := 0;
      for I in reverse 0 .. 3 loop
         A (I) := N;
         N := N + 1;
      end loop;
   end Q;
end P;
""")
        out = Interpreter(typed).call_procedure("Q", [None])
        assert out["A"] == [3, 2, 1, 0]

    def test_nested_arrays(self):
        typed = analyzed("""
package P is
   type Row is array (0 .. 1) of Integer;
   type Mat is array (0 .. 1) of Row;
   procedure Q (M : out Mat) is
   begin
      for I in 0 .. 1 loop
         for J in 0 .. 1 loop
            M (I) (J) := I * 10 + J;
         end loop;
      end loop;
   end Q;
end P;
""")
        out = Interpreter(typed).call_procedure("Q", [None])
        assert out["M"] == [[0, 1], [10, 11]]

    def test_constant_table_lookup(self):
        typed = analyzed("""
package P is
   type T is array (0 .. 3) of Integer;
   K : constant T := (10, 20, 30, 40);
   function F (I : in Integer) return Integer is
   begin
      return K (I);
   end F;
end P;
""")
        assert Interpreter(typed).call_function("F", [2]) == 30

    def test_shift_semantics(self):
        typed = analyzed("""
package P is
   type Word is mod 4294967296;
   function F (X : in Word) return Word is
   begin
      return Shift_Left (X, 24) or (Shift_Right (X, 8) and 255);
   end F;
end P;
""")
        interp = Interpreter(typed)
        assert interp.call_function("F", [0x12345678]) == \
            ((0x12345678 << 24) % 2**32) | ((0x12345678 >> 8) & 0xFF)

    def test_value_semantics_on_call(self):
        # Arrays are passed by value: callee writes must not alias caller 'in'.
        typed = analyzed("""
package P is
   type A2 is array (0 .. 1) of Integer;
   procedure Inner (X : in A2; Y : out A2) is
   begin
      Y (0) := X (0) + 1;
      Y (1) := X (1) + 1;
   end Inner;
   procedure Q (A : in A2; B : out A2) is
   begin
      Inner (A, B);
   end Q;
end P;
""")
        src = [5, 6]
        out = Interpreter(typed).call_procedure("Q", [src, None])
        assert out["B"] == [6, 7]
        assert src == [5, 6]
