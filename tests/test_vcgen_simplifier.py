"""Simplifier and examiner detail tests."""

import pytest

from repro.lang import analyze, parse_package
from repro.vcgen import Examiner, ExaminerLimits, Obligation, Simplifier
from repro.vcgen.simplifier import TypeBoundHook, _base_var_name
from repro.logic import (
    band, conj, eq, implies, intc, le, lt, select, var,
)


def analyzed(src):
    return analyze(parse_package(src))


PKG = analyzed("""
package P is
   type Byte is mod 256;
   type Arr is array (0 .. 15) of Byte;
   function Get (A : in Arr; I : in Integer) return Byte
   --# pre I >= 0 and I <= 15;
   is
   begin
      return A (I);
   end Get;
end P;
""")


class TestTypeBoundHook:
    def setup_method(self):
        self.hook = TypeBoundHook(PKG, "Get")

    def test_var_bounds(self):
        assert self.hook(var("I")) is None  # Integer: unbounded
        # Fresh and old decorations resolve to the declared variable.
        assert _base_var_name("A%3") == "A"
        assert _base_var_name("X@old") == "X"
        assert _base_var_name("K?") == "K"

    def test_select_elem_bounds(self):
        assert self.hook(select(var("A"), var("I"))) == (0, 255)

    def test_function_result_bounds(self):
        from repro.logic import apply
        assert self.hook(apply("Get", var("A"), intc(0))) == (0, 255)


class TestSimplifier:
    def test_hypothesis_pruning(self):
        simplifier = Simplifier(PKG, "Get")
        # Hypotheses about unrelated variables are pruned from the residue.
        vc = implies(conj(le(intc(0), var("I")),
                          le(var("ZZZ"), intc(9)),
                          le(var("I"), intc(20))),
                     le(var("I"), intc(99)))
        result = simplifier.simplify(Obligation(kind="t", term=vc))
        assert result.discharged or "ZZZ" not in \
            result.simplified.free_vars()

    def test_contextual_equality_substitution(self):
        simplifier = Simplifier(PKG, "Get")
        vc = implies(conj(eq(var("x"), intc(7))),
                     lt(var("x"), intc(8)))
        result = simplifier.simplify(Obligation(kind="t", term=vc))
        assert result.discharged

    def test_false_hypothesis_discharges(self):
        simplifier = Simplifier(PKG, "Get")
        vc = implies(conj(lt(intc(5), intc(3))), le(var("q"), intc(0)))
        result = simplifier.simplify(Obligation(kind="t", term=vc))
        assert result.discharged


class TestExaminerAccounting:
    def test_precondition_makes_index_safe(self):
        report = Examiner(PKG).examine(["Get"])
        assert report.feasible
        assert report.discharged_count == report.vc_count

    def test_report_rollups(self):
        report = Examiner(PKG).examine()
        assert report.vc_count == sum(
            a.vc_count for a in report.per_subprogram.values())
        assert report.generated_bytes > 0
        assert report.simulated_seconds >= 0.0
        assert report.max_generated_lines >= 1

    def test_statement_budget(self):
        limits = ExaminerLimits(max_tree_bytes=None, max_wp_statements=0)
        report = Examiner(PKG, limits=limits).examine(["Get"])
        assert not report.feasible
