"""Unit tests for the hash-consed term core."""

import pytest

from repro.logic import (
    FALSE, TRUE, add, band, boolc, bor, conj, disj, eq, forall, implies,
    intc, ite, le, lt, mk, modi, mul, neg, select, shl, shr, store, sub,
    substitute, substitute_simplifying, var, xor,
)
from repro.logic.measure import dag_size, max_depth, tree_bytes, tree_size


class TestHashConsing:
    def test_structural_equality_is_identity(self):
        a = add(var("x"), intc(1))
        b = add(var("x"), intc(1))
        assert a is b

    def test_commutative_canonical_order(self):
        assert add(var("x"), var("y")) is add(var("y"), var("x"))
        assert xor(var("a"), var("b")) is xor(var("b"), var("a"))
        assert conj(var("p"), var("q")) is conj(var("q"), var("p"))

    def test_distinct_terms_distinct(self):
        assert add(var("x"), intc(1)) is not add(var("x"), intc(2))


class TestBuilders:
    def test_conj_units(self):
        p = var("p")
        assert conj() is TRUE
        assert conj(p) is p
        assert conj(p, TRUE) is p
        assert conj(p, FALSE) is FALSE
        assert conj(p, p) is p

    def test_disj_units(self):
        p = var("p")
        assert disj() is FALSE
        assert disj(p, FALSE) is p
        assert disj(p, TRUE) is TRUE

    def test_conj_flattening(self):
        p, q, r = var("p"), var("q"), var("r")
        assert conj(conj(p, q), r) is conj(p, q, r)

    def test_neg(self):
        p = var("p")
        assert neg(TRUE) is FALSE
        assert neg(neg(p)) is p

    def test_implies(self):
        p, q = var("p"), var("q")
        assert implies(TRUE, q) is q
        assert implies(FALSE, q) is TRUE
        assert implies(p, TRUE) is TRUE
        assert implies(p, FALSE) is neg(p)
        assert implies(p, p) is TRUE

    def test_ite(self):
        p, a, b = var("p"), var("a"), var("b")
        assert ite(TRUE, a, b) is a
        assert ite(FALSE, a, b) is b
        assert ite(p, a, a) is a

    def test_arith_folding(self):
        assert add(intc(2), intc(3)) is intc(5)
        assert add(var("x"), intc(0)) is var("x")
        assert mul(intc(2), intc(3)) is intc(6)
        assert mul(var("x"), intc(0)) is intc(0)
        assert mul(var("x"), intc(1)) is var("x")
        assert sub(intc(7), intc(3)) is intc(4)

    def test_relations_folding(self):
        assert lt(intc(1), intc(2)) is TRUE
        assert lt(intc(2), intc(2)) is FALSE
        assert le(intc(2), intc(2)) is TRUE
        assert le(var("x"), var("x")) is TRUE
        assert eq(intc(5), intc(5)) is TRUE
        assert eq(intc(5), intc(6)) is FALSE

    def test_bitwise_folding(self):
        assert xor(intc(0xF0), intc(0x0F)) is intc(0xFF)
        x = var("x")
        assert xor(x, x) is intc(0)
        assert xor(x, intc(0)) is x
        assert xor(x, x, x) is x
        assert band(x, intc(0)) is intc(0)
        assert bor(x, intc(0)) is x
        assert shl(intc(1), intc(4)) is intc(16)
        assert shr(intc(255), intc(4)) is intc(15)

    def test_mod_folding(self):
        assert modi(intc(17), intc(5)) is intc(2)
        assert modi(var("x"), intc(1)) is intc(0)

    def test_select_over_store(self):
        a, i, j, v = var("a"), var("i"), var("j"), var("v")
        assert select(store(a, i, v), i) is v
        assert select(store(a, intc(1), v), intc(2)) is select(a, intc(2))
        # undecided indices stay symbolic
        got = select(store(a, i, v), j)
        assert got.op == "select"

    def test_forall_drops_unused(self):
        body = lt(var("i"), intc(4))
        q = forall(["i", "junk"], body)
        assert q.value == ("i",)
        assert forall(["z"], TRUE) is TRUE


class TestFreeVars:
    def test_free_vars_basic(self):
        t = add(var("x"), mul(var("y"), intc(3)))
        assert t.free_vars() == frozenset({"x", "y"})

    def test_free_vars_quantifier(self):
        q = forall(["i"], lt(var("i"), var("n")))
        assert q.free_vars() == frozenset({"n"})

    def test_free_vars_shared_diamond(self):
        shared = add(var("c"), intc(1))
        t = conj(eq(var("a"), shared), eq(var("b"), shared))
        assert t.free_vars() == frozenset({"a", "b", "c"})


class TestSubstitution:
    def test_basic(self):
        t = add(var("x"), intc(1))
        assert substitute(t, {"x": intc(4)}).op == "add"  # raw: no folding
        assert substitute_simplifying(t, {"x": intc(4)}) is intc(5)

    def test_no_change_returns_same_object(self):
        t = add(var("x"), intc(1))
        assert substitute(t, {"zzz": intc(0)}) is t

    def test_parallel(self):
        t = sub(var("x"), var("y"))
        got = substitute_simplifying(t, {"x": var("y"), "y": var("x")})
        assert got is sub(var("y"), var("x"))

    def test_bound_variables_untouched(self):
        q = forall(["i"], lt(var("i"), var("n")))
        got = substitute(q, {"i": intc(0), "n": intc(9)})
        assert got.value == ("i",)
        assert got.args[0] is mk("lt", (var("i"), intc(9)))

    def test_capture_avoided(self):
        # forall i. i < n  with  n := i + 1  must alpha-rename the binder.
        q = forall(["i"], lt(var("i"), var("n")))
        got = substitute(q, {"n": add(var("i"), intc(1))})
        assert got.op == "forall"
        bound = got.value[0]
        assert bound != "i"
        assert "i" in got.free_vars()


class TestMeasure:
    def test_leaf_sizes(self):
        assert tree_size(intc(5)) == 1
        assert dag_size(intc(5)) == 1
        assert max_depth(intc(5)) == 1

    def test_shared_diamond_tree_vs_dag(self):
        shared = add(var("x"), intc(1))
        t = mul(shared, shared)
        # one mul node + one shared add counted twice in tree form
        assert dag_size(t) == 4
        assert tree_size(t) == 7

    def test_exponential_tree_linear_dag(self):
        t = var("x")
        for _ in range(64):
            t = mk("mul", (t, t))
        assert dag_size(t) == 65
        assert tree_size(t) == 2 ** 65 - 1
        assert tree_bytes(t) > 2 ** 64

    def test_tree_bytes_positive_monotone(self):
        small = add(var("x"), intc(1))
        big = mul(small, small, var("y"))
        assert 0 < tree_bytes(small) < tree_bytes(big)


class TestIterDag:
    def test_postorder_children_first(self):
        inner = add(var("x"), intc(1))
        outer = mul(inner, var("y"))
        order = list(outer.iter_dag())
        assert order.index(inner) < order.index(outer)
        assert order[-1] is outer

    def test_each_node_once(self):
        shared = add(var("x"), intc(1))
        t = mul(shared, shared)
        nodes = list(t.iter_dag())
        assert len(nodes) == len({n._id for n in nodes})


class TestConcurrentInterning:
    def test_eight_threads_intern_identical_terms(self):
        """Hash-consing must stay sound under concurrent construction:
        every thread building the same term must get the *same* node
        (identity is equality), and distinct terms must stay distinct.
        Regression test for the interning table's double-checked locking."""
        import threading

        n_threads = 8
        results = [None] * n_threads
        barrier = threading.Barrier(n_threads)

        def build(slot):
            barrier.wait()  # maximise construction overlap
            terms = []
            for i in range(200):
                t = implies(
                    conj(le(intc(0), var(f"x{i}")),
                         lt(var(f"x{i}"), intc(256))),
                    eq(xor(var(f"x{i}"), var("k")), intc(i % 256)))
                terms.append(t)
            results[slot] = terms

        threads = [threading.Thread(target=build, args=(slot,))
                   for slot in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        reference = results[0]
        for other in results[1:]:
            assert all(a is b for a, b in zip(reference, other))
        # distinct i -> distinct nodes
        assert len({t._id for t in reference}) == len(reference)

    def test_eight_threads_free_vars_cache(self):
        """Concurrent free-variable queries over a shared deep term must
        all see the same answer (the per-call cache publishes via
        setdefault; races are benign)."""
        import threading

        t = TRUE
        for i in range(100):
            t = conj(implies(eq(var(f"a{i}"), intc(i)), t),
                     lt(var("pivot"), intc(i + 1)))
        expected = t.free_vars()

        outcomes = []
        barrier = threading.Barrier(8)

        def query():
            barrier.wait()
            outcomes.append(t.free_vars())

        threads = [threading.Thread(target=query) for _ in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert all(o == expected for o in outcomes)
