"""Property-based tests (hypothesis) on core data structures and
invariants: term algebra, interval soundness, difference bounds, parser
round-trips, interpreter-vs-spec agreement, and GF(2^8) algebra."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.aes import gf
from repro.logic import (
    add, band, bor, bnot, conj, disj, eq, intc, le, lt, modi, mul, neg,
    shl, shr, substitute_simplifying, var, xor,
)
from repro.logic.measure import dag_size, tree_size
from repro.logic.rules import interval_of
from repro.prover import GroundEvaluator
from repro.prover.linarith import build_dbm

ints = st.integers(min_value=-1000, max_value=1000)
nats = st.integers(min_value=0, max_value=1000)
bytes_ = st.integers(min_value=0, max_value=255)


# ---------------------------------------------------------------------------
# Term algebra: the smart constructors implement the operators they claim.
# ---------------------------------------------------------------------------

class TestTermAlgebra:
    @given(ints, ints, ints)
    def test_add_folds_correctly(self, a, b, c):
        t = add(intc(a), add(intc(b), intc(c)))
        assert t is intc(a + b + c)

    @given(nats, nats)
    def test_xor_matches_python(self, a, b):
        assert xor(intc(a), intc(b)) is intc(a ^ b)

    @given(nats, nats)
    def test_band_bor_match_python(self, a, b):
        assert band(intc(a), intc(b)) is intc(a & b)
        assert bor(intc(a), intc(b)) is intc(a | b)

    @given(ints, ints)
    def test_relations_match_python(self, a, b):
        assert lt(intc(a), intc(b)).value == (a < b)
        assert le(intc(a), intc(b)).value == (a <= b)
        assert eq(intc(a), intc(b)).value == (a == b)

    @given(bytes_)
    def test_bnot_is_involution(self, a):
        t = var("x")
        assert bnot(bnot(t, 8), 8) is t
        assert bnot(intc(a), 8) is intc(a ^ 0xFF)

    @given(st.lists(nats, min_size=1, max_size=6))
    def test_xor_self_cancellation(self, values):
        terms = [var(f"v{i}") for i in range(len(values))]
        doubled = terms + terms
        assert xor(*doubled) is intc(0)

    @given(ints, ints)
    def test_substitution_evaluates(self, a, b):
        expr = add(mul(var("x"), intc(3)), var("y"))
        result = substitute_simplifying(expr, {"x": intc(a), "y": intc(b)})
        assert result is intc(3 * a + b)


# ---------------------------------------------------------------------------
# Interval analysis soundness: the computed interval contains the value.
# ---------------------------------------------------------------------------

def _eval(term, env_values):
    ev = GroundEvaluator()
    grounded = substitute_simplifying(
        term, {k: intc(v) for k, v in env_values.items()})
    return ev.evaluate(grounded)


class TestIntervalSoundness:
    @given(nats, nats, st.integers(min_value=0, max_value=255))
    @settings(max_examples=60)
    def test_band_mod_shr_interval_sound(self, x, m, mask):
        for build in (lambda: band(var("x"), intc(mask)),
                      lambda: modi(var("x"), intc(m + 1)),
                      lambda: shr(band(var("x"), intc(mask)), intc(2))):
            term = build()
            lo, hi = interval_of(term)
            value = _eval(term, {"x": x})
            if lo is not None:
                assert lo <= value
            if hi is not None:
                assert value <= hi

    @given(bytes_, bytes_)
    @settings(max_examples=60)
    def test_xor_interval_sound(self, a, b):
        term = xor(band(var("x"), intc(0xFF)), band(var("y"), intc(0x3F)))
        lo, hi = interval_of(term)
        value = _eval(term, {"x": a, "y": b})
        assert lo <= value <= hi


# ---------------------------------------------------------------------------
# Difference bounds: decisions agree with arithmetic on random models.
# ---------------------------------------------------------------------------

class TestDifferenceBounds:
    @given(ints, ints, ints)
    @settings(max_examples=60)
    def test_transitivity(self, a, b, c):
        from repro.logic import le as le_
        x, y, z = var("x"), var("y"), var("z")
        dbm = build_dbm([le_(x, y), le_(y, z)])
        assert dbm.decide(le_(x, z)) is True

    @given(st.integers(min_value=-50, max_value=50))
    @settings(max_examples=40)
    def test_diseq_tightening(self, c):
        from repro.logic import le as le_, lt as lt_, ne as ne_
        x, y = var("x"), var("y")
        dbm = build_dbm([le_(x, y), ne_(x, y)])
        assert dbm.decide(lt_(x, y)) is True


# ---------------------------------------------------------------------------
# Parser/printer round trips on generated programs.
# ---------------------------------------------------------------------------

@st.composite
def small_programs(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    body = []
    for i in range(n):
        value = draw(st.integers(min_value=0, max_value=10 ** 6))
        op = draw(st.sampled_from(["+", "-", "*", "xor"]))
        body.append(f"      X := (X {op} {value}) and 16#FFFF#;")
    stmts = "\n".join(body)
    return f"""
package P is
   type Word is mod 65536;
   procedure Q (Start : in Word; X : out Word) is
   begin
      X := Start;
{stmts}
   end Q;
end P;
"""


class TestRoundTrips:
    @given(small_programs())
    @settings(max_examples=30)
    def test_parse_print_parse(self, source):
        from repro.lang import parse_package, print_package
        pkg = parse_package(source)
        text = print_package(pkg)
        assert parse_package(text) == pkg

    @given(small_programs(), st.integers(min_value=0, max_value=65535))
    @settings(max_examples=20)
    def test_symbolic_summary_agrees_with_interpreter(self, source, start):
        from repro.equiv import SymbolicExecutor
        from repro.lang import Interpreter, analyze, parse_package
        typed = analyze(parse_package(source))
        concrete = Interpreter(typed).call_procedure("Q", [start, None])["X"]
        summary = SymbolicExecutor(typed).execute("Q")
        symbolic = substitute_simplifying(
            summary.outputs["X"], {"Start": intc(start)})
        assert GroundEvaluator().evaluate(symbolic) == concrete


# ---------------------------------------------------------------------------
# GF(2^8) algebra.
# ---------------------------------------------------------------------------

class TestGFAlgebra:
    @given(bytes_, bytes_, bytes_)
    @settings(max_examples=60)
    def test_distributivity(self, a, b, c):
        assert gf.gmul(a, b ^ c) == gf.gmul(a, b) ^ gf.gmul(a, c)

    @given(bytes_, bytes_)
    @settings(max_examples=60)
    def test_commutativity(self, a, b):
        assert gf.gmul(a, b) == gf.gmul(b, a)

    @given(bytes_)
    def test_xtime_is_mul2(self, a):
        assert gf.xtime(a) == gf.gmul(a, 2)


# ---------------------------------------------------------------------------
# Measurement invariants.
# ---------------------------------------------------------------------------

class TestMeasures:
    @given(st.integers(min_value=0, max_value=12))
    def test_tree_vs_dag_on_doubling_chain(self, depth):
        from repro.logic import mk
        t = var("x")
        for _ in range(depth):
            t = mk("mul", (t, t))
        assert dag_size(t) == depth + 1
        assert tree_size(t) == 2 ** (depth + 1) - 1
