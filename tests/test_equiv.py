"""Semantics-preservation (equiv) tests."""

import pytest

from repro.equiv import (
    SymbolicExecutor, UnsupportedProgram, differential_check,
    exhaustive_check, final_state, prove_equivalence,
)
from repro.lang import analyze, parse_package
from repro.logic import render_full


def analyzed(src):
    return analyze(parse_package(src))


ROLLED = analyzed("""
package P is
   type Byte is mod 256;
   type Arr is array (0 .. 3) of Byte;
   procedure Q (A : in Arr; B : out Arr) is
   begin
      for I in 0 .. 3 loop
         B (I) := A (I) xor 255;
      end loop;
   end Q;
end P;
""")

UNROLLED = analyzed("""
package P is
   type Byte is mod 256;
   type Arr is array (0 .. 3) of Byte;
   procedure Q (A : in Arr; B : out Arr) is
   begin
      B (0) := A (0) xor 255;
      B (1) := A (1) xor 255;
      B (2) := A (2) xor 255;
      B (3) := A (3) xor 255;
   end Q;
end P;
""")

WRONG = analyzed("""
package P is
   type Byte is mod 256;
   type Arr is array (0 .. 3) of Byte;
   procedure Q (A : in Arr; B : out Arr) is
   begin
      B (0) := A (0) xor 255;
      B (1) := A (1) xor 255;
      B (2) := A (2) xor 254;
      B (3) := A (3) xor 255;
   end Q;
end P;
""")


class TestSymbolicExecution:
    def test_summary_of_straight_line(self):
        typed = analyzed("""
package P is
   type Byte is mod 256;
   function F (X : in Byte) return Byte is
      T : Byte;
   begin
      T := X xor 10;
      T := T xor 10;
      return T;
   end F;
end P;
""")
        summary = SymbolicExecutor(typed).execute("F")
        assert render_full(summary.outputs["Result"]) == "X"

    def test_literal_loop_unrolls(self):
        summary = SymbolicExecutor(ROLLED.package and ROLLED).execute("Q")
        assert "B" in summary.outputs

    def test_branches_merge_with_ite(self):
        typed = analyzed("""
package P is
   function F (X : in Integer) return Integer is
      Y : Integer;
   begin
      if X > 0 then
         Y := 1;
      else
         Y := 2;
      end if;
      return Y;
   end F;
end P;
""")
        summary = SymbolicExecutor(typed).execute("F")
        assert summary.outputs["Result"].op == "ite"

    def test_early_returns_merge(self):
        typed = analyzed("""
package P is
   function F (X : in Integer) return Integer is
   begin
      if X > 0 then
         return 1;
      end if;
      return 0;
   end F;
end P;
""")
        summary = SymbolicExecutor(typed).execute("F")
        term = summary.outputs["Result"]
        assert term.op == "ite"

    def test_function_inlining(self):
        typed = analyzed("""
package P is
   type Byte is mod 256;
   function G (X : in Byte) return Byte is
   begin
      return X xor 7;
   end G;
   function F (X : in Byte) return Byte is
   begin
      return G (G (X));
   end F;
end P;
""")
        summary = SymbolicExecutor(typed).execute("F")
        assert render_full(summary.outputs["Result"]) == "X"

    def test_while_unsupported(self):
        typed = analyzed("""
package P is
   function F (X : in Integer) return Integer is
      Y : Integer;
   begin
      Y := X;
      while Y > 0 loop
         Y := Y - 1;
      end loop;
      return Y;
   end F;
end P;
""")
        with pytest.raises(UnsupportedProgram):
            SymbolicExecutor(typed).execute("F")

    def test_procedure_call_inlined(self):
        typed = analyzed("""
package P is
   type Byte is mod 256;
   procedure Inc (X : in Byte; Y : out Byte) is
   begin
      Y := X + 1;
   end Inc;
   procedure F (A : in Byte; B : out Byte) is
      T : Byte;
   begin
      Inc (A, T);
      Inc (T, B);
   end F;
end P;
""")
        summary = SymbolicExecutor(typed).execute("F")
        text = render_full(summary.outputs["B"])
        assert "A" in text and "2" in text


class TestFinalState:
    def test_final_state_function(self):
        out = final_state(ROLLED, "Q", {"A": [1, 2, 3, 4]})
        assert out["B"] == [254, 253, 252, 251]


class TestEquivalence:
    def test_rolled_equals_unrolled_symbolically(self):
        theorem = prove_equivalence(ROLLED, "Q", UNROLLED, "Q")
        assert theorem.is_proof
        assert theorem.evidence == "symbolic"

    def test_defective_version_refuted(self):
        theorem = prove_equivalence(ROLLED, "Q", WRONG, "Q")
        assert theorem.status == "refuted"
        assert theorem.counterexample is not None

    def test_differential_check_direct(self):
        result = differential_check(ROLLED, "Q", UNROLLED, "Q", trials=16)
        assert result.equivalent

    def test_exhaustive_small_domain(self):
        left = analyzed("""
package P is
   type Byte is mod 256;
   function F (X : in Byte) return Byte is
   begin
      return X + 1;
   end F;
end P;
""")
        right = analyzed("""
package P is
   type Byte is mod 256;
   function F (X : in Byte) return Byte is
   begin
      return 1 + X;
   end F;
end P;
""")
        result = exhaustive_check(left, "F", right, "F")
        assert result.equivalent
        assert result.trials == 256

    def test_exhaustive_finds_single_point_defect(self):
        left = analyzed("""
package P is
   type Byte is mod 256;
   function F (X : in Byte) return Byte is
   begin
      return X xor 90;
   end F;
end P;
""")
        right = analyzed("""
package P is
   type Byte is mod 256;
   function F (X : in Byte) return Byte is
   begin
      if X = 200 then
         return 0;
      end if;
      return X xor 90;
   end F;
end P;
""")
        theorem = prove_equivalence(left, "F", right, "F")
        assert theorem.status == "refuted"
        assert theorem.counterexample.initial == {"X": 200}
