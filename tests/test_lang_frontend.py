"""Lexer / parser / printer tests for MiniAda."""

import pytest

from repro.lang import (
    LexError, ParseError, parse_expression, parse_package, print_package,
    tokenize,
)
from repro.lang import ast

SAMPLE = """
package Demo is

   type Byte is mod 256;
   type Word is mod 4294967296;
   subtype Index is Integer range 0 .. 15;
   type ByteArray is array (0 .. 15) of Byte;

   Mask : constant Byte := 16#0F#;
   Zeros : constant ByteArray := (others => 0);
   Table : constant ByteArray := (1, 2, 3, 4, 5, 6, 7, 8,
                                  9, 10, 11, 12, 13, 14, 15, others => 0);

   --# function Spec_Sum (A : in ByteArray) return Byte;
   --# rule Sum_Zero: Spec_Sum (Zeros) = 0;

   function Low_Nibble (X : in Byte) return Byte
   --# pre X >= 0;
   --# post Result = (X and Mask);
   is
   begin
      return X and Mask;
   end Low_Nibble;

   procedure Sum (A : in ByteArray; Total : out Byte)
   --# post Total = Spec_Sum (A);
   is
      Acc : Byte;
   begin
      Acc := 0;
      for I in 0 .. 15 loop
         --# assert Acc >= 0;
         Acc := Acc + A (I);
      end loop;
      Total := Acc;
   end Sum;

end Demo;
"""


class TestLexer:
    def test_based_literals(self):
        toks = tokenize("16#FF# 2#1010# 10#42#")
        assert [t.value for t in toks[:-1]] == [255, 10, 42]

    def test_underscores_in_numbers(self):
        toks = tokenize("4_294_967_296")
        assert toks[0].value == 4294967296

    def test_keywords_case_insensitive(self):
        toks = tokenize("PACKAGE Package package")
        assert all(t.kind == "kw" and t.value == "package" for t in toks[:-1])

    def test_annotation_token(self):
        toks = tokenize("--# pre X > 0;")
        assert toks[0].kind == "annot" and toks[0].value == "pre"
        assert toks[1].kind == "id" and toks[1].value == "X"

    def test_plain_comment_skipped(self):
        toks = tokenize("x -- this is a comment\ny")
        assert [t.value for t in toks[:-1]] == ["x", "y"]

    def test_symbols_maximal_munch(self):
        toks = tokenize(":= .. => /= <= >=")
        assert [t.value for t in toks[:-1]] == [":=", "..", "=>", "/=", "<=", ">="]

    def test_line_numbers(self):
        toks = tokenize("a\nb\n\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 4]

    def test_bad_char_raises(self):
        with pytest.raises(LexError):
            tokenize("a ? b")

    def test_unterminated_based_literal(self):
        with pytest.raises(LexError):
            tokenize("16#FF")


class TestParser:
    def test_sample_package_structure(self):
        pkg = parse_package(SAMPLE)
        assert pkg.name == "Demo"
        names = [type(d).__name__ for d in pkg.decls]
        assert names == [
            "ModTypeDecl", "ModTypeDecl", "SubtypeDecl", "ArrayTypeDecl",
            "ConstDecl", "ConstDecl", "ConstDecl",
            "ProofFunctionDecl", "ProofRuleDecl",
        ]
        assert [sp.name for sp in pkg.subprograms] == ["Low_Nibble", "Sum"]

    def test_function_annotations_attached(self):
        pkg = parse_package(SAMPLE)
        fn = pkg.subprogram("Low_Nibble")
        assert len(fn.pre) == 1 and len(fn.post) == 1
        assert fn.is_function

    def test_loop_with_assert(self):
        pkg = parse_package(SAMPLE)
        proc = pkg.subprogram("Sum")
        loop = next(s for s in proc.body if isinstance(s, ast.For))
        assert isinstance(loop.body[0], ast.Assert)

    def test_aggregate_others(self):
        pkg = parse_package(SAMPLE)
        zeros = pkg.decl("Zeros")
        assert isinstance(zeros.value, ast.Aggregate)
        assert zeros.value.items == ()
        assert zeros.value.others == ast.IntLit(0)

    def test_expression_precedence(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, ast.BinOp) and e.op == "+"
        assert isinstance(e.right, ast.BinOp) and e.right.op == "*"

    def test_relation_binds_looser_than_arith(self):
        e = parse_expression("A + 1 = B * 2")
        assert e.op == "="

    def test_logical_mixing_requires_parens(self):
        with pytest.raises(ParseError):
            parse_expression("A and B or C")
        e = parse_expression("(A and B) or C")
        assert e.op == "or"

    def test_and_then(self):
        e = parse_expression("A and then B")
        assert e.op == "and_then"

    def test_chained_indexing(self):
        e = parse_expression("S (I) (J)")
        assert isinstance(e, ast.App) and isinstance(e.prefix, ast.App)

    def test_old_expression(self):
        e = parse_expression("X~ + 1")
        assert isinstance(e.left, ast.OldExpr)

    def test_forall(self):
        e = parse_expression("(for all I in 0 .. 15 => (A (I) = 0))")
        assert isinstance(e, ast.ForAll)
        assert e.var == "I"

    def test_mismatched_end_name(self):
        with pytest.raises(ParseError):
            parse_package("package P is end Q;")

    def test_reverse_for(self):
        pkg = parse_package("""
package P is
   procedure Q is
      X : Integer;
   begin
      for I in reverse 1 .. 3 loop
         X := I;
      end loop;
   end Q;
end P;
""")
        loop = pkg.subprogram("Q").body[0]
        assert loop.reverse

    def test_multi_param_groups(self):
        pkg = parse_package("""
package P is
   procedure Q (A, B : in Integer; C : out Integer) is
   begin
      C := A + B;
   end Q;
end P;
""")
        params = pkg.subprogram("Q").params
        assert [(p.name, p.mode) for p in params] == [
            ("A", "in"), ("B", "in"), ("C", "out")]


class TestPrinterRoundTrip:
    def test_roundtrip_stable(self):
        pkg = parse_package(SAMPLE)
        text1 = print_package(pkg)
        pkg2 = parse_package(text1)
        text2 = print_package(pkg2)
        assert text1 == text2
        assert pkg == pkg2

    def test_hex_printing(self):
        pkg = parse_package(SAMPLE)
        text = print_package(pkg)
        assert "16#" not in text.split("Mask")[0]  # nothing weird before
        # Large values render in hex; Mask (15) stays decimal.
        assert "Mask : constant Byte := 15;" in text

    def test_aggregate_wrapping(self):
        entries = ", ".join(str(1000 + i) for i in range(64))
        src = f"""
package P is
   type WordTable is array (0 .. 63) of Integer;
   T : constant WordTable := ({entries});
end P;
"""
        pkg = parse_package(src)
        text = print_package(pkg)
        assert max(len(line) for line in text.splitlines()) < 100
        assert parse_package(text) == pkg
