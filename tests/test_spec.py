"""MiniPVS specification language tests."""

import pytest

from repro.spec import (
    SpecEvalError, SpecEvaluator, SpecTypeError, check_theory,
    discharge_tccs, parse_theory, print_theory, spec_line_count,
)
from repro.spec import ast as s

DEMO = """
THEORY Demo
  TYPE Byte = NAT UPTO 255
  TYPE Nibble = NAT UPTO 15
  TYPE Quad = ARRAY 4 OF Byte

  CONST Twice : ARRAY 8 OF Byte = [0, 2, 4, 6, 8, 10, 12, 14]

  FUN Low (B : Byte) : Nibble = BITAND(B, 15)

  FUN SwapAdd (A : Byte, B : Byte) : NAT = A + B

  FUN MapLow (Q : Quad) : ARRAY 4 OF Nibble =
      BUILD I : 4 . Low(Q[I])

  FUN Pick (B : Nibble) : Byte =
      IF B < 8 THEN Twice[B] ELSE 255 ENDIF

  REC FUN Sum (N : NAT UPTO 100) : NAT MEASURE N =
      IF N = 0 THEN 0 ELSE N + Sum(N - 1) ENDIF
END Demo
"""


class TestParser:
    def test_theory_structure(self):
        theory = parse_theory(DEMO)
        assert theory.name == "Demo"
        assert [t.name for t in theory.types()] == ["Byte", "Nibble", "Quad"]
        assert [c.name for c in theory.constants()] == ["Twice"]
        assert [f.name for f in theory.functions()] == [
            "Low", "SwapAdd", "MapLow", "Pick", "Sum"]

    def test_recursive_flag_and_measure(self):
        theory = parse_theory(DEMO)
        fn = theory.decl("Sum")
        assert fn.recursive
        assert fn.measure == s.Var(name="N")

    def test_mismatched_end(self):
        with pytest.raises(Exception, match="ends with"):
            parse_theory("THEORY A END B")

    def test_roundtrip(self):
        theory = parse_theory(DEMO)
        text = print_theory(theory)
        again = parse_theory(text)
        assert print_theory(again) == text

    def test_line_count_positive(self):
        theory = parse_theory(DEMO)
        assert spec_line_count(theory) >= 10


class TestEvaluator:
    def setup_method(self):
        self.ev = SpecEvaluator(parse_theory(DEMO))

    def test_table(self):
        assert self.ev.constant("Twice") == (0, 2, 4, 6, 8, 10, 12, 14)

    def test_bitand_builtin(self):
        assert self.ev.call("Low", [0xAB]) == 0x0B

    def test_build(self):
        assert self.ev.call("MapLow", [(0x12, 0x34, 0x56, 0x78)]) == \
            (2, 4, 6, 8)

    def test_if(self):
        assert self.ev.call("Pick", [3]) == 6
        assert self.ev.call("Pick", [9]) == 255

    def test_recursion(self):
        assert self.ev.call("Sum", [10]) == 55

    def test_index_out_of_bounds(self):
        with pytest.raises(SpecEvalError, match="out of bounds"):
            self.ev.call("Pick", [-1])  # Twice[-1]


class TestTypecheckTCCs:
    def test_demo_tccs_all_discharge(self):
        theory = parse_theory(DEMO)
        check = check_theory(theory)
        assert check.tccs  # index TCCs from Twice[B], termination from Sum
        report = discharge_tccs(theory, check.tccs)
        assert report.all_discharged, [t.kind for t in report.unproved]

    def test_termination_tcc_generated(self):
        theory = parse_theory(DEMO)
        check = check_theory(theory)
        kinds = {t.kind for t in check.tccs}
        assert "termination" in kinds

    def test_undischargeable_index_survives(self):
        bad = """
THEORY Bad
  CONST T : ARRAY 4 OF NAT UPTO 9 = [1, 2, 3, 4]
  FUN F (N : NAT) : NAT = T[N]
END Bad
"""
        theory = parse_theory(bad)
        check = check_theory(theory)
        report = discharge_tccs(theory, check.tccs)
        assert not report.all_discharged
        assert report.unproved[0].kind == "index"

    def test_subsumption_counted(self):
        dup = """
THEORY Dup
  CONST T : ARRAY 256 OF NAT UPTO 255 = [others]
  FUN F (N : NAT) : NAT = T[BITAND(N, 255)] + T[BITAND(N, 255)]
END Dup
""".replace("[others]", "[" + ", ".join("1" for _ in range(256)) + "]")
        theory = parse_theory(dup)
        check = check_theory(theory)
        report = discharge_tccs(theory, check.tccs)
        assert report.subsumed >= 1
        assert report.all_discharged

    def test_missing_measure_rejected(self):
        bad = """
THEORY Bad
  FUN Loop (N : NAT) : NAT = Loop(N)
END Bad
"""
        with pytest.raises(SpecTypeError, match="MEASURE|recursive"):
            check_theory(parse_theory(bad))

    def test_nat_subtraction_tcc(self):
        theory = parse_theory("""
THEORY Subs
  FUN F (N : NAT UPTO 10) : NAT = N - 20
END Subs
""")
        check = check_theory(theory)
        report = discharge_tccs(theory, check.tccs)
        assert not report.all_discharged
        assert report.unproved[0].kind == "subrange"

    def test_branch_type_join(self):
        theory = parse_theory("""
THEORY J
  TYPE Byte = NAT UPTO 255
  FUN F (B : Byte, C : BOOL) : Byte = IF C THEN B ELSE 0 ENDIF
END J
""")
        check = check_theory(theory)
        report = discharge_tccs(theory, check.tccs)
        assert report.all_discharged
