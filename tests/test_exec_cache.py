"""Obligation cache tests: canonical fingerprints, hit/miss semantics on
real proof runs, defect-induced invalidation, and the on-disk store."""

import os
import time

import pytest

from repro.defects.curated import curated_defects
from repro.exec import (
    ExecConfig, ObligationScheduler, Obligation, ResultCache, Telemetry,
    make_key, package_fingerprint,
)
from repro.lang import analyze, parse_package
from repro.logic import add, canonical_text, fingerprint, intc, mk, var
from repro.prover import ImplementationProof


#: A package whose VCs survive examination: the loop-invariant VCs of
#: Invert reach the auto prover, so real ``vc`` obligations are scheduled
#: (trivially-simplified VCs never become obligations).
SMALL_PKG_SRC = """
package Cachey is
   type Byte is mod 256;
   type Arr is array (0 .. 7) of Byte;

   procedure Invert (A : in Arr; B : out Arr)
   --# post for all K in 0 .. 7 => (B (K) = (A (K) xor 255));
   is
   begin
      for I in 0 .. 7 loop
         --# assert for all K in 0 .. I - 1 => (B (K) = (A (K) xor 255));
         B (I) := A (I) xor 255;
      end loop;
   end Invert;
end Cachey;
"""


def small_package():
    return analyze(parse_package(SMALL_PKG_SRC))


class TestFingerprint:
    def test_commutative_order_independent(self):
        a, b = var("a"), var("b")
        left = mk("add", (a, b))
        right = mk("add", (b, a))
        # raw constructor: genuinely different nodes...
        assert left is not right
        # ...but one canonical digest.
        assert fingerprint(left) == fingerprint(right)

    def test_distinct_terms_distinct_digests(self):
        assert fingerprint(add(var("a"), intc(1))) != \
            fingerprint(add(var("a"), intc(2)))

    def test_canonical_text_sorts_commutative_args(self):
        a, b = var("a"), var("b")
        assert canonical_text(mk("add", (a, b))) == \
            canonical_text(mk("add", (b, a)))

    def test_stable_across_processes(self):
        """The digest must not depend on interning order or hash seed:
        recompute it in a subprocess with a different PYTHONHASHSEED and
        different construction history."""
        import subprocess
        import sys

        program = (
            "from repro.logic import add, intc, mul, var, fingerprint\n"
            # touch other terms first so interning ids differ
            "[mul(var('z%d' % i), intc(i)) for i in range(50)]\n"
            "t = add(mul(var('y'), intc(3)), var('x'), intc(7))\n"
            "print(fingerprint(t))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "12345"},
        ).stdout.strip()
        from repro.logic import mul
        here = fingerprint(add(mul(var("y"), intc(3)), var("x"), intc(7)))
        assert out == here


class TestObligationCacheOnProofs:
    def test_second_run_discharges_nothing(self):
        """Identical obligations hit the cache: the second implementation
        proof over the same package computes zero VC obligations and
        reproduces the first run's outcomes exactly."""
        cache = ResultCache()
        t1, t2 = Telemetry(), Telemetry()

        r1 = ImplementationProof(
            small_package(),
            exec=ExecConfig(cache=cache, telemetry=t1)).run()
        r2 = ImplementationProof(
            small_package(),
            exec=ExecConfig(cache=cache, telemetry=t2)).run()

        s1, s2 = t1.stats(), t2.stats()
        assert s1.computed.get("vc", 0) > 0
        assert s1.cache_hits == 0
        assert s2.computed.get("vc", 0) == 0          # warm: all cached
        assert s2.cached.get("vc", 0) == s1.computed["vc"]
        assert s2.hit_rate == 1.0

        assert [(o.vc.name, o.stage, o.result.proved if o.result else None)
                for o in r1.outcomes] == \
               [(o.vc.name, o.stage, o.result.proved if o.result else None)
                for o in r2.outcomes]
        assert r1.auto_percent == r2.auto_percent

    def test_seeded_defect_invalidates_fingerprint(self):
        """An AST mutation (a curated defect's source patch) changes the
        package fingerprint, so its obligations miss the cache."""
        from repro.aes.optimized import optimized_source

        source = optimized_source()
        defect = next(d for d in curated_defects() if d.optimized_patch)
        mutated = source
        for old, new in defect.optimized_patch:
            assert old in mutated, f"{defect.name}: patch site not found"
            mutated = mutated.replace(old, new, 1)
        assert mutated != source

        clean_fp = package_fingerprint(analyze(parse_package(source)))
        defect_fp = package_fingerprint(analyze(parse_package(mutated)))
        assert clean_fp != defect_fp

    def test_local_mutation_misses_cache(self):
        """End to end on the small package: mutate one expression and the
        affected obligation keys change (cache misses, recompute)."""
        cache = ResultCache()
        t1, t2 = Telemetry(), Telemetry()
        ImplementationProof(
            small_package(),
            exec=ExecConfig(cache=cache, telemetry=t1)).run()
        mutated = analyze(parse_package(
            SMALL_PKG_SRC.replace("B (I) := A (I) xor 255;",
                                  "B (I) := A (I) xor 254;")))
        ImplementationProof(
            mutated, exec=ExecConfig(cache=cache, telemetry=t2)).run()
        s2 = t2.stats()
        # the package fingerprint feeds every key: nothing can hit.
        assert s2.cache_hits == 0
        assert s2.computed.get("vc", 0) > 0


class TestDiskStore:
    def test_round_trip(self, tmp_path):
        store = tmp_path / "obcache"
        first = ResultCache(disk_dir=store)
        key = make_key("kind", "unit-test", "payload")
        first.put(key, {"stage": "auto", "result": [True, "eval", ""]},
                  encode=lambda v: v)
        # a fresh cache over the same directory sees the entry
        second = ResultCache(disk_dir=store)
        hit, value = second.get(key, decode=lambda p: p)
        assert hit
        assert value == {"stage": "auto", "result": [True, "eval", ""]}
        miss, _ = second.get(make_key("other"), decode=lambda p: p)
        assert not miss

    def test_warm_proof_from_disk_only(self, tmp_path):
        """A second process-equivalent run (fresh in-memory state, same
        disk directory) still discharges zero VC obligations."""
        t1, t2 = Telemetry(), Telemetry()
        ImplementationProof(
            small_package(),
            exec=ExecConfig(cache=ResultCache(disk_dir=tmp_path),
                            telemetry=t1)).run()
        ImplementationProof(
            small_package(),
            exec=ExecConfig(cache=ResultCache(disk_dir=tmp_path),
                            telemetry=t2)).run()
        assert t1.stats().computed.get("vc", 0) > 0
        assert t2.stats().computed.get("vc", 0) == 0

    def test_scheduler_ignores_disk_for_uncodable_obligations(self, tmp_path):
        """Obligations without codecs stay memory-only (no files)."""
        cache = ResultCache(disk_dir=tmp_path / "c")
        ob = Obligation(kind="vc", label="raw", thunk=lambda: 41 + 1,
                        cache_key=make_key("raw"))
        scheduler = ObligationScheduler(jobs=1, cache=cache)
        [outcome] = scheduler.run([ob])
        assert outcome.ok and outcome.value == 42
        assert not list((tmp_path / "c").rglob("*.json"))


class TestMemoryLRU:
    """The in-memory layer's least-recently-used bound (PR 5): long
    harness runs cap their footprint without losing the hottest keys."""

    def test_eviction_order_is_least_recently_used(self):
        cache = ResultCache(max_memory_entries=3)
        for i in range(3):
            cache.put(f"k{i}", i)
        cache.put("k3", 3)                      # k0 is the oldest: evicted
        hit, _ = cache.get("k0")
        assert not hit
        assert [cache.get(f"k{i}")[0] for i in (1, 2, 3)] == [True] * 3

    def test_get_refreshes_recency(self):
        cache = ResultCache(max_memory_entries=3)
        for i in range(3):
            cache.put(f"k{i}", i)
        assert cache.get("k0")[0]               # k0 now most recently used
        cache.put("k3", 3)                      # k1 is the LRU: evicted
        assert cache.get("k0")[0]
        assert not cache.get("k1")[0]

    def test_put_of_existing_key_refreshes_and_updates(self):
        cache = ResultCache(max_memory_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)                      # refresh, not insert
        cache.put("c", 3)                       # evicts b, not a
        assert cache.get("a") == (True, 10)
        assert not cache.get("b")[0]
        assert len(cache) == 2

    def test_set_memory_limit_evicts_immediately(self):
        cache = ResultCache()                   # unbounded
        for i in range(10):
            cache.put(f"k{i}", i)
        cache.set_memory_limit(4)
        assert len(cache) == 4
        # the four *most recently used* keys survive
        assert all(cache.get(f"k{i}")[0] for i in (6, 7, 8, 9))
        assert not cache.get("k0")[0]

    def test_memory_eviction_keeps_disk_entry(self, tmp_path):
        """A memory-evicted key written through to disk is still a hit
        (slower), and the hit repopulates the memory layer as MRU."""
        cache = ResultCache(disk_dir=tmp_path, max_memory_entries=1)
        cache.put("a", {"v": 1}, encode=lambda v: v)
        cache.put("b", {"v": 2}, encode=lambda v: v)   # evicts a from memory
        hit, value = cache.get("a", decode=lambda p: p)
        assert hit and value == {"v": 1}
        cache.put("c", {"v": 3}, encode=lambda v: v)   # now evicts a again
        assert cache.get("c", decode=lambda p: p)[0]

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(max_memory_entries=0)
        with pytest.raises(ValueError):
            ResultCache().set_memory_limit(0)
        with pytest.raises(ValueError):
            ExecConfig(cache_memory_entries=0)

    def test_exec_config_applies_cap_to_scheduler_cache(self):
        cache = ResultCache()
        for i in range(8):
            cache.put(f"k{i}", i)
        config = ExecConfig(jobs=1, cache=cache, cache_memory_entries=5)
        scheduler = config.scheduler()
        assert scheduler.cache is cache
        assert cache.max_memory_entries == 5
        assert len(cache) == 5

    def test_bounded_cache_on_real_proof_run(self):
        """End to end: a tightly bounded cache still yields a correct
        (if partially cold) second run."""
        cache = ResultCache()
        t1, t2 = Telemetry(), Telemetry()
        r1 = ImplementationProof(
            small_package(),
            exec=ExecConfig(cache=cache, telemetry=t1,
                            cache_memory_entries=2)).run()
        r2 = ImplementationProof(
            small_package(),
            exec=ExecConfig(cache=cache, telemetry=t2,
                            cache_memory_entries=2)).run()
        assert len(cache) <= 2
        # outcomes identical whether each obligation hit or recomputed
        assert [(o.vc.name, o.stage) for o in r1.outcomes] == \
               [(o.vc.name, o.stage) for o in r2.outcomes]


class TestTmpSweep:
    """Regression: ``*.tmp`` files orphaned by a writer that died between
    ``mkstemp`` and the atomic ``os.replace`` used to accumulate forever
    (``clear()`` only globbed ``*.json``)."""

    def _orphan(self, store, name, age_seconds=0.0):
        bucket = store / "ab"
        bucket.mkdir(parents=True, exist_ok=True)
        orphan = bucket / name
        orphan.write_text("{half-written")
        if age_seconds:
            old = time.time() - age_seconds
            os.utime(orphan, (old, old))
        return orphan

    def test_clear_sweeps_orphaned_tmp_files(self, tmp_path):
        store = tmp_path / "store"
        cache = ResultCache(disk_dir=store)
        key = make_key("sweep", "entry")
        cache.put(key, {"v": 1}, encode=lambda v: v)
        orphan = self._orphan(store, "stale0.tmp")
        cache.clear()
        assert not orphan.exists()
        assert not list(store.rglob("*.json"))

    def test_open_sweeps_only_stale_tmp_files(self, tmp_path):
        """On store open, old orphans go but a *young* temp file (a
        concurrent writer mid-publish) must survive."""
        store = tmp_path / "store"
        ResultCache(disk_dir=store)   # create the directory
        stale = self._orphan(store, "stale.tmp",
                             age_seconds=ResultCache.STALE_TMP_SECONDS + 60)
        fresh = self._orphan(store, "fresh.tmp")
        ResultCache(disk_dir=store)   # re-open: the sweep runs
        assert not stale.exists()
        assert fresh.exists()

    def test_crashed_writer_orphan_swept_then_store_still_works(
            self, tmp_path):
        store = tmp_path / "store"
        cache = ResultCache(disk_dir=store)
        self._orphan(store, "dead-writer.tmp",
                     age_seconds=ResultCache.STALE_TMP_SECONDS + 1)
        reopened = ResultCache(disk_dir=store)
        assert not list(store.rglob("*.tmp"))
        key = make_key("post", "sweep")
        reopened.put(key, {"v": 2}, encode=lambda v: v)
        hit, value = ResultCache(disk_dir=store).get(key, decode=lambda p: p)
        assert hit and value == {"v": 2}
