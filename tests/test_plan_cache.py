"""Persistent plan-cache tests (DESIGN.md §18): defensive loading,
atomic round-trips, scoring-digest scoping, and the headline property --
a warm replan reproduces the cold plan bit-identically while scheduling
zero evaluation obligations."""

import json

import pytest

from repro.exec import ExecConfig, Telemetry
from repro.plan import PLAN_CACHE_SCHEMA, PlanCache, plan_aes, \
    scoring_digest


def _digest(tag="ref-fp"):
    return scoring_digest(tag, 4096, 24, "differential", 2, 7,
                          ["Cipher"])


class TestScoringDigest:
    def test_sensitive_to_every_scoping_input(self):
        base = _digest()
        assert base == _digest()
        variants = [
            scoring_digest("other-fp", 4096, 24, "differential", 2, 7,
                           ["Cipher"]),
            scoring_digest("ref-fp", 8192, 24, "differential", 2, 7,
                           ["Cipher"]),
            scoring_digest("ref-fp", 4096, 48, "differential", 2, 7,
                           ["Cipher"]),
            scoring_digest("ref-fp", 4096, 24, "exhaustive", 2, 7,
                           ["Cipher"]),
            scoring_digest("ref-fp", 4096, 24, "differential", 3, 7,
                           ["Cipher"]),
            scoring_digest("ref-fp", 4096, 24, "differential", 2, 8,
                           ["Cipher"]),
            scoring_digest("ref-fp", 4096, 24, "differential", 2, 7,
                           ["Cipher", "Inv_Cipher"]),
        ]
        assert len({base, *variants}) == len(variants) + 1


class TestPlanCachePersistence:
    def test_missing_file_loads_empty(self, tmp_path):
        cache = PlanCache(tmp_path / "none.json", _digest())
        assert len(cache) == 0
        assert not cache.dirty

    def test_round_trip(self, tmp_path):
        path = tmp_path / "plan.json"
        cache = PlanCache(path, _digest())
        cache.put_evaluation("k1", {"match_fraction": 0.5})
        key = PlanCache.validation_key("p", "c", "tok", "differential",
                                       2, 7, ["Cipher"])
        cache.put_validation(key, True, "")
        cache.put_validation("bad-edge", False, "mismatch at trial 1")
        assert cache.dirty
        cache.save()
        assert not cache.dirty

        clone = PlanCache(path, _digest())
        assert len(clone) == 3
        assert clone.get_evaluation("k1") == {"match_fraction": 0.5}
        assert clone.get_validation(key) == {"ok": True, "reason": ""}
        assert clone.get_validation("bad-edge") == \
            {"ok": False, "reason": "mismatch at trial 1"}
        assert clone.eval_hits == 1 and clone.validation_hits == 2

    def test_save_without_changes_is_a_no_op(self, tmp_path):
        path = tmp_path / "plan.json"
        cache = PlanCache(path, _digest())
        cache.save()
        assert not path.exists()

    def test_torn_file_loads_empty(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text('{"schema": "repro-plan-cache/v1", "scor')
        assert len(PlanCache(path, _digest())) == 0

    def test_wrong_schema_loads_empty(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({
            "schema": "repro-plan-cache/v0", "scoring": _digest(),
            "evaluations": {"k": {}}, "validations": {}}))
        assert len(PlanCache(path, _digest())) == 0

    def test_other_scoring_digest_loads_empty(self, tmp_path):
        """A cache written under different probe budgets / validation
        config must not leak entries into this run."""
        path = tmp_path / "plan.json"
        cache = PlanCache(path, _digest("fp-a"))
        cache.put_evaluation("k", {"x": 1})
        cache.save()
        assert len(PlanCache(path, _digest("fp-a"))) == 1
        assert len(PlanCache(path, _digest("fp-b"))) == 0

    def test_malformed_entries_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "schema": PLAN_CACHE_SCHEMA, "scoring": _digest(),
            "evaluations": {"good": {"x": 1}, "bad": "not-a-dict"},
            "validations": {"good": {"ok": True, "reason": ""},
                            "bad": {"ok": "yes"}}}))
        cache = PlanCache(path, _digest())
        assert len(cache) == 2
        assert cache.get_evaluation("good") == {"x": 1}
        assert cache.get_evaluation("bad") is None
        assert cache.get_validation("bad") is None

    def test_non_dict_sections_load_empty(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "schema": PLAN_CACHE_SCHEMA, "scoring": _digest(),
            "evaluations": [1, 2], "validations": {}}))
        assert len(PlanCache(path, _digest())) == 0


#: One capped planner invocation is ~20 s on this box; the replay pair
#: below shares a single cold run via a module-scoped fixture.
_PLAN_KW = dict(trials=1, beam_width=4, top_k=3, max_expansions=2)


@pytest.fixture(scope="module")
def cold_and_warm(tmp_path_factory):
    path = tmp_path_factory.mktemp("plan") / "plan-cache.json"
    cold_tel, warm_tel = Telemetry(), Telemetry()
    cold = plan_aes(exec=ExecConfig(jobs=1, telemetry=cold_tel),
                    plan_cache=str(path), **_PLAN_KW)
    warm = plan_aes(exec=ExecConfig(jobs=1, telemetry=warm_tel),
                    plan_cache=str(path), **_PLAN_KW)
    return path, cold, warm, cold_tel, warm_tel


class TestWarmReplay:
    def test_cache_file_written(self, cold_and_warm):
        path, _, _, _, _ = cold_and_warm
        data = json.loads(path.read_text())
        assert data["schema"] == PLAN_CACHE_SCHEMA
        assert data["evaluations"] and data["validations"]

    def test_warm_replan_is_bit_identical(self, cold_and_warm):
        _, cold, warm, _, _ = cold_and_warm
        assert warm.chain_digest == cold.chain_digest
        assert warm.found == cold.found
        assert warm.expansions == cold.expansions
        assert warm.evaluations == cold.evaluations
        assert warm.validations == cold.validations
        assert [s.description for s in warm.steps] == \
            [s.description for s in cold.steps]
        assert [r[1:] for r in warm.rejected] == \
            [r[1:] for r in cold.rejected]

    def test_warm_replan_schedules_no_evaluations(self, cold_and_warm):
        _, _, _, cold_tel, warm_tel = cold_and_warm

        def plan_evals(telemetry):
            return len({e.label for e in telemetry.events()
                        if e.kind == "plan_eval"
                        and e.event == "finished"})

        assert plan_evals(cold_tel) > 0
        assert plan_evals(warm_tel) == 0

    def test_cached_rejections_replayed_without_trials(self, cold_and_warm,
                                                       tmp_path):
        """The cached-verdict rejection branch: flip every accepted
        verdict in a copy of the cache to ``ok=False`` and replan --
        the planner must reject those edges *from the cache* (the
        injected reason surfaces in ``result.rejected``) instead of
        re-running differential trials and re-accepting them."""
        path, cold, _, _, _ = cold_and_warm
        assert cold.steps        # the capped search accepts something
        data = json.loads(path.read_text())
        flipped = 0
        for value in data["validations"].values():
            if value["ok"]:
                value.update(ok=False, reason="injected rejection")
                flipped += 1
        assert flipped > 0
        poisoned = tmp_path / "poisoned.json"
        poisoned.write_text(json.dumps(data))
        result = plan_aes(exec=ExecConfig(jobs=1),
                          plan_cache=str(poisoned), **_PLAN_KW)
        reasons = {r[2] for r in result.rejected}
        assert "injected rejection" in reasons
        # (the same *description* may still be accepted via a different
        # parent edge -- validation verdicts key the edge, not the move)
