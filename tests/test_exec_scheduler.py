"""Scheduler tests: serial/parallel equivalence on a real proof, group
ordering, timeout handling, retries, early exit, and error recording."""

import threading
import time

import pytest

from repro.exec import (
    ExecConfig, Obligation, ObligationScheduler, ResultCache, Telemetry,
    make_key,
)
from repro.lang import analyze, parse_package
from repro.prover import AutoProver, ImplementationProof

# the fixture package of tests/test_prover.py: its loop-invariant VCs
# reach the auto prover, so the proof actually schedules obligations.
SRC = """
package P is
   type Byte is mod 256;
   type Arr is array (0 .. 7) of Byte;

   procedure Invert (A : in Arr; B : out Arr)
   --# post for all K in 0 .. 7 => (B (K) = (A (K) xor 255));
   is
   begin
      for I in 0 .. 7 loop
         --# assert for all K in 0 .. I - 1 => (B (K) = (A (K) xor 255));
         B (I) := A (I) xor 255;
      end loop;
   end Invert;

   procedure Invert_Twice (A : in Arr; B : out Arr)
   --# post for all K in 0 .. 7 => (B (K) = A (K));
   is
   begin
      for I in 0 .. 7 loop
         --# assert for all K in 0 .. I - 1 => (B (K) = A (K));
         B (I) := (A (I) xor 255) xor 255;
      end loop;
   end Invert_Twice;
end P;
"""


def outcome_key(o):
    return (o.vc.subprogram, o.vc.name, o.vc.kind, o.stage,
            o.result.proved if o.result else None)


class TestSerialParallelEquivalence:
    def test_same_outcomes(self):
        typed = analyze(parse_package(SRC))
        serial = ImplementationProof(
            typed, exec=ExecConfig(jobs=1, cache=False)).run()
        parallel = ImplementationProof(
            typed, exec=ExecConfig(jobs=4, cache=False)).run()
        assert [outcome_key(o) for o in serial.outcomes] == \
               [outcome_key(o) for o in parallel.outcomes]
        assert serial.total_vcs == parallel.total_vcs
        assert serial.auto_percent == parallel.auto_percent

    def test_parallel_uses_scheduler_threads(self):
        typed = analyze(parse_package(SRC))
        t = Telemetry()
        serial = ImplementationProof(
            typed, exec=ExecConfig(jobs=1, cache=False)).run()
        parallel = ImplementationProof(
            typed, exec=ExecConfig(jobs=4, cache=False, telemetry=t)).run()
        assert [outcome_key(o) for o in parallel.outcomes] == \
               [outcome_key(o) for o in serial.outcomes]
        stats = t.stats()
        assert stats.computed.get("vc", 0) > 0
        assert stats.max_queue_depth >= 1


class TestScheduling:
    def _obligation(self, label, fn, group=None):
        return Obligation(kind="vc", label=label, thunk=fn,
                          cache_key=make_key(label), group=group)

    def test_results_in_input_order(self):
        def make(i):
            def work():
                time.sleep(0.01 * ((7 - i) % 3))  # finish out of order
                return i
            return work
        obs = [self._obligation(f"o{i}", make(i)) for i in range(8)]
        outcomes = ObligationScheduler(jobs=4, cache=False).run(obs)
        assert [o.value for o in outcomes] == list(range(8))

    def test_groups_run_serially_in_order(self):
        trace = []
        lock = threading.Lock()

        def make(tag):
            def work():
                with lock:
                    trace.append(tag)
                time.sleep(0.01)
                return tag
            return work

        obs = [self._obligation(f"g{i}", make(i), group="shared")
               for i in range(6)]
        ObligationScheduler(jobs=4, cache=False).run(obs)
        assert trace == list(range(6))

    def test_timeout_marks_timed_out_not_crash(self):
        def slow():
            time.sleep(5)
            return "late"
        obs = [self._obligation("fast", lambda: "ok"),
               self._obligation("slow", slow),
               self._obligation("after", lambda: "ok2")]
        started = time.perf_counter()
        outcomes = ObligationScheduler(
            jobs=2, cache=False, timeout_seconds=0.2).run(obs)
        assert time.perf_counter() - started < 4.0   # did not join the sleep
        assert outcomes[0].ok and outcomes[0].value == "ok"
        assert outcomes[1].status == "timed_out" and not outcomes[1].ok
        assert outcomes[2].ok and outcomes[2].value == "ok2"

    def test_retry_then_success(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("transient")
            return "finally"
        obs = [self._obligation("flaky", flaky)]
        [outcome] = ObligationScheduler(jobs=1, cache=False,
                                        retries=2).run(obs)
        assert outcome.ok and outcome.value == "finally"
        assert outcome.attempts == 3

    def test_on_error_record(self):
        def boom():
            raise ValueError("no")
        obs = [self._obligation("boom", boom),
               self._obligation("fine", lambda: 1)]
        outcomes = ObligationScheduler(jobs=1, cache=False,
                                       on_error="record").run(obs)
        assert outcomes[0].status == "errored"
        assert "no" in outcomes[0].error
        assert outcomes[1].ok

    def test_on_error_raise_default(self):
        def boom():
            raise ValueError("no")
        with pytest.raises(ValueError):
            ObligationScheduler(jobs=1, cache=False).run(
                [self._obligation("boom", boom)])

    def test_stop_on_skips_rest(self):
        calls = []

        def make(i):
            def work():
                calls.append(i)
                return i
            return work
        obs = [self._obligation(f"s{i}", make(i)) for i in range(10)]
        outcomes = ObligationScheduler(jobs=1, cache=False).run(
            obs, stop_on=lambda o: o.value == 2)
        assert calls == [0, 1, 2]
        assert [o.status for o in outcomes[3:]] == ["skipped"] * 7


class TestProofTimeout:
    def test_slow_prover_yields_undischarged(self, monkeypatch):
        """A VC whose discharge overruns the obligation timeout comes back
        ``undischarged`` -- the proof completes instead of crashing."""
        real_prove = AutoProver.prove

        def slow_prove(self, term, hypotheses=()):
            time.sleep(1.0)
            return real_prove(self, term, hypotheses)

        monkeypatch.setattr(AutoProver, "prove", slow_prove)
        typed = analyze(parse_package(SRC))
        result = ImplementationProof(
            typed, exec=ExecConfig(jobs=2, cache=False,
                                   timeout_seconds=0.1)).run()
        assert result.undischarged           # timeouts, not exceptions
        assert all(o.stage == "undischarged" for o in result.undischarged)
        assert not result.all_proved


class TestPercentile:
    """Pin the nearest-rank percentile: ``values[ceil(q * n) - 1]``.

    The previous ``int(round(...))`` rank used banker's rounding, so the
    p50 of an even-length sample flipped between the lower and upper
    middle element as ``n`` grew; these cases fail under that formula.
    """

    def test_empty(self):
        from repro.exec.telemetry import _percentile
        assert _percentile([], 0.5) == 0.0

    def test_single_value(self):
        from repro.exec.telemetry import _percentile
        assert _percentile([7.0], 0.5) == 7.0
        assert _percentile([7.0], 0.95) == 7.0

    def test_median_even_lengths_take_lower_middle(self):
        from repro.exec.telemetry import _percentile
        # Nearest-rank median of an even n is element n/2 (1-based) --
        # the lower middle, for every even n, never the upper one.
        assert _percentile([1.0, 2.0], 0.5) == 1.0
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0
        assert _percentile([float(i) for i in range(1, 7)], 0.5) == 3.0
        assert _percentile([float(i) for i in range(1, 9)], 0.5) == 4.0

    def test_median_odd_lengths_take_middle(self):
        from repro.exec.telemetry import _percentile
        assert _percentile([1.0, 2.0, 3.0], 0.5) == 2.0
        assert _percentile([float(i) for i in range(1, 6)], 0.5) == 3.0
        assert _percentile([float(i) for i in range(1, 8)], 0.5) == 4.0

    def test_p95_adjacent_sizes(self):
        from repro.exec.telemetry import _percentile
        # ceil(0.95 * n): 19 -> 19th of 19, 20 -> 19th, 21 -> 20th.
        assert _percentile([float(i) for i in range(1, 20)], 0.95) == 19.0
        assert _percentile([float(i) for i in range(1, 21)], 0.95) == 19.0
        assert _percentile([float(i) for i in range(1, 22)], 0.95) == 20.0

    def test_extremes(self):
        from repro.exec.telemetry import _percentile
        values = [float(i) for i in range(1, 11)]
        assert _percentile(values, 0.0) == 1.0    # clamped to first rank
        assert _percentile(values, 1.0) == 10.0

    def test_exact_rank_no_float_drift(self):
        from repro.exec.telemetry import _percentile
        # q * n lands exactly on an integer for many (q, n) pairs; the
        # epsilon must keep ceil from bumping the rank up.
        for n in (20, 40, 60, 100, 200):
            values = [float(i) for i in range(1, n + 1)]
            assert _percentile(values, 0.05) == float(n // 20)
            assert _percentile(values, 0.95) == float(19 * n // 20)
