"""Tests for the automated verification-refactoring planner (repro.plan)
and the PR's timing/cleanup bugfix batch."""

import os
import time

import pytest

from repro.exec import ExecConfig, ResultCache, package_fingerprint
from repro.lang import analyze, parse_package
from repro.extract.skeleton import extract_skeleton
from repro.plan import (
    AlignWithSpecification, Catalog, CatalogEntry, Planner, ScoreWeights,
    StateEvaluation, aes_catalog, candidate_token, enumerate_candidates,
    evaluate_candidate,
)

# A deliberately messy package: an unrolled loop and a working-suffix
# function name, with a clean target the reference skeleton comes from.
MESSY = """
package P is
   type Byte is mod 256;
   type Arr is array (0 .. 7) of Byte;
   function Add_B (X : in Byte; Y : in Byte) return Byte is
   begin
      return X xor Y;
   end Add_B;
   procedure Q (A : in Arr; B : out Arr) is
   begin
      B (0) := Add_B (A (0), 255);
      B (1) := Add_B (A (1), 255);
      B (2) := Add_B (A (2), 255);
      B (3) := Add_B (A (3), 255);
      B (4) := Add_B (A (4), 255);
      B (5) := Add_B (A (5), 255);
      B (6) := Add_B (A (6), 255);
      B (7) := Add_B (A (7), 255);
   end Q;
end P;
"""

TARGET = MESSY.replace("Add_B", "Add")


def reference_for(source):
    return extract_skeleton(analyze(parse_package(source)))


def make_planner(source=MESSY, reference_source=TARGET, **kwargs):
    kwargs.setdefault("goal_match", 0.999)
    kwargs.setdefault("check", "full")
    return Planner(parse_package(source), observables=["Q"],
                   reference=reference_for(reference_source), **kwargs)


class TestPlannerSearch:
    def test_discovers_rename_chain(self):
        result = make_planner().plan()
        assert result.found
        assert [s.description for s in result.steps] == \
            ["rename subprogram Add_B -> Add"]
        assert result.steps[-1].match_percent == pytest.approx(100.0)
        assert "Add_B" not in result.final_source

    def test_every_step_theorem_validated(self):
        result = make_planner().plan()
        # validate-on-pop: each chain step was replayed through an engine
        # with the semantics-preservation theorem checked.
        assert result.found
        assert result.validations >= len(result.steps)

    def test_deterministic_across_runs(self):
        first = make_planner().plan()
        second = make_planner().plan()
        assert first.found and second.found
        assert first.chain_digest == second.chain_digest
        assert [s.token for s in first.steps] == \
            [s.token for s in second.steps]

    @pytest.mark.parametrize("backend,jobs", [
        ("serial", 1), ("thread", 4), ("process", 2)])
    def test_deterministic_across_backends(self, backend, jobs):
        baseline = make_planner().plan()
        config = ExecConfig(backend=backend, jobs=jobs, cache=False)
        result = make_planner(exec=config).plan()
        assert result.found
        assert result.chain_digest == baseline.chain_digest
        assert result.final_source == baseline.final_source

    def test_rollback_on_failed_theorem(self):
        # The reference architecture has an extra Scale function only the
        # catalog moves can provide.  The "shortcut" move jumps straight
        # to a package matching 100% of the architecture -- but with a
        # corrupted Add body.  It scores strictly above every honest
        # candidate, so the search pops it first; the preservation
        # theorem must reject it, roll back, and reach the goal through
        # the rename + the honest align instead.
        scale = ("   function Scale (X : in Byte) return Byte is\n"
                 "   begin\n"
                 "      return X xor 170;\n"
                 "   end Scale;\n")
        target_plus = TARGET.replace("   procedure Q",
                                     scale + "   procedure Q")
        broken_plus = target_plus.replace("return X xor Y;",
                                          "return X xor Y xor 1;")
        shortcut = AlignWithSpecification(target_source=broken_plus)
        catalog = Catalog(entries=(
            CatalogEntry("shortcut", shortcut),
            CatalogEntry("align", AlignWithSpecification(target_plus),
                         min_match=0.75, goal=True),
        ))
        result = make_planner(reference_source=target_plus,
                              catalog=catalog, goal_match=None,
                              check="differential", trials=2).plan()
        assert result.found
        rejected_tokens = {token for token, _, _ in result.rejected}
        assert candidate_token(shortcut) in rejected_tokens
        assert all(s.token != candidate_token(shortcut)
                   for s in result.steps)
        assert "xor Y xor 1" not in result.final_source
        assert any("Add_B -> Add" in s.description for s in result.steps)
        assert result.steps[-1].entry == "align"

    def test_goal_catalog_entry_gated_and_terminal(self):
        # The align goal only fires once the match gate is passed; the
        # chain it completes still needed the rename discovered first.
        catalog = Catalog(entries=(
            CatalogEntry("align", AlignWithSpecification(TARGET),
                         min_match=0.999, goal=True),))
        result = make_planner(catalog=catalog, goal_match=None).plan()
        assert result.found
        assert result.steps[-1].origin == "catalog"
        assert result.steps[-1].entry == "align"
        assert any("Add_B -> Add" in s.description for s in result.steps)

    def test_enumeration_is_deterministic(self):
        typed = analyze(parse_package(MESSY))
        reference = reference_for(TARGET)
        first = enumerate_candidates(typed, 0.5, Catalog(), frozenset(),
                                     reference)
        second = enumerate_candidates(typed, 0.5, Catalog(), frozenset(),
                                      reference)
        assert [candidate_token(c.transformation) for c in first] == \
            [candidate_token(c.transformation) for c in second]
        assert first   # the reroll and suffix-rename sites exist


class TestScoring:
    def evaluate(self, source, probe=False):
        typed = analyze(parse_package(source))
        return StateEvaluation.from_json(evaluate_candidate(
            typed.package, package_fingerprint(typed), None,
            reference_for(TARGET), probe=probe))

    def test_score_increases_toward_the_specification(self):
        # The gradient the search climbs is the one the paper's human
        # followed: the architecture-aligned state outscores the messy
        # one, with the match ratio dominating.
        weights = ScoreWeights()
        assert self.evaluate(MESSY).score(weights) < \
            self.evaluate(TARGET).score(weights)

    def test_seeded_defect_limits_the_reachable_score(self):
        # A defect breaking the repetition pattern shrinks the best
        # reroll (only part of the run anti-unifies), so the best
        # reroll-child score from the defective program is strictly
        # below the clean one's.
        defective = MESSY.replace("B (3) := Add_B (A (3), 255);",
                                  "B (3) := Add_B (A (3), 254);")
        weights = ScoreWeights()
        reference = reference_for(TARGET)

        def best_reroll_score(source):
            typed = analyze(parse_package(source))
            fp = package_fingerprint(typed)
            best = None
            for cand in enumerate_candidates(typed, 0.0, Catalog(),
                                             frozenset(), reference):
                if type(cand.transformation).__name__ != "RerollLoop":
                    continue
                ev = StateEvaluation.from_json(evaluate_candidate(
                    typed.package, fp, cand.transformation, reference))
                if ev.applicable:
                    score = ev.static_score(weights)
                    best = score if best is None else max(best, score)
            return best

        clean = best_reroll_score(MESSY)
        broken = best_reroll_score(defective)
        assert clean is not None and broken is not None
        assert broken < clean

    def test_probe_reports_discharge_fraction(self):
        evaluation = self.evaluate(TARGET, probe=True)
        assert evaluation.probed
        assert evaluation.feasible
        assert 0.0 <= evaluation.probe_fraction <= 1.0

    def test_inapplicable_is_a_result_not_an_exception(self):
        from repro.refactor import RerollLoop
        typed = analyze(parse_package(TARGET))
        evaluation = StateEvaluation.from_json(evaluate_candidate(
            typed.package, package_fingerprint(typed),
            RerollLoop(subprogram="Q", start=0, group_size=1, count=99),
            reference_for(TARGET)))
        assert not evaluation.applicable
        assert evaluation.reason


class TestAESCatalog:
    def test_catalog_covers_the_manual_chain_moves(self):
        catalog = aes_catalog()
        names = {entry.name for entry in catalog.entries}
        assert "gf-arithmetic" in names
        assert "extract-Sub_Bytes" in names
        assert "extract-Round" in names
        goal = [e for e in catalog.entries if e.goal]
        assert [e.name for e in goal] == ["align-architecture"]
        # The terminal tidy is gated: it must be unreachable from the
        # unrolled original, where it would short-circuit the search.
        assert goal[0].min_match >= 0.9
        assert goal[0] not in catalog.proposals(0.5, frozenset())

    def test_entries_propose_at_most_once(self):
        catalog = aes_catalog()
        for entry in catalog.entries:
            proposed = {e.name for e in
                        catalog.proposals(1.0, frozenset({entry.name}))}
            assert entry.name not in proposed


# ---------------------------------------------------------------------------
# Bugfix regressions riding along with this PR
# ---------------------------------------------------------------------------

class TestHarnessMonotonicTiming:
    def test_report_timer_is_wall_clock_step_immune(self):
        # Regression: run_all timed the harness with time.time(); an NTP
        # step mid-run distorted the reported total (the same defect
        # class as serve's queue_seconds, fixed in PR 7).
        import inspect
        from repro.harness import runner
        source = inspect.getsource(runner.run_all)
        assert "time.monotonic()" in source
        assert "time.time()" not in source


class TestSweepTmpClockRobustness:
    def _tmp_file(self, cache, name, age):
        bucket = cache.disk_dir / "ab"
        bucket.mkdir(exist_ok=True)
        path = bucket / name
        path.write_text("{}")
        stamp = time.time() - age
        os.utime(path, (stamp, stamp))
        return path

    def test_ancient_orphans_are_swept(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path / "c")
        old = self._tmp_file(cache, "dead.tmp", age=7200)
        assert cache._sweep_tmp(older_than=600) == 1
        assert not old.exists()

    def test_future_dated_tmp_survives(self, tmp_path):
        # Regression: a backwards wall-clock step made fresh .tmp files
        # look ancient relative to a pre-computed cutoff; deleting them
        # races a live writer's os.replace.  Future-dated files are
        # never deleted.
        cache = ResultCache(disk_dir=tmp_path / "c")
        future = self._tmp_file(cache, "fresh.tmp", age=-3600)
        assert cache._sweep_tmp(older_than=600) == 0
        assert future.exists()

    def test_clock_step_doubles_the_grace_period(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path / "c")
        mid = self._tmp_file(cache, "mid.tmp", age=900)       # 1-2x grace
        self._tmp_file(cache, "fresh.tmp", age=-3600)         # step evidence
        # With a detected step, every age is suspect: the mid-aged file
        # survives the doubled grace period.
        assert cache._sweep_tmp(older_than=600) == 0
        assert mid.exists()
        # Without step evidence the same file is an orphan and goes.
        (cache.disk_dir / "ab" / "fresh.tmp").unlink()
        assert cache._sweep_tmp(older_than=600) == 1
        assert not mid.exists()

    def test_clear_sweeps_unconditionally(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path / "c")
        fresh = self._tmp_file(cache, "fresh.tmp", age=0)
        cache.clear()
        assert not fresh.exists()


class TestTrampolineCleanup:
    def test_close_failure_is_counted_not_hidden(self):
        # Regression: a frame whose close() raised during exception
        # unwinding was silently swallowed (bare `except: pass`); the
        # primary exception must still win, but the failure is recorded.
        from repro.logic import traversal

        def stubborn():
            try:
                yield inner()
            finally:
                raise RuntimeError("close failure")

        def inner():
            raise ValueError("primary")
            yield   # pragma: no cover

        before = traversal.close_failure_count()
        with pytest.raises(ValueError, match="primary"):
            traversal.run_trampoline(stubborn())
        assert traversal.close_failure_count() == before + 1

    def test_clean_runs_do_not_count(self):
        from repro.logic import traversal

        def doubler(n):
            if n == 0:
                return 1
            result = yield doubler(n - 1)
            return result * 2

        before = traversal.close_failure_count()
        assert traversal.run_trampoline(doubler(10)) == 1024
        assert traversal.close_failure_count() == before
