"""Extraction and implication-proof tests on a miniature cipher."""

import pytest

from repro.extract import (
    build_map, extract_skeleton, extract_specification, match_ratio,
)
from repro.implication import prove_implication
from repro.lang import analyze, parse_package
from repro.spec import SpecEvaluator, parse_theory, print_theory

# A toy "cipher": substitute through a table, then rotate the block.
CODE = """
package Toy is

   type Byte is mod 256;
   type Block is array (0 .. 3) of Byte;
   type Table is array (0 .. 255) of Byte;

   Sub_Table : constant Table := (TABLE_ENTRIES);

   function Sub_Byte (B : in Byte) return Byte is
   begin
      return Sub_Table (Integer (B));
   end Sub_Byte;

   function Sub_Block (S : in Block) return Block is
      R : Block;
   begin
      for I in 0 .. 3 loop
         R (I) := Sub_Byte (S (I));
      end loop;
      return R;
   end Sub_Block;

   function Rotate (S : in Block) return Block is
      R : Block;
   begin
      for I in 0 .. 3 loop
         R (I) := S ((I + 1) mod 4);
      end loop;
      return R;
   end Rotate;

   procedure Encrypt (Input : in Block; Output : out Block) is
      T : Block;
   begin
      T := Input;
      T := Sub_Block (T);
      Output := Rotate (T);
   end Encrypt;

end Toy;
""".replace("TABLE_ENTRIES",
            ", ".join(str((i * 7 + 3) % 256) for i in range(256)))

SPEC = """
THEORY Toy
  TYPE Byte = NAT UPTO 255
  TYPE Block = ARRAY 4 OF Byte
  CONST SubTable : ARRAY 256 OF Byte = [TABLE_ENTRIES]
  FUN SubByte (B : Byte) : Byte = SubTable[B]
  FUN SubBlock (S : Block) : Block = BUILD I : 4 . SubByte(S[I])
  FUN Rotate (S : Block) : Block = BUILD I : 4 . S[(I + 1) MOD 4]
  FUN Encrypt (Input : Block) : Block = Rotate(SubBlock(Input))
END Toy
""".replace("TABLE_ENTRIES",
            ", ".join(str((i * 7 + 3) % 256) for i in range(256)))


@pytest.fixture(scope="module")
def typed():
    return analyze(parse_package(CODE))


@pytest.fixture(scope="module")
def original():
    return parse_theory(SPEC)


class TestSkeleton:
    def test_skeleton_elements(self, typed):
        skeleton = extract_skeleton(typed)
        names = {d.name for d in skeleton.decls}
        assert {"Byte", "Block", "Sub_Table", "Sub_Byte", "Sub_Block",
                "Rotate", "Encrypt"} <= names

    def test_procedure_gets_functional_reading(self, typed):
        skeleton = extract_skeleton(typed)
        encrypt = skeleton.decl("Encrypt")
        assert len(encrypt.params) == 1
        assert encrypt.params[0][0] == "Input"


class TestMatchRatio:
    def test_ratio_high_for_aligned_code(self, typed, original):
        skeleton = extract_skeleton(typed)
        ratio = match_ratio(original, skeleton)
        # Everything matches modulo underscore/case normalization.
        assert ratio.ratio == 1.0

    def test_ratio_drops_for_optimized_names(self, original):
        optimized = analyze(parse_package("""
package Toy is
   type Byte is mod 256;
   type Block is array (0 .. 3) of Byte;
   procedure Scramble (X : in Block; Y : out Block) is
   begin
      Y (0) := X (1);
      Y (1) := X (2);
      Y (2) := X (3);
      Y (3) := X (0);
   end Scramble;
end Toy;
"""))
        skeleton = extract_skeleton(optimized)
        ratio = match_ratio(original, skeleton)
        assert ratio.ratio < 0.5


class TestExtraction:
    def test_extracted_functions(self, typed):
        result = extract_specification(typed)
        names = {d.name for d in result.theory.functions()}
        assert names == {"Sub_Byte", "Sub_Block", "Rotate", "Encrypt"}
        assert not result.skipped

    def test_extracted_spec_is_executable(self, typed):
        result = extract_specification(typed)
        ev = SpecEvaluator(result.theory)
        block = (1, 2, 3, 4)
        expected_subbed = tuple((b * 7 + 3) % 256 for b in block)
        expected = tuple(expected_subbed[(i + 1) % 4] for i in range(4))
        assert ev.call("Encrypt", [block]) == expected

    def test_extracted_spec_matches_interpreter(self, typed):
        from repro.lang import Interpreter
        result = extract_specification(typed)
        ev = SpecEvaluator(result.theory)
        interp = Interpreter(typed)
        block = [9, 100, 200, 255]
        out = interp.call_procedure("Encrypt", [block, None])["Output"]
        assert tuple(out) == ev.call("Encrypt", [tuple(block)])

    def test_extracted_spec_prints(self, typed):
        result = extract_specification(typed)
        text = print_theory(result.theory)
        assert "FUN Encrypt" in text


class TestImplication:
    def test_implication_holds(self, typed, original):
        extracted = extract_specification(typed).theory
        result = prove_implication(original, extracted)
        assert result.holds, [(o.lemma.name, o.detail) for o in result.failed]
        assert result.lemma_count == 5  # 1 table + 4 functions

    def test_leaf_lemma_exhaustive_and_composites(self, typed, original):
        extracted = extract_specification(typed).theory
        result = prove_implication(original, extracted)
        by_name = {o.lemma.name: o for o in result.outcomes}
        assert by_name["SubTable_table_eq"].evidence == "table"
        assert by_name["SubByte_eq"].evidence in ("symbolic", "exhaustive")
        # Block-domain lemmas are too big to enumerate: symbolic or sampled.
        assert by_name["Encrypt_eq"].proved

    def test_tccs_reported(self, typed, original):
        extracted = extract_specification(typed).theory
        result = prove_implication(original, extracted)
        assert result.tcc_total > 0
        assert result.tcc_unproved == 0
        assert result.tcc_subsumed > 0  # many Byte-typed signatures repeat

    def test_defective_code_fails_implication(self, original):
        bad_code = CODE.replace("R (I) := S ((I + 1) mod 4);",
                                "R (I) := S ((I + 2) mod 4);")
        typed_bad = analyze(parse_package(bad_code))
        extracted = extract_specification(typed_bad).theory
        result = prove_implication(original, extracted)
        assert not result.holds
        failed_names = {o.lemma.name for o in result.failed}
        assert "Rotate_eq" in failed_names or "Encrypt_eq" in failed_names
