"""Additional equiv coverage: the transition-semantics model and
refutation edge cases."""

import random

import pytest

from repro.equiv import (
    TransitionSemantics, differential_check, final_state, prove_equivalence,
    random_state, state_key,
)
from repro.lang import analyze, parse_package


def analyzed(src):
    return analyze(parse_package(src))


PKG = analyzed("""
package P is
   type Byte is mod 256;
   type Pair is array (0 .. 1) of Byte;
   procedure Swap (A : in out Pair) is
      T : Byte;
   begin
      T := A (0);
      A (0) := A (1);
      A (1) := T;
   end Swap;
   function Plus (X : in Byte; Y : in Byte) return Byte is
   begin
      return X + Y;
   end Plus;
end P;
""")


class TestModel:
    def test_transition_semantics_of(self):
        ts = TransitionSemantics.of(PKG.signatures["Swap"])
        assert ts.init_vars == ("A",)
        assert ts.final_vars == ("A",)
        tf = TransitionSemantics.of(PKG.signatures["Plus"])
        assert tf.final_vars == ("Result",)

    def test_final_state_inout(self):
        out = final_state(PKG, "Swap", {"A": [3, 9]})
        assert out["A"] == [9, 3]

    def test_state_key_freezes_arrays(self):
        assert state_key({"A": [1, 2]}) == state_key({"A": [1, 2]})
        assert state_key({"A": [1, 2]}) != state_key({"A": [2, 1]})

    def test_random_state_respects_types(self):
        rng = random.Random(3)
        state = random_state(PKG, PKG.signatures["Plus"], rng)
        assert set(state) == {"X", "Y"}
        assert all(0 <= v <= 255 for v in state.values())


class TestEquivalenceEdges:
    def test_inout_procedure_equivalence(self):
        other = analyzed("""
package P is
   type Byte is mod 256;
   type Pair is array (0 .. 1) of Byte;
   procedure Swap (A : in out Pair) is
   begin
      A (0) := A (0) xor A (1);
      A (1) := A (0) xor A (1);
      A (0) := A (0) xor A (1);
   end Swap;
end P;
""")
        theorem = prove_equivalence(PKG, "Swap", other, "Swap")
        assert theorem.holds

    def test_signature_mismatch_rejected(self):
        with pytest.raises(ValueError, match="signatures differ"):
            differential_check(PKG, "Swap", PKG, "Plus")

    def test_sampler_override(self):
        # With a sampler the check is relative to the sampled domain.
        bad = analyzed("""
package P is
   type Byte is mod 256;
   function Plus (X : in Byte; Y : in Byte) return Byte is
   begin
      if X = 255 then
         return 0;
      end if;
      return X + Y;
   end Plus;
end P;
""")
        sampler = lambda rng: {"X": rng.randrange(0, 200),
                               "Y": rng.randrange(256)}
        result = differential_check(PKG, "Plus", bad, "Plus", trials=32,
                                    sampler=sampler)
        assert result.equivalent  # the defect lives outside the domain
        full = prove_equivalence(PKG, "Plus", bad, "Plus")
        assert full.status == "refuted"  # but not outside the full domain
