"""Additional MiniPVS coverage: printer details, evaluator memoization,
TCC kinds, and the FIPS theory's own checkability."""

import pytest

from repro.spec import (
    SpecEvaluator, check_theory, discharge_tccs, parse_theory,
    print_theory, spec_line_count,
)
from repro.spec import ast as s


class TestFipsTheoryChecks:
    def test_fips_theory_tccs_all_discharge(self):
        from repro.aes.fips197 import fips197_theory
        theory = fips197_theory()
        check = check_theory(theory)
        assert check.tccs, "the FIPS theory must generate TCCs"
        kinds = {t.kind for t in check.tccs}
        assert "index" in kinds
        assert "termination" in kinds  # the KeyWord recursions
        report = discharge_tccs(theory, check.tccs)
        assert report.all_discharged, \
            [(t.kind, t.function) for t in report.unproved][:5]
        assert report.subsumed > 0

    def test_fips_theory_line_count(self):
        from repro.aes.fips197 import fips197_theory
        # Paper's PVS original was 811 lines; ours is one compact theory.
        assert 120 < spec_line_count(fips197_theory()) < 1000


class TestEvaluatorDetails:
    def test_memoization_makes_recursion_linear(self):
        theory = parse_theory("""
THEORY Fib
  REC FUN Fib (N : NAT UPTO 25) : NAT MEASURE N =
      IF N <= 1 THEN N ELSE Fib(N - 1) + Fib(N - 2) ENDIF
END Fib
""")
        ev = SpecEvaluator(theory, max_steps=20_000)
        assert ev.call("Fib", [25]) == 75025  # explodes without the memo

    def test_let_shadowing(self):
        theory = parse_theory("""
THEORY L
  FUN F (X : NAT) : NAT = LET X = X + 1 IN LET X = X * 2 IN X
END L
""")
        assert SpecEvaluator(theory).call("F", [3]) == 8

    def test_arraylit_evaluates(self):
        items = tuple(s.Num(value=v) for v in (5, 6, 7))
        lit = s.ArrayLit(items=items)
        theory = s.Theory(name="T", decls=(
            s.FunDef(name="F", params=(), return_type=s.ArrayTypeS(
                size=3, elem=s.NatType()), body=lit),))
        assert SpecEvaluator(theory).call("F", []) == (5, 6, 7)


class TestPrinterDetails:
    def test_long_table_wraps(self):
        entries = ", ".join(str(i) for i in range(256))
        theory = parse_theory(
            f"THEORY W\n  CONST T : ARRAY 256 OF NAT UPTO 255 = [{entries}]\n"
            f"END W")
        text = print_theory(theory)
        assert max(len(line) for line in text.splitlines()) < 100

    def test_arraylit_prints(self):
        lit = s.ArrayLit(items=(s.Num(value=1), s.Var(name="x")))
        from repro.spec import print_spec_expr
        assert print_spec_expr(lit) == "{| 1, x |}"
