"""Rewriter, rules, printer and measurement unit tests."""

import pytest

from repro.logic import (
    FALSE, TRUE, Rewriter, RewriteBudgetExceeded, add, band, conj,
    decide_relation, default_rules, disj, eq, forall, implies, intc,
    interval_of, ite, le, lt, mk, modi, mul, neg, render, render_full,
    rule_families, select, shr, store, sub, var, xor,
)


class TestRewriter:
    def test_raw_terms_are_canonicalized(self):
        # Shape-preserving substitution leaves raw nodes; the rewriter must
        # fold them (regression: (I + 1) + -1 failed to fold).
        raw = mk("add", (mk("add", (var("i"), intc(1))), intc(-1)))
        rewriter = Rewriter(default_rules())
        assert rewriter.normalize(raw) is var("i")

    def test_interval_rule_discharges_bounds(self):
        rewriter = Rewriter(default_rules())
        goal = le(band(var("x"), intc(255)), intc(255))
        assert rewriter.normalize(goal) is TRUE

    def test_vacuous_forall_rule(self):
        rewriter = Rewriter(default_rules())
        k = var("k?")
        body = implies(conj(le(intc(0), k), le(k, intc(-1))),
                       eq(select(var("a"), k), intc(0)))
        assert rewriter.normalize(forall(["k?"], body)) is TRUE

    def test_not_relation_rule(self):
        rewriter = Rewriter(default_rules())
        assert rewriter.normalize(neg(lt(var("a"), var("b")))) is \
            le(var("b"), var("a"))

    def test_budget_exceeded(self):
        rewriter = Rewriter(default_rules(), max_work=5)
        big = xor(*[band(var(f"x{i}"), intc(255)) for i in range(50)])
        with pytest.raises(RewriteBudgetExceeded):
            rewriter.normalize(le(big, intc(10**9)))

    def test_work_accounting(self):
        rewriter = Rewriter(default_rules())
        rewriter.normalize(le(modi(var("x"), intc(16)), intc(15)))
        assert rewriter.stats.work > 0
        assert rewriter.stats.rules_applied >= 1

    def test_family_exclusion(self):
        rules = default_rules(exclude_families=("bounds",))
        rewriter = Rewriter(rules)
        goal = le(band(var("x"), intc(255)), intc(255))
        assert rewriter.normalize(goal) is not TRUE

    def test_rule_families_complete(self):
        assert set(rule_families()) == {"bounds", "boolean", "equality",
                                        "arrays"}


class TestIntervals:
    def test_shr_of_masked(self):
        t = shr(band(var("x"), intc(0xFFFF)), intc(8))
        assert interval_of(t) == (0, 0xFF)

    def test_mod_literal(self):
        assert interval_of(modi(var("x"), intc(4))) == (0, 3)

    def test_decide_relation_with_env(self):
        env = {"i": (0, 9)}
        assert decide_relation(le(var("i"), intc(9)), env=env) is True
        assert decide_relation(lt(intc(10), var("i")), env=env) is False

    def test_hook_overrides(self):
        hook = lambda t: (0, 7) if t.op == "var" and t.value == "b" else None
        assert decide_relation(le(var("b"), intc(7)), hook=hook) is True


class TestRender:
    def test_infix_forms(self):
        # Commutative arguments are ordered by interning id, which depends
        # on construction history; accept either order.
        assert render_full(add(var("x"), intc(1))) in ("(x + 1)", "(1 + x)")
        assert render_full(select(var("a"), intc(3))) == "a[3]"
        assert render_full(ite(var("p"), intc(1), intc(2))) == \
            "(if p then 1 else 2)"
        text = render_full(store(var("a"), intc(0), intc(9)))
        assert text == "store(a, 0, 9)"

    def test_forall_renders(self):
        q = forall(["k?"], lt(var("k?"), var("n")))
        assert render_full(q) == "(forall k?: (k? < n))"

    def test_budget_truncates(self):
        big = xor(*[var(f"verylongname{i}") for i in range(100)])
        text = render(big, max_chars=50)
        assert len(text) <= 60
        assert text.endswith("…")

    def test_deep_term_renders_iteratively(self):
        t = var("x")
        for _ in range(5000):  # deeper than the default recursion limit
            t = mk("not", (t,))  # raw: the builder would fold double negation
        assert render(t, max_chars=100).endswith("…")
