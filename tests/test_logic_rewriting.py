"""Rewriter, rules, printer and measurement unit tests, plus the
head-op-indexing differential gate (DESIGN.md section 13): indexed and
linear-scan rewriting must be bit-identical on the full AES VC corpus."""

from functools import lru_cache

import pytest

from repro.logic import (
    FALSE, TRUE, NormalizationCache, Rewriter, RewriteBudgetExceeded, add,
    band, conj, decide_relation, default_rules, disj, eq, fingerprint,
    forall, implies, intc, interval_of, ite, le, lt, mk, modi, mul, neg,
    render, render_full, rule_families, select, shr, store, sub, var, xor,
)


class TestRewriter:
    def test_raw_terms_are_canonicalized(self):
        # Shape-preserving substitution leaves raw nodes; the rewriter must
        # fold them (regression: (I + 1) + -1 failed to fold).
        raw = mk("add", (mk("add", (var("i"), intc(1))), intc(-1)))
        rewriter = Rewriter(default_rules())
        assert rewriter.normalize(raw) is var("i")

    def test_interval_rule_discharges_bounds(self):
        rewriter = Rewriter(default_rules())
        goal = le(band(var("x"), intc(255)), intc(255))
        assert rewriter.normalize(goal) is TRUE

    def test_vacuous_forall_rule(self):
        rewriter = Rewriter(default_rules())
        k = var("k?")
        body = implies(conj(le(intc(0), k), le(k, intc(-1))),
                       eq(select(var("a"), k), intc(0)))
        assert rewriter.normalize(forall(["k?"], body)) is TRUE

    def test_not_relation_rule(self):
        rewriter = Rewriter(default_rules())
        assert rewriter.normalize(neg(lt(var("a"), var("b")))) is \
            le(var("b"), var("a"))

    def test_budget_exceeded(self):
        rewriter = Rewriter(default_rules(), max_work=5)
        big = xor(*[band(var(f"x{i}"), intc(255)) for i in range(50)])
        with pytest.raises(RewriteBudgetExceeded):
            rewriter.normalize(le(big, intc(10**9)))

    def test_work_accounting(self):
        rewriter = Rewriter(default_rules())
        rewriter.normalize(le(modi(var("x"), intc(16)), intc(15)))
        assert rewriter.stats.work > 0
        assert rewriter.stats.rules_applied >= 1

    def test_family_exclusion(self):
        rules = default_rules(exclude_families=("bounds",))
        rewriter = Rewriter(rules)
        goal = le(band(var("x"), intc(255)), intc(255))
        assert rewriter.normalize(goal) is not TRUE

    def test_rule_families_complete(self):
        assert set(rule_families()) == {"bounds", "boolean", "equality",
                                        "arrays"}


class TestIntervals:
    def test_shr_of_masked(self):
        t = shr(band(var("x"), intc(0xFFFF)), intc(8))
        assert interval_of(t) == (0, 0xFF)

    def test_mod_literal(self):
        assert interval_of(modi(var("x"), intc(4))) == (0, 3)

    def test_decide_relation_with_env(self):
        env = {"i": (0, 9)}
        assert decide_relation(le(var("i"), intc(9)), env=env) is True
        assert decide_relation(lt(intc(10), var("i")), env=env) is False

    def test_hook_overrides(self):
        hook = lambda t: (0, 7) if t.op == "var" and t.value == "b" else None
        assert decide_relation(le(var("b"), intc(7)), hook=hook) is True


class TestRender:
    def test_infix_forms(self):
        # Commutative arguments are ordered by interning id, which depends
        # on construction history; accept either order.
        assert render_full(add(var("x"), intc(1))) in ("(x + 1)", "(1 + x)")
        assert render_full(select(var("a"), intc(3))) == "a[3]"
        assert render_full(ite(var("p"), intc(1), intc(2))) == \
            "(if p then 1 else 2)"
        text = render_full(store(var("a"), intc(0), intc(9)))
        assert text == "store(a, 0, 9)"

    def test_forall_renders(self):
        q = forall(["k?"], lt(var("k?"), var("n")))
        assert render_full(q) == "(forall k?: (k? < n))"

    def test_budget_truncates(self):
        big = xor(*[var(f"verylongname{i}") for i in range(100)])
        text = render(big, max_chars=50)
        assert len(text) <= 60
        assert text.endswith("…")

    def test_deep_term_renders_iteratively(self):
        t = var("x")
        for _ in range(5000):  # deeper than the default recursion limit
            t = mk("not", (t,))  # raw: the builder would fold double negation
        assert render(t, max_chars=100).endswith("…")


@lru_cache(maxsize=1)
def _aes_corpus():
    """The full refactored-AES VC corpus: (typed, [(subprogram, terms)])."""
    from repro.aes import refactored_package
    from repro.vcgen import generate_obligations

    typed = refactored_package()
    corpus = []
    for sp in typed.package.subprograms:
        obls = generate_obligations(typed, typed.signatures[sp.name])
        if obls:
            corpus.append((sp.name, [o.term for o in obls]))
    return typed, corpus


class TestHeadOpIndexing:
    """The differential gate: head-op dispatch is a pure pruning of rules
    that could not have fired, so it must be *invisible* -- identical
    normal forms, identical memo tables, identical RewriteStats."""

    def test_every_rule_family_declares_ops(self):
        for family, rules in rule_families().items():
            for rule in rules:
                assert rule.ops, \
                    f"{family}/{rule.name} must declare its root operators"

    def test_env_flag_disables_indexing(self, monkeypatch):
        monkeypatch.setenv("REPRO_REWRITE_INDEX", "0")
        assert not Rewriter(default_rules()).indexed
        monkeypatch.setenv("REPRO_REWRITE_INDEX", "1")
        assert Rewriter(default_rules()).indexed
        # an explicit argument beats the environment
        monkeypatch.setenv("REPRO_REWRITE_INDEX", "0")
        assert Rewriter(default_rules(), index=True).indexed

    def test_full_aes_corpus_indexed_identical_to_linear(self):
        from repro.vcgen.simplifier import TypeBoundHook

        typed, corpus = _aes_corpus()
        total_hits = total_skipped = 0
        for name, terms in corpus:
            hook = TypeBoundHook(typed, name)
            lin = Rewriter(default_rules(hook=hook), index=False)
            idx = Rewriter(default_rules(hook=hook), index=True)
            ref = [lin.normalize(t) for t in terms]
            got = [idx.normalize(t) for t in terms]
            assert all(a is b for a, b in zip(ref, got))
            assert lin._memo == idx._memo
            assert lin.stats == idx.stats          # nodes/rewrites/work
            assert lin.stats.work == idx.stats.work
            assert lin.stats.index_hits == 0
            total_hits += idx.stats.index_hits
            total_skipped += idx.stats.index_skipped_rules
        # the gate is vacuous unless indexing actually pruned something
        assert total_hits > 0 and total_skipped > 0

    def test_full_aes_corpus_shared_cache_identical_normal_forms(self):
        """Per-VC fresh rewriters (the prover's protocol) with the
        cross-obligation cache: same normal forms as the linear scan."""
        from repro.vcgen.simplifier import TypeBoundHook

        typed, corpus = _aes_corpus()
        cache = NormalizationCache()
        cross_hits = 0
        for name, terms in corpus:
            hook = TypeBoundHook(typed, name)
            scope = cache.scope(f"gate|{name}|")
            for t in terms:
                ref = Rewriter(default_rules(hook=hook),
                               index=False).normalize(t)
                rw = Rewriter(default_rules(hook=hook), shared=scope)
                assert rw.normalize(t) is ref
                cross_hits += rw.stats.cross_vc_hits
        assert cross_hits > 0
        assert cache.hits == cross_hits
        assert len(cache) > 0

    def test_examiner_verdicts_identical_without_indexing(self, monkeypatch):
        """Whole-pipeline differential: examination (vcgen + simplify)
        with indexing disabled via REPRO_REWRITE_INDEX must reach the
        same discharge verdicts and the same simplified normal forms
        for every AES VC."""
        from repro.aes.annotations import annotated_package
        from repro.vcgen import Examiner

        def signature(report):
            return [
                (a.name, vc.name, vc.kind, vc.discharged_by_simplifier,
                 fingerprint(vc.simplified.simplified))
                for a in report.per_subprogram.values() for vc in a.vcs
            ]

        typed = annotated_package()
        indexed = Examiner(typed).examine()
        monkeypatch.setenv("REPRO_REWRITE_INDEX", "0")
        linear = Examiner(typed).examine()
        assert signature(indexed) == signature(linear)
        assert indexed.discharged_count == linear.discharged_count
        assert indexed.work_units == linear.work_units
        assert indexed.index_hits > 0
        assert linear.index_hits == 0

    def test_cross_backend_verdicts_identical(self, monkeypatch):
        """Serial, thread and process backends (indexed, with warm-norm
        shipping on the process path) and the linear-scan serial
        reference all produce identical per-VC verdicts."""
        from repro.exec import ExecConfig
        from repro.prover import ImplementationProof
        from tests.test_exec_cache import small_package

        def run(backend, jobs=2):
            return ImplementationProof(
                small_package(),
                exec=ExecConfig(jobs=jobs, backend=backend,
                                cache=False)).run()

        def signature(result):
            return [(o.vc.subprogram, o.vc.name, o.vc.kind, o.stage,
                     o.result.proved if o.result else None)
                    for o in result.outcomes]

        serial = run("serial", jobs=1)
        thread = run("thread")
        process = run("process")
        monkeypatch.setenv("REPRO_REWRITE_INDEX", "0")
        linear = run("serial", jobs=1)
        assert signature(thread) == signature(serial)
        assert signature(process) == signature(serial)
        assert signature(linear) == signature(serial)
        assert linear.auto_percent == serial.auto_percent
