"""Section 6.2.3: the implementation proof.

Paper: 306 VCs, 86.6% discharged automatically, 15 of 25 functions fully
automatic, the remainder discharged interactively with short scripts, max
VC needing human intervention 126 lines.  We assert the same shape: a
large majority automatic, the rest closed by scripts, none undischarged.
"""

from repro.harness.tables import implementation_proof_stats


def bench_implementation_proof(benchmark):
    result = benchmark.pedantic(implementation_proof_stats,
                                rounds=1, iterations=1)
    subprograms = {o.vc.subprogram for o in result.outcomes}
    auto_sps = result.fully_automatic_subprograms()
    print()
    print(f"total VCs {result.total_vcs}; automatic "
          f"{result.auto_discharged} ({result.auto_percent:.1f}%); "
          f"interactive {result.interactive_discharged}; "
          f"undischarged {len(result.undischarged)}")
    print(f"fully automatic subprograms: {len(auto_sps)}/{len(subprograms)} "
          f"(paper: 15/25)")
    print(f"max interactive VC length: "
          f"{result.max_interactive_vc_lines} lines (paper: 126)")

    assert result.feasible
    assert result.total_vcs > 250            # paper: 306
    assert 80.0 <= result.auto_percent < 100.0   # paper: 86.6%
    assert result.interactive_discharged > 0
    assert not result.undischarged
    assert len(auto_sps) >= len(subprograms) // 2
