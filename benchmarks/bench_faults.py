"""Fault-tolerance benchmark: the full AES implementation proof under
injected faults (DESIGN.md §12).

A clean serial run is the baseline; a thread run absorbs injected
transient raises through the retry policy; a process run additionally
survives worker-killing crashes (pool respawn + solo re-verification)
and stalls.  The gate: all three produce bit-identical per-VC outcomes
-- fault tolerance must never change a verdict, only the road taken to
it -- and the telemetry failure taxonomy must show the faults genuinely
fired and were genuinely absorbed (no quarantines, no errors).

Check mode (``REPRO_BENCH_CHECK=1``, used by CI) caps ``jobs`` at the
runner's core count; the differential gate always runs in full.
"""

import os
import tempfile
import time

from repro.aes.annotations import annotated_package
from repro.aes.proof_scripts import aes_proof_scripts
from repro.exec import ExecConfig, RetryPolicy, Telemetry
from repro.prover import ImplementationProof

from tests.test_exec_faults import _inject

CHECK_MODE = os.environ.get("REPRO_BENCH_CHECK", "") not in ("", "0")

#: Fast backoff so the chaos run measures recovery, not sleeping.
RETRY = RetryPolicy(retries=2, base_delay=0.001, max_delay=0.01)


def _vc_outcomes(result):
    return [(o.vc.subprogram, o.vc.name, o.vc.kind, o.stage,
             o.result.proved if o.result else None,
             o.result.method if o.result else None)
            for o in result.outcomes]


def _transient(i, ob):
    # recoverable on every backend: a transient raise on a sparse,
    # deterministic schedule, absorbed by the retry policy
    return ("raise",) if i % 11 == 1 else ()


def _hostile(i, ob):
    # process-only extras on top of the transients: worker-killing
    # crashes and stalls on their own sparse schedules
    if i % 11 == 1:
        return ("raise",)
    if i % 61 == 3:
        return ("crash",)
    if i % 29 == 5:
        return ("stall",)
    return ()


def bench_chaos_gate(benchmark):
    typed = annotated_package()
    scripts = aes_proof_scripts()
    jobs = min(4, os.cpu_count() or 1) if CHECK_MODE else 4

    def run(backend, n, planner):
        telemetry = Telemetry()
        state = tempfile.mkdtemp(prefix="repro-chaos-")
        t0 = time.perf_counter()
        with _inject(state, planner):
            result = ImplementationProof(
                typed, scripts=scripts,
                exec=ExecConfig(jobs=n, backend=backend, cache=False,
                                retries=RETRY, telemetry=telemetry)).run()
        return result, telemetry.stats(), time.perf_counter() - t0

    serial, _, serial_s = benchmark.pedantic(
        lambda: run("serial", 1, lambda i, ob: ()), rounds=1, iterations=1)
    thread, thread_stats, thread_s = run("thread", jobs, _transient)
    process, process_stats, process_s = run("process", jobs, _hostile)

    print()
    print(f"serial (clean)       {serial_s:.1f} s "
          f"({serial.total_vcs} VCs, {serial.auto_percent:.1f}% auto)")
    print(f"thread under faults  {thread_s:.1f} s "
          f"(retried-ok {thread_stats.retried_ok})")
    print(f"process under chaos  {process_s:.1f} s "
          f"(crashes {process_stats.crashes}, "
          f"retried-ok {process_stats.retried_ok}, "
          f"quarantined {process_stats.quarantined})")

    # The gate: faults never change a verdict.
    assert _vc_outcomes(thread) == _vc_outcomes(serial)
    assert _vc_outcomes(process) == _vc_outcomes(serial)
    assert process.auto_percent == serial.auto_percent
    # ...and the faults really happened and were really absorbed.
    assert thread_stats.retried_ok >= 1
    assert process_stats.crashes >= 1
    assert process_stats.retried_ok >= 1
    assert process_stats.quarantined == 0
    assert process_stats.errors == 0
