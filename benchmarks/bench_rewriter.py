"""Rewriter benchmark: iterative engine vs the old recursive normalize.

Two workloads:

* the full refactored-AES VC corpus (the realistic case -- shallow, wide,
  heavily shared terms), asserting the iterative engine produces
  bit-identical terms and :class:`RewriteStats` at no significant slowdown;
* a deep add/mask chain (the crash-class case), where the recursive
  baseline needs its recursion limit raised ~3x the term depth and dies on
  a small thread stack, while the iterative engine is depth-oblivious.

The recursive baseline is a verbatim copy of the seed's ``normalize``; it
lives here (and in ``tests/test_stack_safety.py``) only -- production code
must not depend on interpreter recursion depth.
"""

import sys
import time

from repro.aes import refactored_package
from repro.logic import Rewriter, add, band, default_rules, intc, var
from repro.logic.rewriter import _MAX_FIXPOINT_ITERS
from repro.logic.substitute import rebuild_smart
from repro.vcgen import generate_obligations
from repro.vcgen.simplifier import TypeBoundHook

#: The recursive baseline must not be >25% faster than the iterative
#: engine on the realistic corpus (i.e. iterative is "no slower" modulo
#: timer noise on sub-second workloads).
_SLOWDOWN_TOLERANCE = 1.25

_DEEP_N = 4000  # chain depth 8001: far beyond any default recursion limit


class _RecursiveRewriter(Rewriter):
    """The seed's recursive ``normalize``, verbatim (baseline only)."""

    def normalize(self, term):
        memo = self._memo
        hit = memo.get(term._id)
        if hit is not None:
            return hit
        self._charge(nodes=1)
        if term.args:
            new_args = tuple(self.normalize(a) for a in term.args)
            current = rebuild_smart(term.op, new_args, term.value)
            if current is not term and current._id in memo:
                memo[term._id] = memo[current._id]
                return memo[term._id]
        else:
            current = term
        for _ in range(_MAX_FIXPOINT_ITERS):
            replacement = self._apply_one(current)
            if replacement is None:
                break
            if replacement._id in memo:
                current = memo[replacement._id]
            elif replacement.args and any(
                a._id not in memo or memo[a._id] is not a
                for a in replacement.args
            ):
                current = self.normalize(replacement)
            else:
                current = replacement
        else:
            self._charge(exhausted=1)
        memo[term._id] = current
        memo[current._id] = current
        return current


def _corpus():
    typed = refactored_package()
    out = []
    for sp in typed.package.subprograms:
        obls = generate_obligations(typed, typed.signatures[sp.name])
        if obls:
            out.append((sp.name, [o.term for o in obls]))
    return typed, out


def _normalize_corpus(typed, corpus, rewriter_cls):
    results = []
    stats = []
    for name, terms in corpus:
        rw = rewriter_cls(default_rules(hook=TypeBoundHook(typed, name)))
        results.extend(rw.normalize(t) for t in terms)
        stats.append(rw.stats)
    return results, stats


def _deep_chain(n):
    t = var("x")
    for _ in range(n):
        t = band(add(t, intc(1)), intc(255))
    return t


def bench_rewriter_iterative_vs_recursive(benchmark):
    typed, corpus = _corpus()
    vc_count = sum(len(terms) for _, terms in corpus)

    # Warm the interning table so neither timing pays construction costs.
    _normalize_corpus(typed, corpus, Rewriter)

    t0 = time.perf_counter()
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 100_000))
    try:
        ref_results, ref_stats = _normalize_corpus(
            typed, corpus, _RecursiveRewriter)
    finally:
        sys.setrecursionlimit(old_limit)
    recursive_s = time.perf_counter() - t0

    new_results, new_stats = benchmark.pedantic(
        lambda: _normalize_corpus(typed, corpus, Rewriter),
        rounds=3, iterations=1)

    t0 = time.perf_counter()
    _normalize_corpus(typed, corpus, Rewriter)
    iterative_s = time.perf_counter() - t0

    # The deep chain: iterative handles a depth the recursive baseline
    # cannot touch without a raised limit (and not at all on the small
    # fixed stacks of scheduler worker threads).
    deep = _deep_chain(_DEEP_N)
    t0 = time.perf_counter()
    deep_normal = Rewriter(default_rules()).normalize(deep)
    deep_s = time.perf_counter() - t0
    failed_at_default_limit = False
    try:
        _RecursiveRewriter(default_rules()).normalize(deep)
    except RecursionError:
        failed_at_default_limit = True

    print()
    print(f"corpus           {vc_count} VCs over {len(corpus)} subprograms")
    print(f"recursive        {recursive_s * 1000:.1f} ms")
    print(f"iterative        {iterative_s * 1000:.1f} ms "
          f"({iterative_s / recursive_s:.2f}x recursive)")
    print(f"deep chain       depth {2 * _DEEP_N + 1}: iterative "
          f"{deep_s * 1000:.1f} ms; recursive raises RecursionError "
          f"at the default limit ({sys.getrecursionlimit()})")

    # Differential gate: identical terms, bit-identical stats.
    assert all(n is r for n, r in zip(new_results, ref_results))
    assert new_stats == ref_stats
    assert deep_normal is not None
    assert failed_at_default_limit
    # Perf gate: iterative no slower than recursive (modulo noise).
    assert iterative_s <= recursive_s * _SLOWDOWN_TOLERANCE, (
        f"iterative normalize {iterative_s:.3f}s vs recursive "
        f"{recursive_s:.3f}s exceeds {_SLOWDOWN_TOLERANCE}x tolerance")
