"""Figure 2(c)/(d)/(e): SPARK-substitute analysis time, generated VC
size, and simplified VC size across the transformation blocks.

Paper shape: the original unrolled program is *infeasible* (the tools ran
out of resources); block 1 (loops re-rolled) is feasible but extreme
(51.16 MB generated VCs, 7h23m); the fully refactored program is small and
fast (1.90 MB, 1m42s).  We assert exactly that arc: infeasible at block 0,
a feasible outlier at block 1 (orders of magnitude above the final), and a
small, fast final block.
"""

from repro.harness.figures import figure2


def bench_figure2_vc_metrics(benchmark):
    measurements = benchmark.pedantic(
        lambda: figure2(upto=14), rounds=1, iterations=1)

    block0, block1, final = measurements[0], measurements[1], \
        measurements[-1]

    # Figure 2(c)/(d): the un-refactored program exhausts resources.
    assert not block0.feasible

    # Block 1 is the feasible outlier: huge generated VCs, long analysis.
    assert block1.feasible
    assert block1.generated_mb > 10.0
    assert block1.generated_mb > 50 * final.generated_mb
    assert block1.work_units > 20 * final.work_units

    # Figure 2(e): simplification reduces VC text by orders of magnitude.
    assert block1.simplified_mb < block1.generated_mb / 100

    # The final program analyzes quickly and every later feasible block
    # stays within an order of magnitude of it.
    assert final.feasible
    assert final.max_vc_lines < 2000
    for m in measurements[2:]:
        assert m.feasible

    print()
    print(f"block 0: infeasible (paper: infeasible)")
    print(f"block 1: {block1.generated_mb:.2f} MB generated / "
          f"{block1.simplified_mb:.4f} MB simplified / "
          f"{block1.simulated_seconds:.0f} simulated s "
          f"(paper: 51.16 MB / 2.59 MB / 26635 s)")
    print(f"final  : {final.generated_mb:.2f} MB / "
          f"{final.simplified_mb:.4f} MB / "
          f"{final.simulated_seconds:.0f} simulated s "
          f"(paper: 1.90 MB / 0.086 MB / 102 s)")
