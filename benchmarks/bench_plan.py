"""Automated-planner benchmark: discover the AES refactoring chain, twice
(DESIGN.md section 17).

The acceptance claim of ``repro.plan`` has three legs:

* **discovery** -- from the optimized AES and the FIPS-197 theory, the
  search finds, without human ordering input, a chain of refactorings in
  which every accepted edge carries a semantics-preservation theorem
  over the observables (``Cipher``/``Inv_Cipher``);
* **determinism** -- the chain digest, step tokens, and final source are
  bit-identical between the serial backend and the process farm (the
  planner's scoring is wall-clock free and its ordering is seeded, so
  the farm may only change *when* evaluations run, never what wins);
* **provability** -- the discovered final program, carried through the
  annotation table and the implementation proof, auto-discharges at
  least ``_MIN_AUTO_PERCENT`` of its VCs (the paper's figure-3 floor:
  93.6%).

Results are written to ``BENCH_pr9.json`` at the repo root
(``bench-plan/v1``).  Runnable standalone
(``python benchmarks/bench_plan.py [--check]``) or under pytest.  The
identity gates are asserted unconditionally; the auto-discharge floor is
enforced under ``--check`` / ``REPRO_BENCH_CHECK=1`` and advisory
otherwise.
"""

import json
import os
import sys
import time
from pathlib import Path

from repro.aes.annotations import build_annotated
from repro.aes.proof_scripts import aes_proof_scripts
from repro.aes.refactored import refactored_source
from repro.exec import ExecConfig
from repro.lang import parse_package, print_package
from repro.plan import plan_aes
from repro.prover import ImplementationProof

CHECK_MODE = os.environ.get("REPRO_BENCH_CHECK", "") not in ("", "0")

#: The discovered program must auto-discharge at least this percentage
#: of its implementation-proof VCs (the manual chain's figure-3 floor).
#: Compared at the one-decimal precision the figure is stated at:
#: 437/467 VCs *is* the manual chain's 93.6%, not a miss by 0.02.
_MIN_AUTO_PERCENT = 93.6

#: Process-farm width for the second discovery run.
_FARM_JOBS = max(2, min(8, (os.cpu_count() or 2) - 1))

_OUT = Path(__file__).resolve().parent.parent / "BENCH_pr9.json"


def _discover(label, config):
    t0 = time.perf_counter()
    result = plan_aes(trials=2, exec=config)
    seconds = time.perf_counter() - t0
    assert result.found, f"{label}: planner did not reach the goal"
    assert result.validations >= result.step_count, \
        f"{label}: chain steps missing theorem validation"
    return result, seconds


def _summary(result, seconds):
    ev = result.final_evaluation
    return {
        "seconds": round(seconds, 1),
        "steps": result.step_count,
        "expansions": result.expansions,
        "evaluations": result.evaluations,
        "validations": result.validations,
        "rejected": len(result.rejected),
        "final_match_percent": round(100.0 * ev.match_fraction, 1),
    }


def run_plan_bench(check: bool):
    serial, serial_s = _discover(
        "serial", ExecConfig(jobs=1, backend="serial", cache=False))
    farm, farm_s = _discover(
        "farm", ExecConfig(jobs=_FARM_JOBS, backend="process", cache=False))

    # Determinism: bit-identical discovery across backends.
    assert serial.chain_digest == farm.chain_digest, \
        "chain digest differs between serial and process backends"
    assert [s.token for s in serial.steps] == \
        [s.token for s in farm.steps], "step sequences differ"
    assert serial.final_source == farm.final_source, \
        "final programs differ"

    reached_reference = serial.final_source == \
        print_package(parse_package(refactored_source()))

    # Provability of the discovered program: annotation table +
    # implementation proof, exactly the manual pipeline's final leg.
    typed = build_annotated(serial.final_source)
    t0 = time.perf_counter()
    proof = ImplementationProof(
        typed, scripts=aes_proof_scripts(),
        exec=ExecConfig(jobs=1, backend="serial", cache=False)).run()
    proof_s = time.perf_counter() - t0
    auto = proof.auto_percent

    payload = {
        "schema": "bench-plan/v1",
        "check_mode": check,
        "min_auto_percent": _MIN_AUTO_PERCENT,
        "chain_digest": serial.chain_digest,
        "identical_across_backends": True,
        "reached_reference_source": reached_reference,
        "farm_jobs": _FARM_JOBS,
        "serial": _summary(serial, serial_s),
        "farm": _summary(farm, farm_s),
        "steps": [{"description": s.description, "origin": s.origin,
                   "match_percent": round(s.match_percent, 1)}
                  for s in serial.steps],
        "proof": {
            "total_vcs": proof.total_vcs,
            "auto_percent": round(auto, 2),
            "seconds": round(proof_s, 1),
        },
    }
    _OUT.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"discovery         serial {serial_s:.0f} s "
          f"({serial.expansions} expansions, {serial.step_count} steps), "
          f"farm[{_FARM_JOBS}] {farm_s:.0f} s")
    print(f"chain digest      {serial.chain_digest} "
          f"(identical across backends)")
    print(f"final state       match "
          f"{payload['serial']['final_match_percent']}%, "
          f"reference source reached: {reached_reference}")
    print(f"implementation    {proof.total_vcs} VCs, "
          f"auto {auto:.1f}% (floor {_MIN_AUTO_PERCENT}%)")
    print(f"results           {_OUT.name}")

    if check:
        assert round(auto, 1) >= _MIN_AUTO_PERCENT, (
            f"discovered program auto-discharges only {auto:.1f}% "
            f"(floor {_MIN_AUTO_PERCENT}%)")
    elif round(auto, 1) < _MIN_AUTO_PERCENT:
        print(f"WARNING: auto-discharge {auto:.1f}% below the "
              f"{_MIN_AUTO_PERCENT}% floor (non-fatal without --check)")
    return payload


def bench_plan_discovery(benchmark):
    """Pytest leg: identity gates always run; the auto-discharge floor
    is enforced in check mode (``REPRO_BENCH_CHECK=1``)."""
    benchmark.pedantic(lambda: run_plan_bench(check=True),
                       rounds=1, iterations=1)


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    check = "--check" in argv or CHECK_MODE
    unknown = [a for a in argv if a not in ("--check",)]
    if unknown:
        raise SystemExit(f"usage: python benchmarks/bench_plan.py "
                         f"[--check] (got {unknown!r})")
    run_plan_bench(check=check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
