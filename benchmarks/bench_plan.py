"""Automated-planner benchmark: batched farm discovery and warm replans
(DESIGN.md sections 17 and 18).

The acceptance claim of ``repro.plan`` after the batching work has four
legs:

* **discovery** -- from the optimized AES and the FIPS-197 theory, the
  search finds, without human ordering input, a chain of refactorings in
  which every accepted edge carries a semantics-preservation theorem
  over the observables (``Cipher``/``Inv_Cipher``);
* **determinism** -- the chain digest, step tokens, and final source are
  bit-identical between the serial backend and the process farm, *and*
  across batch sizes (per-obligation ``batch_size=1`` versus the default
  batched dispatch): batching changes how obligations travel, never what
  wins;
* **batching economics** -- the batched farm amortizes dispatch
  overhead: per-dispatch latency percentiles (p50/p95) drop against the
  unbatched farm, and a warm replan from the persistent plan cache
  reruns the whole search without scheduling a single evaluation;
* **provability** -- the discovered final program, carried through the
  annotation table and the implementation proof, auto-discharges at
  least ``_MIN_AUTO_PERCENT`` of its VCs (the paper's figure-3 floor:
  93.6%).

Results are written to ``BENCH_pr10.json`` at the repo root
(``bench-plan/v2``), including ``cpu_count`` so single-core CI boxes --
where a process farm cannot beat wall-clock serial no matter how little
it dispatches -- are readable as such.  Runnable standalone
(``python benchmarks/bench_plan.py [--check]``) or under pytest.  The
identity gates are asserted unconditionally; the auto-discharge floor
and the warm-replan speedup are enforced under ``--check`` /
``REPRO_BENCH_CHECK=1`` and advisory otherwise.
"""

import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.aes.annotations import build_annotated
from repro.aes.proof_scripts import aes_proof_scripts
from repro.aes.refactored import refactored_source
from repro.exec import ExecConfig, Telemetry
from repro.lang import parse_package, print_package
from repro.plan import plan_aes
from repro.prover import ImplementationProof

CHECK_MODE = os.environ.get("REPRO_BENCH_CHECK", "") not in ("", "0")

#: The discovered program must auto-discharge at least this percentage
#: of its implementation-proof VCs (the manual chain's figure-3 floor).
#: Compared at the one-decimal precision the figure is stated at:
#: 437/467 VCs *is* the manual chain's 93.6%, not a miss by 0.02.
_MIN_AUTO_PERCENT = 93.6

#: A replan from the persistent plan cache must be at least this many
#: times faster than the cold batched-farm discovery it replays.
_MIN_WARM_SPEEDUP = 10.0

#: Process-farm width for the farm discovery legs.
_FARM_JOBS = max(2, min(8, (os.cpu_count() or 2) - 1))

_OUT = Path(__file__).resolve().parent.parent / "BENCH_pr10.json"


def _discover(label, config, plan_cache=None):
    t0 = time.perf_counter()
    result = plan_aes(trials=2, exec=config, plan_cache=plan_cache)
    seconds = time.perf_counter() - t0
    assert result.found, f"{label}: planner did not reach the goal"
    assert result.validations >= result.step_count, \
        f"{label}: chain steps missing theorem validation"
    return result, seconds


def _summary(result, seconds, telemetry):
    ev = result.final_evaluation
    stats = telemetry.stats()
    return {
        "seconds": round(seconds, 1),
        "steps": result.step_count,
        "expansions": result.expansions,
        "evaluations": result.evaluations,
        "validations": result.validations,
        "rejected": len(result.rejected),
        "final_match_percent": round(100.0 * ev.match_fraction, 1),
        "scheduled": stats.total,
        "batched_dispatches": stats.batched,
        "batched_items": stats.batch_items,
        "dispatch_p50_ms": round(1e3 * stats.dispatch_p50_seconds, 2),
        "dispatch_p95_ms": round(1e3 * stats.dispatch_p95_seconds, 2),
    }


def _assert_identical(reference, other, label):
    assert reference.chain_digest == other.chain_digest, \
        f"chain digest differs: serial vs {label}"
    assert [s.token for s in reference.steps] == \
        [s.token for s in other.steps], f"step sequences differ ({label})"
    assert reference.final_source == other.final_source, \
        f"final programs differ ({label})"


def run_plan_bench(check: bool):
    legs = {}

    def leg(name, config_kwargs, plan_cache=None):
        telemetry = Telemetry()
        config = ExecConfig(cache=False, telemetry=telemetry,
                            **config_kwargs)
        result, seconds = _discover(name, config, plan_cache=plan_cache)
        legs[name] = _summary(result, seconds, telemetry)
        print(f"  {name:14s} {seconds:7.1f} s  "
              f"(dispatch p50 {legs[name]['dispatch_p50_ms']} ms, "
              f"batched {legs[name]['batched_dispatches']})", flush=True)
        return result, seconds

    cache_path = os.path.join(tempfile.mkdtemp(prefix="bench-plan-"),
                              "plan-cache.json")
    print("discovery legs:", flush=True)
    serial, serial_s = leg("serial", dict(jobs=1, backend="serial"))
    farm1, farm1_s = leg(
        "farm_batch1", dict(jobs=_FARM_JOBS, backend="process",
                            batch_size=1))
    farm, farm_s = leg(
        "farm_batched", dict(jobs=_FARM_JOBS, backend="process"),
        plan_cache=cache_path)
    warm, warm_s = leg(
        "warm_replan", dict(jobs=_FARM_JOBS, backend="process"),
        plan_cache=cache_path)

    # Determinism: bit-identical discovery across backends AND batch
    # sizes AND cache temperature.
    for label, other in (("farm_batch1", farm1), ("farm_batched", farm),
                         ("warm_replan", warm)):
        _assert_identical(serial, other, label)

    # The warm replay must come from the cache, not from re-measuring:
    # every evaluation is answered warm, so none is scheduled.
    assert legs["warm_replan"]["scheduled"] == 0, \
        "warm replan scheduled obligations (plan cache did not engage)"

    warm_speedup = farm_s / warm_s if warm_s > 0 else float("inf")
    batch_speedup = farm1_s / farm_s if farm_s > 0 else float("inf")

    reached_reference = serial.final_source == \
        print_package(parse_package(refactored_source()))

    # Provability of the discovered program: annotation table +
    # implementation proof, exactly the manual pipeline's final leg.
    typed = build_annotated(serial.final_source)
    t0 = time.perf_counter()
    proof = ImplementationProof(
        typed, scripts=aes_proof_scripts(),
        exec=ExecConfig(jobs=1, backend="serial", cache=False)).run()
    proof_s = time.perf_counter() - t0
    auto = proof.auto_percent

    payload = {
        "schema": "bench-plan/v2",
        "check_mode": check,
        "cpu_count": os.cpu_count(),
        "min_auto_percent": _MIN_AUTO_PERCENT,
        "min_warm_speedup": _MIN_WARM_SPEEDUP,
        "chain_digest": serial.chain_digest,
        "identical_across_backends": True,
        "identical_across_batch_sizes": True,
        "reached_reference_source": reached_reference,
        "farm_jobs": _FARM_JOBS,
        "warm_replan_speedup": round(warm_speedup, 1),
        "batched_vs_unbatched_farm_speedup": round(batch_speedup, 2),
        "legs": legs,
        "steps": [{"description": s.description, "origin": s.origin,
                   "match_percent": round(s.match_percent, 1)}
                  for s in serial.steps],
        "proof": {
            "total_vcs": proof.total_vcs,
            "auto_percent": round(auto, 2),
            "seconds": round(proof_s, 1),
        },
    }
    _OUT.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"chain digest      {serial.chain_digest} "
          f"(identical across backends, batch sizes, cache temperature)")
    print(f"batching          farm[{_FARM_JOBS}] batched {farm_s:.0f} s "
          f"vs unbatched {farm1_s:.0f} s ({batch_speedup:.2f}x); "
          f"dispatch p50 "
          f"{legs['farm_batched']['dispatch_p50_ms']} ms vs "
          f"{legs['farm_batch1']['dispatch_p50_ms']} ms")
    print(f"warm replan       {warm_s:.1f} s "
          f"({warm_speedup:.0f}x vs cold, 0 obligations scheduled)")
    print(f"final state       match "
          f"{legs['serial']['final_match_percent']}%, "
          f"reference source reached: {reached_reference}")
    print(f"implementation    {proof.total_vcs} VCs, "
          f"auto {auto:.1f}% (floor {_MIN_AUTO_PERCENT}%)")
    print(f"results           {_OUT.name} (cpu_count "
          f"{payload['cpu_count']})")

    if check:
        assert round(auto, 1) >= _MIN_AUTO_PERCENT, (
            f"discovered program auto-discharges only {auto:.1f}% "
            f"(floor {_MIN_AUTO_PERCENT}%)")
        assert warm_speedup >= _MIN_WARM_SPEEDUP, (
            f"warm replan only {warm_speedup:.1f}x faster than cold "
            f"(floor {_MIN_WARM_SPEEDUP}x)")
    else:
        if round(auto, 1) < _MIN_AUTO_PERCENT:
            print(f"WARNING: auto-discharge {auto:.1f}% below the "
                  f"{_MIN_AUTO_PERCENT}% floor (non-fatal without "
                  f"--check)")
        if warm_speedup < _MIN_WARM_SPEEDUP:
            print(f"WARNING: warm replan speedup {warm_speedup:.1f}x "
                  f"below the {_MIN_WARM_SPEEDUP}x floor (non-fatal "
                  f"without --check)")
    return payload


def bench_plan_discovery(benchmark):
    """Pytest leg: identity gates always run; the auto-discharge floor
    and the warm-replan speedup are enforced in check mode
    (``REPRO_BENCH_CHECK=1``)."""
    benchmark.pedantic(lambda: run_plan_bench(check=True),
                       rounds=1, iterations=1)


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    check = "--check" in argv or CHECK_MODE
    unknown = [a for a in argv if a not in ("--check",)]
    if unknown:
        raise SystemExit(f"usage: python benchmarks/bench_plan.py "
                         f"[--check] (got {unknown!r})")
    run_plan_bench(check=check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
