"""Table 1: annotations in the implementation proof.

Paper: preconditions 8, postconditions 123, loop invariants & assertions
54, proof functions/rules/other 32.  Ours differ in absolute count (our
annotation language quantifies where SPARK95 enumerates) but must keep the
ordering shape: postconditions dominate, then invariants, then proof
material, preconditions fewest.
"""

from repro.harness.tables import render_table1, table1


def bench_table1(benchmark):
    counts = benchmark.pedantic(table1, rounds=1, iterations=1)
    print()
    print(render_table1(counts))
    assert counts.postconditions > counts.invariants_and_asserts
    assert counts.invariants_and_asserts > counts.preconditions
    assert counts.proof_functions_rules_other > counts.preconditions
    assert counts.total > 100
