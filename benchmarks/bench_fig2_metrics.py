"""Figure 2(a)/(b)/(f): lines of code, average McCabe cyclomatic
complexity, and specification-structure match ratio across the 14
transformation blocks.

Paper values: LoC 1365 -> 412 (logical), avg McCabe 2.4 -> 1.48, match
ratio 25.9% -> 96.3%.  The assertions check the *shapes*: monotonic-ish
decline of size/complexity and a monotone rise of the match ratio.
"""

from repro.harness.figures import figure2, render_figure2


def bench_figure2_code_metrics(benchmark):
    measurements = benchmark.pedantic(
        lambda: figure2(upto=14), rounds=1, iterations=1)
    print()
    print(render_figure2(measurements))

    first, last = measurements[0], measurements[-1]

    # Figure 2(a): code size drops by more than half.
    assert last.logical_sloc < first.logical_sloc / 2
    assert last.lines_of_code < first.lines_of_code / 2

    # Figure 2(b): average cyclomatic complexity falls below the original.
    assert last.average_mccabe < first.average_mccabe

    # Figure 2(f): the match ratio rises from near-zero to above 90%,
    # "gradually" (paper): small local dips are allowed (our block 4 loses
    # one matched element -- the word-form Rcon -- before block 13 renames
    # its byte replacement).
    ratios = [m.match_percent for m in measurements]
    assert ratios[0] < 30.0
    assert ratios[-1] > 90.0
    assert all(b >= a - 5.0 for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] == max(ratios)

    # The paper's transformation inventory: ~50 transformations applied.
    assert sum(m.transformations for m in measurements) >= 50
