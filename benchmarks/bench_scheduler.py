"""Obligation-scheduler benchmark: the full AES verification run serial,
parallel, and warm-cache, plus the cross-backend gate.

Serial (``jobs=1``) is the pre-scheduler baseline path; thread-parallel
fans the same obligations over a thread pool (GIL-bound -- terms are
hash-consed process-globally -- so the win is bounded by how much
discharge time is spent outside the interpreter loop); process-parallel
ships declarative payloads to worker processes for true multi-core
proving; warm-cache replays every obligation from the content-addressed
cache and must perform **zero** auto-stage VC discharges.

The cross-backend gate runs the full AES implementation proof (the
paper's 306-VC corpus) on all three backends and requires bit-identical
per-VC outcomes.  On a multi-core machine the process backend must also
be at least 1.5x faster than the serial baseline.

Check mode (``REPRO_BENCH_CHECK=1``, used by CI): the differential gate
still runs in full, but the speedup assertion is skipped -- CI runners
make no timing promises.  The gate, not the timing, is the correctness
contract.
"""

import os
import time

from repro.aes.annotations import annotated_package
from repro.aes.proof_scripts import aes_proof_scripts
from repro.core.pipeline import verify_aes
from repro.exec import ExecConfig, ResultCache, Telemetry
from repro.prover import ImplementationProof

CHECK_MODE = os.environ.get("REPRO_BENCH_CHECK", "") not in ("", "0")


def _outcome_stages(result):
    return [(o.vc.subprogram, o.vc.name, o.stage,
             o.result.proved if o.result else None)
            for o in result.implementation.outcomes]


def _vc_outcomes(result):
    return [(o.vc.subprogram, o.vc.name, o.vc.kind, o.stage,
             o.result.proved if o.result else None,
             o.result.method if o.result else None)
            for o in result.outcomes]


def bench_scheduler_modes(benchmark):
    cache = ResultCache()
    tel_serial, tel_parallel, tel_warm = (
        Telemetry(), Telemetry(), Telemetry())

    serial = benchmark.pedantic(
        lambda: verify_aes(exec=ExecConfig(jobs=1, cache=cache,
                                           telemetry=tel_serial)),
        rounds=1, iterations=1)

    t0 = time.perf_counter()
    parallel = verify_aes(exec=ExecConfig(jobs=4, cache=False,
                                          telemetry=tel_parallel))
    parallel_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = verify_aes(exec=ExecConfig(jobs=1, cache=cache,
                                      telemetry=tel_warm))
    warm_s = time.perf_counter() - t0

    s_serial = tel_serial.stats()
    s_warm = tel_warm.stats()
    print()
    print(f"serial (cold)    obligations {s_serial.total}; "
          f"computed {dict(s_serial.computed)}")
    print(f"parallel jobs=4  {parallel_s:.1f} s")
    print(f"warm cache       {warm_s:.1f} s; "
          f"computed {dict(s_warm.computed)}; "
          f"cached {dict(s_warm.cached)}; "
          f"hit rate {100.0 * s_warm.hit_rate:.1f}%")

    assert serial.verified and parallel.verified and warm.verified
    # parallel performs the same proof: identical per-VC outcomes.
    assert _outcome_stages(parallel) == _outcome_stages(serial)
    # warm run replays everything: zero auto-stage VC discharges.
    assert s_warm.computed.get("vc", 0) == 0
    assert s_warm.cached.get("vc", 0) == s_serial.computed.get("vc", 0)
    assert _outcome_stages(warm) == _outcome_stages(serial)


def bench_scheduler_backends(benchmark):
    """The cross-backend gate on the full AES VC corpus.

    serial / thread jobs=4 / process jobs=4 must produce bit-identical
    per-VC outcomes; on a multi-core machine the process backend must
    beat the serial baseline by >= 1.5x (skipped in check mode and on
    single-core machines, where a process pool cannot beat anything).
    """
    typed = annotated_package()
    scripts = aes_proof_scripts()
    jobs = min(4, os.cpu_count() or 1) if CHECK_MODE else 4

    def run(backend, n):
        t0 = time.perf_counter()
        result = ImplementationProof(
            typed, scripts=scripts,
            exec=ExecConfig(jobs=n, backend=backend, cache=False)).run()
        return result, time.perf_counter() - t0

    serial, serial_s = benchmark.pedantic(
        lambda: run("serial", 1), rounds=1, iterations=1)
    thread, thread_s = run("thread", jobs)
    process, process_s = run("process", jobs)

    print()
    print(f"serial            {serial_s:.1f} s "
          f"({serial.total_vcs} VCs, {serial.auto_percent:.1f}% auto)")
    print(f"thread  jobs={jobs}    {thread_s:.1f} s")
    print(f"process jobs={jobs}    {process_s:.1f} s "
          f"(speedup {serial_s / process_s:.2f}x over serial)")

    # The differential gate: all three backends, bit-identical outcomes.
    assert _vc_outcomes(thread) == _vc_outcomes(serial)
    assert _vc_outcomes(process) == _vc_outcomes(serial)
    assert process.auto_percent == serial.auto_percent
    assert process.fully_automatic_subprograms() == \
        serial.fully_automatic_subprograms()

    if not CHECK_MODE and (os.cpu_count() or 1) >= 2:
        assert serial_s / process_s >= 1.5, (
            f"process backend speedup {serial_s / process_s:.2f}x "
            f"< 1.5x on a {os.cpu_count()}-core machine")
