"""Obligation-scheduler benchmark: the full AES verification run serial,
parallel, and warm-cache.

Serial (``jobs=1``) is the pre-scheduler baseline path; parallel fans the
same obligations over a thread pool (thread-bound -- terms are hash-consed
process-globally -- so the win is bounded by how much discharge time is
spent outside the interpreter loop); warm-cache replays every obligation
from the content-addressed cache and must perform **zero** auto-stage VC
discharges.
"""

import time

from repro.core.pipeline import verify_aes
from repro.exec import ResultCache, Telemetry


def _outcome_stages(result):
    return [(o.vc.subprogram, o.vc.name, o.stage,
             o.result.proved if o.result else None)
            for o in result.implementation.outcomes]


def bench_scheduler_modes(benchmark):
    cache = ResultCache()
    tel_serial, tel_parallel, tel_warm = (
        Telemetry(), Telemetry(), Telemetry())

    serial = benchmark.pedantic(
        lambda: verify_aes(jobs=1, cache=cache, telemetry=tel_serial),
        rounds=1, iterations=1)

    t0 = time.perf_counter()
    parallel = verify_aes(jobs=4, cache=False, telemetry=tel_parallel)
    parallel_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = verify_aes(jobs=1, cache=cache, telemetry=tel_warm)
    warm_s = time.perf_counter() - t0

    s_serial = tel_serial.stats()
    s_warm = tel_warm.stats()
    print()
    print(f"serial (cold)    obligations {s_serial.total}; "
          f"computed {dict(s_serial.computed)}")
    print(f"parallel jobs=4  {parallel_s:.1f} s")
    print(f"warm cache       {warm_s:.1f} s; "
          f"computed {dict(s_warm.computed)}; "
          f"cached {dict(s_warm.cached)}; "
          f"hit rate {100.0 * s_warm.hit_rate:.1f}%")

    assert serial.verified and parallel.verified and warm.verified
    # parallel performs the same proof: identical per-VC outcomes.
    assert _outcome_stages(parallel) == _outcome_stages(serial)
    # warm run replays everything: zero auto-stage VC discharges.
    assert s_warm.computed.get("vc", 0) == 0
    assert s_warm.cached.get("vc", 0) == s_serial.computed.get("vc", 0)
    assert _outcome_stages(warm) == _outcome_stages(serial)
