"""Table 3: defect detection for setup 2 (annotations describe the
intended behaviour).

Paper: 4 caught during verification refactoring, 10 during the
implementation proof, 0 during the implication proof, 1 (benign) left --
the same 14 defects caught as in setup 1, at an earlier stage.
"""

from repro.defects import run_experiment, stage_table
from repro.harness.tables import render_defect_table


def bench_table3_setup2(benchmark):
    outcomes = benchmark.pedantic(
        lambda: run_experiment(setups=(2,)), rounds=1, iterations=1)
    rows = stage_table(outcomes[2])
    print()
    print(render_defect_table(2, rows))
    assert rows == {"refactoring": 4, "implementation": 10,
                    "implication": 0, "left": 1}
