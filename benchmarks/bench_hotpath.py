"""Hot-path benchmark: head-op rule indexing + the cross-obligation
normalization cache (DESIGN.md section 13).

Three legs:

* **rewrite microbench** -- the prover's actual hot path, reproduced
  exactly: one *fresh* rewriter per VC (as ``AutoProver._prove`` builds a
  fresh ``Simplifier`` per obligation) over the full refactored-AES VC
  corpus.  The linear-scan reference (``index=False``, no shared cache)
  races the optimized configuration (head-op dispatch + a
  :class:`~repro.logic.normcache.NormalizationCache` scope per
  subprogram).  The optimized path must be at least
  ``_MIN_SPEEDUP``x faster *and* bit-identical;
* **implementation proof** -- the full 6.2.3 pipeline end to end (serial
  backend), recording wall time, rewrite work units and the hot-path
  counters;
* **implication proof** -- the full 6.2.4 pipeline end to end.

Results are written to ``BENCH_pr5.json`` at the repo root with a stable
schema (``bench-hotpath/v1``): wall times, rewrite work units and cache
hit rates per stage.

Runnable standalone (``python benchmarks/bench_hotpath.py [--check]``)
or under pytest (``python -m pytest benchmarks/bench_hotpath.py -q -s``).
``--check`` -- the CI gate, same spirit as ``REPRO_BENCH_CHECK=1`` --
runs the full differential gate and asserts the speedup floor; without
it the floor failure is reported but non-fatal (exploratory runs on
loaded machines).
"""

import json
import os
import sys
import time
from pathlib import Path

from repro.aes import refactored_package
from repro.aes.annotations import annotated_package
from repro.aes.fips197 import fips197_theory
from repro.aes.proof_scripts import aes_proof_scripts
from repro.exec import ExecConfig
from repro.extract import extract_specification
from repro.implication import prove_implication
from repro.logic import NormalizationCache, Rewriter, default_rules
from repro.prover import ImplementationProof
from repro.vcgen import generate_obligations
from repro.vcgen.simplifier import TypeBoundHook

CHECK_MODE = os.environ.get("REPRO_BENCH_CHECK", "") not in ("", "0")

#: The optimized configuration (indexing + cross-obligation cache) must
#: beat the linear-scan reference by at least this factor on the per-VC
#: fresh protocol (the acceptance floor; measured ~2.4x on an idle core).
_MIN_SPEEDUP = 1.3

_ROUNDS = 5

_OUT = Path(__file__).resolve().parent.parent / "BENCH_pr5.json"


def _corpus():
    typed = refactored_package()
    out = []
    for sp in typed.package.subprograms:
        obls = generate_obligations(typed, typed.signatures[sp.name])
        if obls:
            out.append((sp.name, [o.term for o in obls]))
    return typed, out


def _run_linear(typed, corpus, collect=None):
    """One fresh linear-scan rewriter per VC (the pre-PR-5 hot path)."""
    results = []
    for name, terms in corpus:
        hook = TypeBoundHook(typed, name)
        for t in terms:
            rw = Rewriter(default_rules(hook=hook), index=False)
            results.append(rw.normalize(t))
            if collect is not None:
                collect.append(rw.stats)
    return results


def _run_optimized(typed, corpus, collect=None):
    """One fresh indexed rewriter per VC sharing a per-subprogram
    normalization-cache scope (exactly what ``AutoProver._prove`` does
    through ``Simplifier(shared=...)``)."""
    cache = NormalizationCache()
    results = []
    for name, terms in corpus:
        hook = TypeBoundHook(typed, name)
        scope = cache.scope(f"bench|{name}|")
        for t in terms:
            rw = Rewriter(default_rules(hook=hook), shared=scope)
            results.append(rw.normalize(t))
            if collect is not None:
                collect.append(rw.stats)
    return results, cache


def _best_of(fn, rounds=_ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _microbench():
    typed, corpus = _corpus()
    vc_count = sum(len(terms) for _, terms in corpus)

    # Differential gate first (also warms the interning table so the
    # timed rounds pay no construction costs).  Indexing alone must be
    # invisible: bit-identical normal forms AND bit-identical per-VC
    # RewriteStats (field(compare=False) on the instrumentation counters
    # means == compares exactly the semantic outcome: nodes, rewrites,
    # exhaustions).  The shared cache legitimately *skips* traversal
    # work, so its guarantee is result identity, not stats identity.
    lin_stats, idx_stats, opt_stats = [], [], []
    ref = _run_linear(typed, corpus, collect=lin_stats)
    idx = []
    for name, terms in corpus:
        hook = TypeBoundHook(typed, name)
        for t in terms:
            rw = Rewriter(default_rules(hook=hook))
            idx.append(rw.normalize(t))
            idx_stats.append(rw.stats)
    assert all(a is b for a, b in zip(ref, idx)), \
        "indexed rewriting diverged from the linear-scan reference"
    assert lin_stats == idx_stats, \
        "per-VC RewriteStats diverged between linear and indexed runs"
    got, cache = _run_optimized(typed, corpus, collect=opt_stats)
    assert all(a is b for a, b in zip(ref, got)), \
        "indexed+shared rewriting diverged from the linear-scan reference"
    assert len(ref) == len(got) == vc_count
    index_hits = sum(s.index_hits for s in opt_stats)
    index_skipped = sum(s.index_skipped_rules for s in opt_stats)
    cross_hits = sum(s.cross_vc_hits for s in opt_stats)
    assert index_hits > 0 and index_skipped > 0 and cross_hits > 0
    assert all(s.index_hits == 0 and s.cross_vc_hits == 0
               for s in lin_stats)

    linear_s = _best_of(lambda: _run_linear(typed, corpus))
    optimized_s = _best_of(lambda: _run_optimized(typed, corpus))
    lookups = cache.hits + cache.misses
    return {
        "subprograms": len(corpus),
        "vcs": vc_count,
        "linear_ms": round(linear_s * 1000, 3),
        "optimized_ms": round(optimized_s * 1000, 3),
        "speedup": round(linear_s / optimized_s, 3),
        "work_units": sum(s.work for s in opt_stats),
        "index_hits": index_hits,
        "index_skipped_rules": index_skipped,
        "cross_vc_hits": cross_hits,
        "norm_cache_hit_rate": round(cache.hits / lookups, 4)
        if lookups else 0.0,
        "norm_cache_entries": len(cache),
    }


def _impl_proof():
    typed = annotated_package()
    t0 = time.perf_counter()
    result = ImplementationProof(
        typed, scripts=aes_proof_scripts(),
        exec=ExecConfig(jobs=1, backend="serial", cache=False)).run()
    wall = time.perf_counter() - t0
    report = result.report
    assert result.feasible
    return {
        "wall_seconds": round(wall, 3),
        "total_vcs": result.total_vcs,
        "auto_percent": round(result.auto_percent, 2),
        "work_units": report.work_units,
        "index_hits": report.index_hits,
        "index_skipped_rules": report.index_skipped_rules,
        "cross_vc_hits": report.cross_vc_hits,
    }


def _implication_proof():
    typed = annotated_package()
    extraction = extract_specification(typed)
    t0 = time.perf_counter()
    result = prove_implication(
        fips197_theory(), extraction.theory,
        exec=ExecConfig(jobs=1, backend="serial", cache=False))
    wall = time.perf_counter() - t0
    assert result.holds
    return {
        "wall_seconds": round(wall, 3),
        "lemma_count": result.lemma_count,
        "tcc_total": result.tcc_total,
        "holds": result.holds,
    }


def run_hotpath_bench(check: bool):
    payload = {
        "schema": "bench-hotpath/v1",
        "min_speedup": _MIN_SPEEDUP,
        "check_mode": check,
        "rewrite_microbench": _microbench(),
        "implementation_proof": _impl_proof(),
        "implication_proof": _implication_proof(),
    }
    _OUT.write_text(json.dumps(payload, indent=2) + "\n")

    micro = payload["rewrite_microbench"]
    impl = payload["implementation_proof"]
    imp = payload["implication_proof"]
    print()
    print(f"corpus            {micro['vcs']} VCs over "
          f"{micro['subprograms']} subprograms")
    print(f"linear scan       {micro['linear_ms']:.1f} ms (per-VC fresh)")
    print(f"indexed+shared    {micro['optimized_ms']:.1f} ms "
          f"(speedup {micro['speedup']:.2f}x; "
          f"{micro['index_skipped_rules']} rule scans skipped, "
          f"{micro['cross_vc_hits']} cross-VC hits, "
          f"cache hit rate {100 * micro['norm_cache_hit_rate']:.1f}%)")
    print(f"impl proof        {impl['wall_seconds']:.1f} s end to end "
          f"({impl['total_vcs']} VCs, {impl['auto_percent']:.1f}% auto, "
          f"{impl['cross_vc_hits']} cross-VC hits)")
    print(f"implication proof {imp['wall_seconds']:.1f} s end to end "
          f"({imp['lemma_count']} lemmas, holds={imp['holds']})")
    print(f"results           {_OUT.name}")

    floor_ok = micro["speedup"] >= _MIN_SPEEDUP
    if check:
        assert floor_ok, (
            f"indexed+shared speedup {micro['speedup']:.2f}x below the "
            f"{_MIN_SPEEDUP}x floor over the linear-scan reference")
    elif not floor_ok:
        print(f"WARNING: speedup {micro['speedup']:.2f}x below the "
              f"{_MIN_SPEEDUP}x floor (non-fatal without --check)")
    return payload


def bench_hotpath_indexing(benchmark):
    """Pytest leg: the differential gate always runs; the speedup floor
    is enforced in check mode (``REPRO_BENCH_CHECK=1``) and locally."""
    benchmark.pedantic(lambda: run_hotpath_bench(check=True),
                       rounds=1, iterations=1)


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    check = "--check" in argv or CHECK_MODE
    unknown = [a for a in argv if a not in ("--check",)]
    if unknown:
        raise SystemExit(f"usage: python benchmarks/bench_hotpath.py "
                         f"[--check] (got {unknown!r})")
    run_hotpath_bench(check=check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
