"""Table 2: defect detection for setup 1 (annotations describe the code).

Paper: of 15 seeded defects, 4 caught during verification refactoring,
2 during the implementation proof (exception freedom), 8 during the
implication proof, 1 (benign) left.
"""

from repro.defects import curated_defects, run_experiment, stage_table
from repro.harness.tables import render_defect_table


def bench_table2_setup1(benchmark):
    outcomes = benchmark.pedantic(
        lambda: run_experiment(setups=(1,)), rounds=1, iterations=1)
    rows = stage_table(outcomes[1])
    print()
    print(render_defect_table(1, rows))
    assert rows == {"refactoring": 4, "implementation": 2,
                    "implication": 8, "left": 1}
    benign = [o for o in outcomes[1] if o.stage == "not caught"]
    assert len(benign) == 1 and benign[0].defect.benign
