"""Incremental re-verification benchmark: edit-aware manifest replay on
the full refactored-AES corpus (DESIGN.md section 15).

One cold serial implementation proof populates the result cache and the
run manifest; then every edit scenario of the acceptance gate runs the
incremental session against a cold serial reference **on the same edited
package, in the same process** (interning order is shared, so the verdict
streams are comparable VC for VC):

* **no edit** -- everything replays, nothing re-checks;
* **body-only** -- a semantics-preserving statement appended to one
  procedure body: only that procedure's cone re-checks.  This is the
  timed leg: the incremental session must beat the cold re-run by at
  least ``_MIN_SPEEDUP``x;
* **spec-only** -- a duplicated postcondition conjunct on one procedure:
  only that cone re-checks;
* **rename-only** -- an uncalled procedure renamed: the signature
  context changes, so *everything* conservatively re-checks (and no
  verdict is ever attributed to a stale name);
* **seeded defect** -- a :mod:`repro.defects` mutation: the defective
  cone re-checks and the incremental verdicts (including the failures)
  match the cold reference.

Results are written to ``BENCH_pr7.json`` at the repo root
(``bench-incr/v1``).  Runnable standalone
(``python benchmarks/bench_incr.py [--check]``) or under pytest.
Verdict identity is asserted in every mode; the speedup floor is
enforced under ``--check`` / ``REPRO_BENCH_CHECK=1`` and advisory
otherwise (exploratory runs on loaded machines).
"""

import dataclasses
import json
import os
import random
import sys
import tempfile
import time
from pathlib import Path

from repro.aes.annotations import annotated_package
from repro.aes.proof_scripts import aes_proof_scripts
from repro.defects.seeder import random_mutation
from repro.exec import ExecConfig, ResultCache
from repro.incr import ManifestStore, reference_closure
from repro.lang import analyze, ast
from repro.prover import ImplementationProof

CHECK_MODE = os.environ.get("REPRO_BENCH_CHECK", "") not in ("", "0")

#: A one-procedure body edit must re-verify at least this much faster
#: than the cold serial re-run (the acceptance floor; replaying ~95% of
#: a ~467-VC corpus measures far above it on an idle core).
_MIN_SPEEDUP = 10.0

_OUT = Path(__file__).resolve().parent.parent / "BENCH_pr7.json"


def _serial(cache):
    return ExecConfig(jobs=1, backend="serial", cache=cache)


def _keys(result):
    return [(o.vc.subprogram, o.vc.name, o.vc.kind, o.stage,
             o.result.proved if o.result else None)
            for o in result.outcomes]


def _run(typed, scripts, *, cache=False, manifest=None,
         incremental=False):
    t0 = time.perf_counter()
    result = ImplementationProof(
        typed, scripts=scripts, exec=_serial(cache),
        manifest=manifest, incremental=incremental).run()
    return result, time.perf_counter() - t0


def _invalidation(typed, report):
    """Per subprogram: the VC count re-checked if only it is edited
    (itself plus every subprogram whose reference cone contains it)."""
    closure = reference_closure(typed)
    counts = {name: analysis.vc_count
              for name, analysis in report.per_subprogram.items()}
    return {
        name: sum(counts.get(s, 0)
                  for s, cone in closure.items() if name in cone)
        for name in counts
    }, closure


def _pick_edit_target(typed, report):
    """The procedure whose edit invalidates the fewest VCs (the
    best-case -- and typical -- localized edit)."""
    invalidated, _ = _invalidation(typed, report)
    candidates = [sp.name for sp in typed.package.subprograms
                  if sp.body and invalidated.get(sp.name)]
    return min(candidates, key=lambda n: (invalidated[n], n))


def _pick_uncalled_procedure(typed):
    """A procedure referenced by no other subprogram: safe to rename
    without touching any call site."""
    closure = reference_closure(typed)
    for sp in typed.package.subprograms:
        if sp.return_type is None and not any(
                sp.name in cone for s, cone in closure.items()
                if s != sp.name):
            return sp.name
    raise RuntimeError("no uncalled procedure in the corpus")


def _body_edit(typed, name):
    sp = typed.package.subprogram(name)
    edited = dataclasses.replace(sp, body=(*sp.body, ast.Null()))
    return analyze(typed.package.replace_subprogram(name, edited))


def _spec_edit(typed):
    for sp in typed.package.subprograms:
        if sp.post:
            name = sp.name
            edited = dataclasses.replace(sp, post=(*sp.post, sp.post[-1]))
            return name, analyze(
                typed.package.replace_subprogram(name, edited))
    raise RuntimeError("no annotated subprogram in the corpus")


def _rename_edit(typed, scripts):
    name = _pick_uncalled_procedure(typed)
    renamed = f"{name}_R"
    sp = typed.package.subprogram(name)
    edited = dataclasses.replace(sp, name=renamed)
    new_scripts = dict(scripts)
    if name in new_scripts:
        new_scripts[renamed] = new_scripts.pop(name)
    return name, renamed, analyze(
        typed.package.replace_subprogram(name, edited)), new_scripts


def _scenario(title, typed, scripts, cache, store):
    """Incremental session vs in-process cold reference on the same
    edited package.  Identity is asserted unconditionally: a wrong
    replayed verdict is a correctness bug, not a timing miss."""
    incr, incr_s = _run(typed, scripts, cache=cache, manifest=store,
                        incremental=True)
    cold, cold_s = _run(typed, scripts)
    assert _keys(incr) == _keys(cold), \
        f"{title}: incremental verdicts diverged from the cold reference"
    stats = incr.incremental
    return {
        "identical": True,
        "incremental_seconds": round(incr_s, 3),
        "cold_seconds": round(cold_s, 3),
        "replayed_vcs": stats.replayed_vcs,
        "rechecked_vcs": stats.rechecked_vcs,
        "replayed_subprograms": stats.replayed_subprograms,
        "rechecked_subprograms": stats.rechecked_subprograms,
        "manifest_miss": stats.manifest_miss,
        "evicted_fallbacks": stats.evicted_fallbacks,
    }


def run_incr_bench(check: bool):
    typed = annotated_package()
    scripts = aes_proof_scripts()
    cache = ResultCache()

    with tempfile.TemporaryDirectory(prefix="bench-incr-") as tmp:
        store = ManifestStore(Path(tmp) / "manifest")

        # Cold baseline: populates the result cache and the manifest.
        base, base_s = _run(typed, scripts, cache=cache, manifest=store)
        assert base.feasible

        scenarios = {}
        scenarios["no_edit"] = _scenario(
            "no-edit", typed, scripts, cache, store)
        assert scenarios["no_edit"]["rechecked_vcs"] == 0
        assert scenarios["no_edit"]["replayed_vcs"] == base.total_vcs

        # Re-warm (the no-edit leg carried the manifest forward
        # unchanged, so nothing to redo) and run the edit scenarios,
        # each from the *pristine* baseline manifest: the manifest a
        # developer has on disk before the edit.
        target = _pick_edit_target(typed, base.report)
        scenarios["body_only"] = _scenario(
            "body-only", _body_edit(typed, target), scripts, cache, store)
        scenarios["body_only"]["edited"] = target

        # The body leg re-wrote the manifest for the edited text; restore
        # the baseline so each scenario diffs against the same ancestor.
        def rebase():
            _run(typed, scripts, cache=cache, manifest=store)

        rebase()
        spec_target, spec_typed = _spec_edit(typed)
        scenarios["spec_only"] = _scenario(
            "spec-only", spec_typed, scripts, cache, store)
        scenarios["spec_only"]["edited"] = spec_target

        rebase()
        old, new, renamed_typed, renamed_scripts = _rename_edit(
            typed, scripts)
        scenarios["rename_only"] = _scenario(
            "rename-only", renamed_typed, renamed_scripts, cache, store)
        scenarios["rename_only"]["edited"] = f"{old} -> {new}"
        assert scenarios["rename_only"]["replayed_vcs"] == 0, \
            "a rename must never replay verdicts under stale names"

        rebase()
        mutation = random_mutation(typed, random.Random(2009))
        assert mutation is not None
        scenarios["seeded_defect"] = _scenario(
            "seeded-defect", analyze(mutation.package), scripts, cache,
            store)
        scenarios["seeded_defect"]["edited"] = \
            f"{mutation.subprogram} ({mutation.kind})"
        assert scenarios["seeded_defect"]["rechecked_subprograms"] >= 1

    body = scenarios["body_only"]
    speedup = body["cold_seconds"] / body["incremental_seconds"]
    payload = {
        "schema": "bench-incr/v1",
        "min_speedup": _MIN_SPEEDUP,
        "check_mode": check,
        "corpus": {
            "total_vcs": base.total_vcs,
            "subprograms": len(base.report.per_subprogram),
            "cold_seconds": round(base_s, 3),
            "auto_percent": round(base.auto_percent, 2),
        },
        "body_edit_speedup": round(speedup, 2),
        "scenarios": scenarios,
    }
    _OUT.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"corpus            {base.total_vcs} VCs over "
          f"{len(base.report.per_subprogram)} subprograms, "
          f"cold {base_s:.1f} s")
    for title, s in scenarios.items():
        edited = f" [{s['edited']}]" if "edited" in s else ""
        print(f"{title:<17} incr {s['incremental_seconds']:.2f} s vs "
              f"cold {s['cold_seconds']:.1f} s -- "
              f"replayed {s['replayed_vcs']} / "
              f"re-checked {s['rechecked_vcs']} VCs, "
              f"identical{edited}")
    print(f"body-edit speedup {speedup:.1f}x "
          f"(floor {_MIN_SPEEDUP:.0f}x)")
    print(f"results           {_OUT.name}")

    if check:
        assert speedup >= _MIN_SPEEDUP, (
            f"incremental re-check after a one-procedure body edit is "
            f"only {speedup:.1f}x faster than cold (floor "
            f"{_MIN_SPEEDUP:.0f}x)")
    elif speedup < _MIN_SPEEDUP:
        print(f"WARNING: speedup {speedup:.1f}x below the "
              f"{_MIN_SPEEDUP:.0f}x floor (non-fatal without --check)")
    return payload


def bench_incremental_reverify(benchmark):
    """Pytest leg: the identity gates always run; the speedup floor is
    enforced in check mode (``REPRO_BENCH_CHECK=1``) and locally."""
    benchmark.pedantic(lambda: run_incr_bench(check=True),
                       rounds=1, iterations=1)


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    check = "--check" in argv or CHECK_MODE
    unknown = [a for a in argv if a not in ("--check",)]
    if unknown:
        raise SystemExit(f"usage: python benchmarks/bench_incr.py "
                         f"[--check] (got {unknown!r})")
    run_incr_bench(check=check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
