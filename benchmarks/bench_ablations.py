"""Ablations for the design choices DESIGN.md calls out.

1. Hash-consing: the tree statistics of block-1 VCs versus their DAG size
   -- why the paper's tools died while ours can still *measure* the blowup.
2. Simplifier rule families: simplified-VC size of the refactored AES with
   one family disabled at a time.
3. Rolled + cut-point loops vs unrolled straight-line code for the same
   kernel: the paper's core claim in miniature.
"""

from repro.aes.refactored import refactored_package
from repro.lang import analyze, parse_package, with_true_postconditions
from repro.logic.measure import dag_size, tree_bytes
from repro.vcgen import Examiner, ExaminerLimits


def bench_ablation_hash_consing(benchmark):
    """Tree-vs-DAG statistics of the unrolled AES obligations."""
    from repro.aes.optimized import optimized_package
    from repro.vcgen import generate_obligations
    from repro.vcgen.resources import ResourceMeter

    typed = optimized_package()

    def measure():
        # Generate with an effectively unlimited budget so the tree blowup
        # is measurable (the default budget aborts, as the paper's tools
        # did).
        meter = ResourceMeter(ExaminerLimits(max_tree_bytes=None))
        obligations = generate_obligations(
            typed, typed.signatures["Expand_Key"], meter)
        tree = sum(tree_bytes(o.term) for o in obligations)
        dag = sum(dag_size(o.term) for o in obligations)
        return tree, dag

    tree, dag = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nExpand_Key obligations: tree {tree / 2**20:.1f} MB-equivalent "
          f"vs {dag} DAG nodes (ratio {tree / max(dag, 1):.0f}x)")
    assert tree > 100 * dag  # sharing is doing real work


def bench_ablation_simplifier_families(benchmark):
    """Disable each rule family and measure the simplified residue."""
    typed = analyze(with_true_postconditions(refactored_package().package))
    names = ["Sub_Bytes", "Shift_Rows", "Mix_Columns", "Key_Schedule_128"]

    def run(exclude):
        examiner = Examiner(typed, exclude_rule_families=exclude)
        report = examiner.examine(names)
        return report.simplified_bytes, report.discharged_count

    def sweep():
        return {family: run((family,))
                for family in ("", "bounds", "boolean", "equality")}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    baseline_bytes, baseline_discharged = results[""]
    print()
    for family, (residue, discharged) in results.items():
        label = family or "(none disabled)"
        print(f"  {label:18s} residue {residue:8d} bytes, "
              f"{discharged} VCs discharged by the simplifier")
    # The bounds family carries the exception-freedom load: disabling it
    # must strictly reduce what the simplifier discharges.
    assert results["bounds"][1] < baseline_discharged


def bench_ablation_rolled_vs_unrolled(benchmark):
    """The core claim: cut points bound VC size; unrolling explodes it."""
    rolled_src = """
package K is
   type Word is mod 4294967296;
   type Table is array (0 .. 255) of Word;
   T : constant Table := (others => 1);
   procedure Q (X : in Word; Y : out Word) is
      A : Word;
   begin
      A := X;
      for R in 0 .. 7 loop
         A := T (Integer (A and 255)) xor (A xor T (Integer (Shift_Right (A, 8) and 255)));
      end loop;
      Y := A;
   end Q;
end K;
"""
    lines = []
    for _ in range(8):
        lines.append("      A := T (Integer (A and 255)) xor (A xor "
                     "T (Integer (Shift_Right (A, 8) and 255)));")
    unrolled_src = rolled_src.replace(
        """      for R in 0 .. 7 loop
         A := T (Integer (A and 255)) xor (A xor T (Integer (Shift_Right (A, 8) and 255)));
      end loop;""", "\n".join(lines))

    def measure():
        rolled = Examiner(analyze(parse_package(rolled_src))).examine()
        unrolled = Examiner(
            analyze(parse_package(unrolled_src)),
            limits=ExaminerLimits(max_tree_bytes=10 ** 15)).examine()
        return rolled.generated_bytes, unrolled.generated_bytes

    rolled_bytes, unrolled_bytes = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    print(f"\nrolled: {rolled_bytes} bytes of VCs; "
          f"unrolled: {unrolled_bytes} bytes "
          f"({unrolled_bytes / max(rolled_bytes, 1):.0f}x)")
    assert unrolled_bytes > 20 * rolled_bytes


def bench_ablation_transformation_order(benchmark):
    """Section 5.2's ordering heuristics: applying re-rolling first makes
    the program analyzable immediately; skipping it leaves the analysis
    infeasible until the representation blocks replace the code outright."""
    from repro.aes.blocks import AESPipeline

    def run():
        pipeline = AESPipeline(check="none")
        feasible_at = []
        def on_block(result):
            stripped = analyze(
                with_true_postconditions(result.typed.package))
            report = Examiner(stripped).examine()
            feasible_at.append((result.index, report.feasible))
        pipeline.run(upto=2, on_block=on_block)
        return feasible_at

    feasible_at = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nfeasibility by block: {feasible_at}")
    assert feasible_at[0][1] is False   # original: infeasible
    assert feasible_at[1][1] is True    # after re-rolling: analyzable
