"""Section 6.2.4: the implication proof.

Paper: extracted specification 1685 lines (vs original 811); 147 TCCs for
the extracted spec (79 automatic, 68 subsumed); 32 major lemmas; 54 TCCs
for the implication theorem (29 automatic, 25 subsumed); every lemma
discharged with short manual guidance.
"""

from repro.aes.fips197 import fips197_theory
from repro.harness.tables import implication_proof_stats
from repro.spec import spec_line_count


def bench_implication_proof(benchmark):
    stats = benchmark.pedantic(implication_proof_stats,
                               rounds=1, iterations=1)
    result = stats.result
    original_lines = spec_line_count(fips197_theory())
    print()
    print(f"original spec {original_lines} lines; extracted "
          f"{stats.extracted_lines} lines (paper: 811 vs 1685)")
    print(f"extracted-spec TCCs: {stats.extracted_tccs_total} "
          f"({stats.extracted_tccs_proved} automatic, "
          f"{stats.extracted_tccs_subsumed} subsumed)")
    print(f"lemmas: {result.lemma_count} (paper: 32); evidence "
          f"{result.by_evidence()}")
    print(f"implication TCCs: {result.tcc_total + result.tcc_subsumed} "
          f"({result.tcc_proved} automatic, {result.tcc_subsumed} subsumed)")

    # The extracted spec is larger than the original (paper's observation).
    assert stats.extracted_lines > original_lines
    # TCC accounting: all discharged, with a real subsumed population.
    assert stats.extracted_tccs_subsumed > 0
    # Lemma structure: same order as the paper's 32 major lemmas.
    assert 25 <= result.lemma_count <= 45
    # Most lemmas need (scripted) guidance, none fail, and the overall
    # theorem is proof-strength (no sampled evidence).
    assert result.interactive_lemmas > result.lemma_count // 2
    assert result.holds and result.is_proof
