"""Proof-farm benchmark: remote-backend scaling + the farm-vs-serial
differential gate on the full AES corpus (DESIGN.md §16).

Legs:

* **differential gate** -- verdicts under ``backend="remote"`` must be
  bit-identical to the in-process serial reference on all 467 VCs, in
  every farm shape: one worker, four workers, a two-worker farm with a
  cold then warm shared cache tier, and a two-worker farm that loses a
  worker to ``SIGKILL`` mid-run (the coordinator blames the in-flight
  obligations and re-runs them on the survivor);
* **scaling** -- four workers must beat one worker by at least
  ``_MIN_SPEEDUP``x wall clock (the acceptance floor; the workload is
  embarrassingly parallel, so healthy farms measure well above it);
* **shared cache tier** -- the warm repeat over the same corpus must be
  served from the coordinator's cache without recomputing.

Every timing leg spawns *fresh* worker processes: ``--listen`` workers
keep a local result cache that is warm across runs, which is a feature
in production and a contaminant in a scaling measurement.

Results are written to ``BENCH_pr8.json`` at the repo root
(``bench-farm/v1``).  Runnable standalone
(``python benchmarks/bench_farm.py [--check]``) or under pytest
(``python -m pytest benchmarks/bench_farm.py -q -s``).  The
differential gate always runs; the speedup floors are asserted in check
mode (``--check`` / ``REPRO_BENCH_CHECK=1``) and reported otherwise.
"""

import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

from repro.aes.annotations import annotated_package
from repro.aes.proof_scripts import aes_proof_scripts
from repro.exec import ExecConfig, ResultCache, Telemetry
from repro.exec.remote import spawn_worker
from repro.prover import ImplementationProof

CHECK_MODE = os.environ.get("REPRO_BENCH_CHECK", "") not in ("", "0")

#: Four workers must beat one worker by at least this factor.
_MIN_SPEEDUP = 1.5

#: The warm shared-cache repeat must beat its cold first run.
_MIN_WARM_SPEEDUP = 2.0

_OUT = Path(__file__).resolve().parent.parent / "BENCH_pr8.json"


def _keys(result):
    return [(o.vc.subprogram, o.vc.name, o.vc.kind, o.stage,
             o.result.proved if o.result else None)
            for o in result.outcomes]


@contextmanager
def _farm(count, prefix):
    """``count`` fresh listen-mode workers; kills them on exit."""
    procs, addresses = [], []
    try:
        for i in range(count):
            proc, address = spawn_worker(listen="127.0.0.1:0",
                                         name=f"{prefix}{i}")
            procs.append(proc)
            addresses.append(address)
        yield procs, tuple(addresses)
    finally:
        for proc in procs:
            proc.kill()
            proc.wait()


def _run(typed, scripts, config):
    started = time.perf_counter()
    result = ImplementationProof(typed, scripts=scripts,
                                 exec=config).run()
    return result, time.perf_counter() - started


def _remote_config(addresses, **kw):
    kw.setdefault("jobs", 2 * len(addresses))
    kw.setdefault("cache", False)
    kw.setdefault("telemetry", Telemetry())
    return ExecConfig(backend="remote", remote_workers=addresses, **kw)


def run_farm_bench(check: bool):
    typed = annotated_package()
    scripts = aes_proof_scripts()

    serial, serial_seconds = _run(
        typed, scripts, ExecConfig(jobs=1, backend="serial", cache=False))
    reference = _keys(serial)
    total_vcs = len(reference)

    # -- scaling: 1 worker vs 4 workers, fresh farms, no caches ----------
    with _farm(1, "solo") as (_, addresses):
        one, one_seconds = _run(typed, scripts, _remote_config(addresses))
    assert _keys(one) == reference, \
        "1-worker farm verdicts diverge from the serial reference"

    with _farm(4, "quad") as (_, addresses):
        four, four_seconds = _run(typed, scripts,
                                  _remote_config(addresses))
    assert _keys(four) == reference, \
        "4-worker farm verdicts diverge from the serial reference"
    scaling = one_seconds / four_seconds if four_seconds > 0 \
        else float("inf")

    # -- shared cache tier: cold fill, then a warm repeat ----------------
    cache = ResultCache()
    with _farm(2, "duo") as (_, addresses):
        cold, cold_seconds = _run(
            typed, scripts,
            _remote_config(addresses, cache=cache, jobs=4))
        warm, warm_seconds = _run(
            typed, scripts,
            _remote_config(addresses, cache=cache, jobs=4))
    assert _keys(cold) == reference, \
        "cold shared-cache farm verdicts diverge from the reference"
    assert _keys(warm) == reference, \
        "warm shared-cache farm verdicts diverge from the reference"
    warm_speedup = cold_seconds / warm_seconds if warm_seconds > 0 \
        else float("inf")

    # -- worker loss mid-run: kill one of two, verdicts must not move ----
    with _farm(2, "frail") as (procs, addresses):
        assassin = threading.Timer(3.0, procs[0].kill)
        assassin.start()
        try:
            crashed, crash_seconds = _run(typed, scripts,
                                          _remote_config(addresses,
                                                         jobs=4))
        finally:
            assassin.cancel()
    assert _keys(crashed) == reference, \
        "verdicts moved after a worker was killed mid-run"

    payload = {
        "schema": "bench-farm/v1",
        "min_speedup": _MIN_SPEEDUP,
        "min_warm_speedup": _MIN_WARM_SPEEDUP,
        "check_mode": check,
        "total_vcs": total_vcs,
        "auto_percent": serial.auto_percent,
        "serial_seconds": serial_seconds,
        "one_worker_seconds": one_seconds,
        "four_worker_seconds": four_seconds,
        "scaling_speedup": scaling,
        "shared_cache": {
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "warm_speedup": warm_speedup,
        },
        "worker_loss_seconds": crash_seconds,
        "legs_identical_to_reference": True,
    }
    _OUT.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"corpus        {total_vcs} VCs, "
          f"{serial.auto_percent:.1f}% auto")
    print(f"serial        {serial_seconds:.1f} s (in-process reference)")
    print(f"1 worker      {one_seconds:.1f} s")
    print(f"4 workers     {four_seconds:.1f} s "
          f"(scaling {scaling:.2f}x over 1 worker)")
    print(f"shared cache  cold {cold_seconds:.1f} s, "
          f"warm {warm_seconds:.1f} s (speedup {warm_speedup:.1f}x)")
    print(f"worker loss   {crash_seconds:.1f} s "
          f"(1 of 2 workers SIGKILLed mid-run)")
    print("differential  every farm shape == serial reference")
    print(f"results       {_OUT.name}")

    scaling_ok = scaling >= _MIN_SPEEDUP
    warm_ok = warm_speedup >= _MIN_WARM_SPEEDUP
    if check:
        assert scaling_ok, (
            f"4-worker scaling {scaling:.2f}x below the "
            f"{_MIN_SPEEDUP}x floor over 1 worker")
        assert warm_ok, (
            f"warm shared-cache speedup {warm_speedup:.2f}x below the "
            f"{_MIN_WARM_SPEEDUP}x floor")
    else:
        if not scaling_ok:
            print(f"WARNING: scaling {scaling:.2f}x below the "
                  f"{_MIN_SPEEDUP}x floor (non-fatal without --check)")
        if not warm_ok:
            print(f"WARNING: warm speedup {warm_speedup:.2f}x below the "
                  f"{_MIN_WARM_SPEEDUP}x floor (non-fatal without "
                  f"--check)")
    return payload


def bench_farm_scaling(benchmark):
    """Pytest leg: the differential gate always runs; the scaling floors
    are enforced in check mode and locally."""
    benchmark.pedantic(lambda: run_farm_bench(check=True),
                       rounds=1, iterations=1)


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    check = "--check" in argv or CHECK_MODE
    unknown = [a for a in argv if a not in ("--check",)]
    if unknown:
        raise SystemExit(f"usage: python benchmarks/bench_farm.py "
                         f"[--check] (got {unknown!r})")
    run_farm_bench(check=check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
