"""Serve-layer benchmark: warm-cache speedup + the daemon-vs-batch
differential gate (DESIGN.md §14).

Legs:

* **differential gate** -- daemon verdicts on the sampled AES corpus
  must be bit-identical to the serial batch reference in every serving
  mode: cold cache, warm cache, the interactive lane, and after a
  journal replay (the request is admitted into a zero-capacity lane,
  the service is abandoned mid-queue, and a fresh service replays it
  from the journal -- the in-process equivalent of ``kill -9``);
* **warm-cache speedup** -- the second identical request of a namespace
  must run at least ``_MIN_SPEEDUP``x faster than the first: every
  obligation is served from the tenant's warm ``ResultCache`` and every
  normal form from its ``NormalizationCache``.

Results are written to ``BENCH_pr6.json`` at the repo root
(``bench-serve/v1``).  Runnable standalone
(``python benchmarks/bench_serve.py [--check]``) or under pytest
(``python -m pytest benchmarks/bench_serve.py -q -s``).  The
differential gate always runs; the speedup floor is asserted in check
mode (``--check`` / ``REPRO_BENCH_CHECK=1``) and reported otherwise.
"""

import asyncio
import json
import os
import sys
from pathlib import Path

from repro.aes.annotations import annotated_package
from repro.aes.proof_scripts import aes_proof_scripts
from repro.exec import ExecConfig
from repro.prover import ImplementationProof
from repro.serve import ServeConfig, VerificationService

CHECK_MODE = os.environ.get("REPRO_BENCH_CHECK", "") not in ("", "0")

#: The warm repeat must beat the cold first run by at least this factor
#: (the acceptance floor; a pure cache replay measures far higher).
_MIN_SPEEDUP = 2.0

_OUT = Path(__file__).resolve().parent.parent / "BENCH_pr6.json"


def _verdict_keys(result_message):
    return [(v["subprogram"], v["vc"], v["vc_kind"], v["stage"],
             v["proved"]) for v in result_message["result"]["verdicts"]]


def _reference_keys(typed, scripts, sample):
    outcomes = ImplementationProof(
        typed, scripts=scripts,
        exec=ExecConfig(jobs=1, backend="serial",
                        cache=False)).run(sample).outcomes
    return [(o.vc.subprogram, o.vc.name, o.vc.kind, o.stage,
             o.result.proved if o.result else None) for o in outcomes]


def _submit(sample, lane="bulk", namespace="bench", request_id=None):
    message = {"op": "submit", "kind": "prove",
               "package": {"corpus": "aes"}, "namespace": namespace,
               "subprograms": sample, "lane": lane}
    if request_id is not None:
        message["id"] = request_id
    return message


async def _serve_legs(sample, state_dir):
    """cold / warm / interactive-lane results from one daemon, plus a
    replayed result from a second daemon over the same journal."""
    service = VerificationService(ServeConfig())
    await service.start()
    try:
        results = {}
        for leg, lane, namespace in (
                ("cold", "bulk", "bench"),
                ("warm", "bulk", "bench"),        # same namespace: warm
                ("interactive", "interactive", "bench")):
            accepted = await service.submit(_submit(
                sample, lane=lane, namespace=namespace))
            results[leg] = await service.wait(accepted["id"])
    finally:
        await service.stop()

    # replay leg: admit into a zero-capacity bulk lane (journaled,
    # acknowledged, never run), abandon the service, replay elsewhere
    admit_only = VerificationService(ServeConfig(
        state_dir=state_dir, lanes={"interactive": 1, "bulk": 0}))
    await admit_only.start()
    try:
        await admit_only.submit(_submit(sample, request_id="replayed-1"))
    finally:
        await admit_only.stop()

    replayer = VerificationService(ServeConfig(state_dir=state_dir))
    replayed = await replayer.start()
    assert replayed == 1, "journal replay did not resume the request"
    try:
        results["replay"] = await replayer.wait("replayed-1")
    finally:
        await replayer.stop()
    return results


def run_serve_bench(check: bool, state_dir=None):
    typed = annotated_package()
    scripts = aes_proof_scripts()
    sample = sorted(typed.signatures)[:6]
    reference = _reference_keys(typed, scripts, sample)

    import tempfile
    if state_dir is None:
        state_dir = Path(tempfile.mkdtemp(prefix="bench_serve_")) / "state"
    results = asyncio.run(_serve_legs(sample, state_dir))

    for leg, result in results.items():
        assert result["status"] == "ok", (leg, result.get("error"))
        assert _verdict_keys(result) == reference, \
            f"{leg} verdicts diverge from the serial batch reference"
    warm_stats = results["warm"]["exec_stats"]
    assert warm_stats["cache_misses"] == 0, \
        "warm repeat was not fully served from cache"

    cold_seconds = results["cold"]["run_seconds"]
    warm_seconds = results["warm"]["run_seconds"]
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 \
        else float("inf")

    payload = {
        "schema": "bench-serve/v1",
        "min_speedup": _MIN_SPEEDUP,
        "check_mode": check,
        "sample_subprograms": sample,
        "total_vcs": results["cold"]["result"]["total_vcs"],
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_speedup": speedup,
        "warm_cache_hits": warm_stats["cache_hits"],
        "legs_identical_to_reference": True,
        "replayed_requests": 1,
    }
    _OUT.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"sample        {len(sample)} subprograms, "
          f"{payload['total_vcs']} VCs")
    print(f"cold request  {cold_seconds * 1000:.1f} ms")
    print(f"warm request  {warm_seconds * 1000:.1f} ms "
          f"(speedup {speedup:.1f}x, "
          f"{warm_stats['cache_hits']} cache hits)")
    print("differential  cold == warm == interactive == replayed "
          "== serial batch reference")
    print(f"results       {_OUT.name}")

    floor_ok = speedup >= _MIN_SPEEDUP
    if check:
        assert floor_ok, (
            f"warm repeat speedup {speedup:.2f}x below the "
            f"{_MIN_SPEEDUP}x floor over the cold first request")
    elif not floor_ok:
        print(f"WARNING: speedup {speedup:.2f}x below the "
              f"{_MIN_SPEEDUP}x floor (non-fatal without --check)")
    return payload


def bench_serve_warm_cache(benchmark):
    """Pytest leg: the differential gate always runs; the warm-cache
    speedup floor is enforced in check mode and locally."""
    benchmark.pedantic(lambda: run_serve_bench(check=True),
                       rounds=1, iterations=1)


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    check = "--check" in argv or CHECK_MODE
    unknown = [a for a in argv if a not in ("--check",)]
    if unknown:
        raise SystemExit(f"usage: python benchmarks/bench_serve.py "
                         f"[--check] (got {unknown!r})")
    run_serve_bench(check=check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
