"""Setup shim: enables legacy editable installs (`pip install -e .`) in
offline environments where the `wheel` package is unavailable."""

from setuptools import setup

setup()
