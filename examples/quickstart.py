"""Quickstart: the full Echo process on a small program.

A deliberately "optimized" checksum routine (unrolled loop, magic masking)
is refactored mechanically, annotated, proved against its annotations, and
its extracted specification is proved to imply the original specification.

Run:  python examples/quickstart.py
"""

from repro.core import EchoVerifier
from repro.lang import parse_package
from repro.refactor import ExtractFunction, RerollLoop
from repro.spec import parse_theory

# The program as a developer wrote it: unrolled for speed, an inlined
# "fold" expression cloned four times.
OPTIMIZED = """
package Checksum is

   type Byte is mod 256;
   type Block is array (0 .. 3) of Byte;

   procedure Sum (Data : in Block; Result : out Byte) is
      Acc : Byte;
   begin
      Acc := 0;
      Acc := (Acc + Data (0)) xor 170;
      Acc := (Acc + Data (1)) xor 170;
      Acc := (Acc + Data (2)) xor 170;
      Acc := (Acc + Data (3)) xor 170;
      Result := Acc;
   end Sum;

end Checksum;
"""

# The original (high-level) specification the program was built from.
SPECIFICATION = """
THEORY Checksum
  TYPE Byte = NAT UPTO 255
  TYPE Block = ARRAY 4 OF Byte
  FUN Fold (Acc : Byte, B : Byte) : Byte = XOR((Acc + B) MOD 256, 170)
  REC FUN SumUpto (Data : Block, N : NAT UPTO 4) : Byte MEASURE N =
      IF N = 0 THEN 0 ELSE Fold(SumUpto(Data, N - 1), Data[N - 1]) ENDIF
  FUN Sum (Data : Block) : Byte = SumUpto(Data, 4)
END Checksum
"""


def main():
    verifier = EchoVerifier(
        parse_package(OPTIMIZED),
        parse_theory(SPECIFICATION),
        observables=["Sum"],
    )

    # Verification refactoring: re-roll the unrolled loop, then reverse the
    # inlined fold expression.  Each application is checked by a
    # semantics-preservation theorem (symbolic here: watch the evidence).
    applications = verifier.refactor([
        RerollLoop(subprogram="Sum", start=1, group_size=1, count=4,
                   var="I"),
        ExtractFunction(function_source="""
   function Fold (Acc : in Byte; B : in Byte) return Byte is
   begin
      return (Acc + B) xor 170;
   end Fold;
""", minimum_occurrences=1),
    ])
    for app in applications:
        for theorem in app.theorems:
            print(f"  {app.transformation:18s} preservation: "
                  f"{theorem.status} ({theorem.evidence})")

    print()
    print("refactored program:")
    from repro.lang import print_package
    print(print_package(verifier.engine.package))

    result = verifier.verify()
    print(result.summary())
    assert result.implication.holds


if __name__ == "__main__":
    main()
