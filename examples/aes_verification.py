"""The complete AES case study: verify an optimized AES implementation
against the FIPS-197 specification, exactly as paper section 6 does.

This runs the full Echo process -- 14 transformation blocks with
per-application preservation theorems, annotation, the implementation
proof, specification extraction, and the implication proof -- and prints
the verification argument.  Expect a few minutes of wall time.

Run:  python examples/aes_verification.py
"""

import time

from repro.core import verify_aes


def main():
    started = time.time()
    print("Running the Echo verification of AES (optimized implementation "
          "vs FIPS-197)...")
    result = verify_aes()
    print()
    print(result.summary())
    print()
    print(f"refactored program: {result.refactored_lines} lines; "
          f"extracted specification: {result.extracted_lines} lines")
    counts = {}
    for app in result.applications:
        counts[app.category] = counts.get(app.category, 0) + 1
    print(f"{len(result.applications)} transformations in "
          f"{len(counts)} categories:")
    for category, n in sorted(counts.items(), key=lambda kv: -kv[1]):
        print(f"  {n:3d}  {category}")
    print(f"\ntotal wall time: {time.time() - started:.0f} s")
    assert result.implication.holds


if __name__ == "__main__":
    main()
