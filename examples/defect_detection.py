"""Seeded-defect detection (paper section 7) on a sample of the curated
defect set: where in the Echo process does each defect surface?

Run:  python examples/defect_detection.py
"""

from repro.defects import curated_defects, run_defect


def main():
    defects = curated_defects()
    # One defect per detection stage: refactoring-caught, exception-freedom
    # (implementation proof), functional (implication proof), and the
    # benign one.
    sample_names = {"D02-index-round-key", "D06-index-shift-rows",
                    "D11-reference-sbox", "D15-statement-key-array-length"}
    for defect in defects:
        if defect.name not in sample_names:
            continue
        print(f"{defect.name} ({defect.kind}): {defect.description}")
        for setup in (1, 2):
            outcome = run_defect(defect, setup)
            print(f"  setup {setup}: caught at {outcome.stage!r}"
                  + (f" -- {outcome.detail[:90]}" if outcome.detail else ""))
        print()


if __name__ == "__main__":
    main()
