"""Metrics-guided refactoring (the paper's figure-1 process loop).

Applies the first AES transformation blocks one at a time, printing the
metric review the user sees after each block -- lines of code, cyclomatic
complexity, VC feasibility/size, and the specification-structure match
ratio -- and stops as soon as the metrics gate accepts.

Run:  python examples/metrics_guided_refactoring.py
"""

from repro.aes.blocks import cipher_sampler, transformation_blocks
from repro.aes.fips197 import fips197_theory
from repro.aes.optimized import optimized_source
from repro.core import MetricsGate, RefactoringProcess
from repro.lang import parse_package
from repro.metrics import render_report
from repro.refactor import RefactoringEngine


def main():
    engine = RefactoringEngine(
        parse_package(optimized_source()),
        observables=["Cipher", "Inv_Cipher"],
        check="differential", trials=4,
        samplers={"Cipher": cipher_sampler, "Inv_Cipher": cipher_sampler})
    gate = MetricsGate(require_feasible=True, min_match_percent=60.0)
    process = RefactoringProcess(engine, fips197_theory(), gate=gate)

    print("block 0 (original optimized implementation):")
    print(render_report(process.measure("block 0")))
    print()

    for index, transformations in transformation_blocks():
        accepted = process.step(transformations, label=f"block {index}")
        print(f"block {index}:")
        print(render_report(process.history[-1]))
        print(f"  metrics gate accepts: {accepted}")
        print()
        if accepted:
            print(f"gate satisfied after block {index}; the proofs can be "
                  f"attempted (the paper kept refactoring until the "
                  f"analysis time stabilized).")
            break


if __name__ == "__main__":
    main()
