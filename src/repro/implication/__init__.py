"""Implication proof: extracted specification implies the original
specification, as a series of lemmas over the architectural map."""

from .lemmas import Lemma, generate_lemmas, implication_tccs
from .prover import LemmaOutcome, SpecTermError, discharge_lemma
from .theorem import ImplicationResult, prove_implication

__all__ = [
    "Lemma", "generate_lemmas", "implication_tccs",
    "LemmaOutcome", "discharge_lemma", "SpecTermError",
    "ImplicationResult", "prove_implication",
]
