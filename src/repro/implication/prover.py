"""Discharging implication lemmas.

Strategies, strongest first (the evidence level is recorded per lemma):

``table``        table lemmas compare constant values outright (a proof);
``symbolic``     both function bodies are symbolically evaluated to terms
                 (Build/Let unrolled, arrays as store chains, matched
                 callee names unified via the architectural map -- i.e.
                 by appeal to already-proved lemmas, which is exactly
                 proof by congruence) and the normal forms are identical;
``exhaustive``   the parameter domain is finite and small: both sides are
                 evaluated on every input (proof by evaluation);
``sampled``      random inputs only -- honest evidence, not proof; this is
                 where our mechanization is weaker than the paper's
                 interactive PVS proofs (see DESIGN.md).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..extract.mapper import ArchitecturalMap
from ..logic import (
    Rewriter, Rule, Term, default_rules, eq, intc, ite, select, store, var,
)
from ..spec import SpecEvalError, SpecEvaluator
from ..spec import ast as s
from .lemmas import Lemma

__all__ = ["LemmaOutcome", "discharge_lemma", "SpecTermError"]

_EXHAUSTIVE_LIMIT = 1 << 16
_SAMPLE_TRIALS = 48
_UNROLL_BUDGET = 300_000


class SpecTermError(Exception):
    pass


@dataclass(frozen=True)
class LemmaOutcome:
    lemma: Lemma
    proved: bool
    evidence: str    # 'table', 'symbolic', 'exhaustive', 'sampled'
    is_proof: bool   # sampled evidence is not a proof
    detail: str = ""
    manual_steps: int = 0


# ---------------------------------------------------------------------------
# Symbolic evaluation of spec functions into terms
# ---------------------------------------------------------------------------

class _SpecTermBuilder:
    """Evaluates a spec function body to a term over its parameters.

    ``rename`` maps function/table names into a common namespace (the
    original side's names) -- applying it to the extracted side is the
    proof-by-congruence appeal to previously proved lemmas.  Functions not
    in the rename map are inlined (depth-limited)."""

    def __init__(self, theory: s.Theory, rename: Dict[str, str],
                 inline_depth: int = 80):
        self.theory = theory
        self.rename = rename
        self.inline_depth = inline_depth
        self.functions = {d.name: d for d in theory.functions()}
        self.tables = {d.name for d in theory.constants()}
        self.steps = 0
        self._call_memo = {}

    def _charge(self):
        self.steps += 1
        if self.steps > _UNROLL_BUDGET:
            raise SpecTermError("symbolic spec budget exceeded")

    def function_term(self, fname: str, fixed=None) -> Term:
        fn = self.functions[fname]
        env = {}
        for i, (p, _) in enumerate(fn.params):
            if fixed and p in fixed:
                env[p] = intc(fixed[p])
            else:
                env[p] = var(f"arg{i}")
        return self._eval(fn.body, env, depth=0)

    def _eval(self, e: s.SExpr, env: Dict[str, Term], depth: int) -> Term:
        self._charge()
        from ..logic import (add, band, bor, conj, disj, divi, ge, gt, le,
                             lt, modi, mul, ne, neg, shl, shr, sub, xor,
                             apply, boolc)
        if isinstance(e, s.Num):
            return intc(e.value)
        if isinstance(e, s.BoolConst):
            return boolc(e.value)
        if isinstance(e, s.Var):
            if e.name in env:
                return env[e.name]
            if e.name in self.tables:
                return var(self.rename.get(e.name, e.name))
            raise SpecTermError(f"unbound '{e.name}'")
        if isinstance(e, s.TableLit):
            base: Term = var("#undef")
            for i, value in enumerate(e.values):
                base = store(base, intc(i), intc(value))
            return base
        if isinstance(e, s.ArrayLit):
            base = var("#undef")
            for i, item in enumerate(e.items):
                base = store(base, intc(i), self._eval(item, env, depth))
            return base
        if isinstance(e, s.Build):
            base = var("#undef")
            inner = dict(env)
            for i in range(e.size):
                inner[e.var] = intc(i)
                base = store(base, intc(i), self._eval(e.body, inner, depth))
            return base
        if isinstance(e, s.Index):
            if isinstance(e.array, s.Var) and e.array.name in self.tables \
                    and e.array.name not in env:
                name = self.rename.get(e.array.name, e.array.name)
                return apply(name, self._eval(e.index, env, depth))
            arr = self._eval(e.array, env, depth)
            return select(arr, self._eval(e.index, env, depth))
        if isinstance(e, s.IfExpr):
            cond = self._eval(e.cond, env, depth)
            # Fold decided conditions before building branches: this is what
            # bottoms out recursive definitions applied at literal arguments.
            if cond.is_true:
                return self._eval(e.then, env, depth)
            if cond.is_false:
                return self._eval(e.orelse, env, depth)
            return ite(cond,
                       self._eval(e.then, env, depth),
                       self._eval(e.orelse, env, depth))
        if isinstance(e, s.Let):
            inner = dict(env)
            inner[e.var] = self._eval(e.value, env, depth)
            return self._eval(e.body, inner, depth)
        if isinstance(e, s.Bin):
            left = self._eval(e.left, env, depth)
            right = self._eval(e.right, env, depth)
            ops = {"+": add, "-": sub, "*": mul, "DIV": divi, "MOD": modi,
                   "<": lt, "<=": le, ">": gt, ">=": ge, "=": eq,
                   "/=": ne, "AND": conj, "OR": disj}
            return ops[e.op](left, right)
        if isinstance(e, s.Call):
            builtins = {"XOR": xor, "BITAND": band, "BITOR": bor,
                        "SHL": shl, "SHR": shr}
            args = [self._eval(a, env, depth) for a in e.args]
            if e.fn in builtins:
                return builtins[e.fn](*args)
            if e.fn == "NOT":
                return neg(args[0])
            if e.fn in self.rename:
                return apply(self.rename[e.fn], *args)
            callee = self.functions.get(e.fn)
            if callee is None:
                raise SpecTermError(f"unknown function '{e.fn}'")
            if depth >= self.inline_depth:
                if callee.recursive:
                    raise SpecTermError(
                        f"recursion in {e.fn} did not bottom out")
                return apply(e.fn, *args)
            inner = {p: a for (p, _), a in zip(callee.params, args)}
            memo_key = None
            if all(not a.free_vars() or a.op == "var" for a in args):
                memo_key = (e.fn, tuple(a._id for a in args))
                hit = self._call_memo.get(memo_key)
                if hit is not None:
                    return hit
            result = self._eval(callee.body, inner,
                                depth + (1 if not callee.recursive else 1))
            if memo_key is not None:
                self._call_memo[memo_key] = result
            return result
        raise SpecTermError(f"cannot build term for {type(e).__name__}")


def _rule_select_store_split(term: Term):
    if term.op != "select":
        return None
    arr, idx = term.args
    if arr.op != "store":
        return None
    base, widx, wval = arr.args
    return ite(eq(widx, idx), wval, select(base, idx))


_normalizer = None


def _normalize(term: Term) -> Term:
    global _normalizer
    if _normalizer is None:
        _normalizer = Rewriter(
            default_rules()
            + [Rule("select-store-split", "arrays", _rule_select_store_split)])
    return _normalizer.normalize(term)


# ---------------------------------------------------------------------------
# Domain enumeration / sampling
# ---------------------------------------------------------------------------

_SWEEP_LIMIT = 16  # max cases for a small-parameter sweep
_SWEEP_PARAM_MAX = 31


def _small_param_sweep(theory: s.Theory, fname: str, param_types):
    """Bindings fixing every tiny scalar parameter to each of its values
    (so, e.g., a round-number parameter is swept 0..10 while the key stays
    symbolic).  Returns [{}] when no such parameter exists."""
    from ..spec.typecheck import _Checker
    checker = _Checker(theory)
    checker.run()
    fn = checker.functions[fname]
    names = [p for p, _ in fn.params]
    candidates = []
    for name, t in zip(names, param_types):
        if isinstance(t, s.SubrangeType) and t.hi <= _SWEEP_PARAM_MAX:
            candidates.append((name, t.hi))
    if not candidates:
        return [{}]
    total = 1
    for _, hi in candidates:
        total *= hi + 1
    if total > _SWEEP_LIMIT:
        return [{}]
    sweeps = [{}]
    for name, hi in candidates:
        sweeps = [dict(b, **{name: v}) for b in sweeps
                  for v in range(hi + 1)]
    return sweeps


def _resolved_param_types(theory: s.Theory, fname: str):
    from ..spec.typecheck import _Checker, _resolve
    checker = _Checker(theory)
    checker.run()
    fn = checker.functions[fname]
    return [_resolve(t, checker.types) for _, t in fn.params]


def _domain_size(types) -> Optional[int]:
    total = 1
    for t in types:
        if isinstance(t, s.SubrangeType):
            total *= t.hi + 1
        elif isinstance(t, s.BoolType):
            total *= 2
        else:
            return None
        if total > _EXHAUSTIVE_LIMIT:
            return None
    return total


def _enumerate(types):
    ranges = []
    for t in types:
        if isinstance(t, s.SubrangeType):
            ranges.append(range(t.hi + 1))
        else:
            ranges.append((False, True))
    return itertools.product(*ranges)


def _sample(t, rng: random.Random):
    if isinstance(t, s.SubrangeType):
        return rng.randint(0, t.hi)
    if isinstance(t, s.BoolType):
        return bool(rng.getrandbits(1))
    if isinstance(t, s.NatType):
        return rng.randint(0, 2**20)
    if isinstance(t, s.ArrayTypeS):
        return tuple(_sample(t.elem, rng) for _ in range(t.size))
    raise SpecTermError(f"cannot sample {t!r}")


# ---------------------------------------------------------------------------
# Lemma discharge
# ---------------------------------------------------------------------------

def discharge_lemma(lemma: Lemma,
                    original: s.Theory, extracted: s.Theory,
                    amap: ArchitecturalMap,
                    orig_eval: SpecEvaluator, ext_eval: SpecEvaluator,
                    seed: int = 20090701) -> LemmaOutcome:
    if lemma.kind == "table":
        left = orig_eval.constant(lemma.original)
        right = ext_eval.constant(lemma.extracted)
        return LemmaOutcome(
            lemma=lemma, proved=left == right, evidence="table",
            is_proof=True,
            detail=f"{len(left)} entries compared")

    # Function lemma.  1) symbolic comparison with congruence renaming:
    # matched elements stay as applications on both sides (appealing to
    # their already-proved lemmas); unmatched definitions are expanded.
    rename_ext = {p.extracted: p.original for p in amap.pairs}
    rename_orig = {p.original: p.original for p in amap.pairs}
    # The lemma under proof must not appeal to itself.
    rename_ext.pop(lemma.extracted, None)
    rename_orig.pop(lemma.original, None)
    manual_steps = 0
    param_types = _resolved_param_types(original, lemma.original)
    sweep = _small_param_sweep(original, lemma.original, param_types)
    try:
        orig_builder = _SpecTermBuilder(original, rename=rename_orig)
        ext_builder = _SpecTermBuilder(extracted, rename=rename_ext)
        manual_steps = 2  # expand definitions on both sides
        proved_symbolically = True
        for fixed in sweep:
            orig_term = orig_builder.function_term(lemma.original, fixed)
            ext_term = ext_builder.function_term(lemma.extracted, fixed)
            if _normalize(orig_term) is not _normalize(ext_term):
                proved_symbolically = False
                break
        if proved_symbolically:
            cases = "" if len(sweep) == 1 else f" ({len(sweep)} cases)"
            return LemmaOutcome(
                lemma=lemma, proved=True, evidence="symbolic", is_proof=True,
                detail="normal forms identical after definition expansion "
                       f"and congruence renaming{cases}",
                manual_steps=manual_steps + (len(sweep) if len(sweep) > 1
                                             else 0))
    except SpecTermError:
        pass

    # 2) exhaustive evaluation over small finite domains.
    size = _domain_size(param_types)
    if size is not None:
        for args in _enumerate(param_types):
            try:
                left = orig_eval.call(lemma.original, list(args))
                right = ext_eval.call(lemma.extracted, list(args))
            except SpecEvalError as exc:
                return LemmaOutcome(
                    lemma=lemma, proved=False, evidence="exhaustive",
                    is_proof=True, detail=f"evaluation fault at {args}: {exc}")
            if left != right:
                return LemmaOutcome(
                    lemma=lemma, proved=False, evidence="exhaustive",
                    is_proof=True,
                    detail=f"counterexample at {args}: {left} /= {right}")
        return LemmaOutcome(
            lemma=lemma, proved=True, evidence="exhaustive", is_proof=True,
            detail=f"all {size} inputs agree", manual_steps=manual_steps + 1)

    # 3) sampled evaluation.
    rng = random.Random(seed)
    for trial in range(_SAMPLE_TRIALS):
        args = [_sample(t, rng) for t in param_types]
        try:
            left = orig_eval.call(lemma.original, list(args))
            right = ext_eval.call(lemma.extracted, list(args))
        except SpecEvalError as exc:
            return LemmaOutcome(
                lemma=lemma, proved=False, evidence="sampled", is_proof=False,
                detail=f"evaluation fault: {exc}")
        if left != right:
            return LemmaOutcome(
                lemma=lemma, proved=False, evidence="sampled", is_proof=False,
                detail=f"counterexample on trial {trial + 1}")
    return LemmaOutcome(
        lemma=lemma, proved=True, evidence="sampled", is_proof=False,
        detail=f"{_SAMPLE_TRIALS} random inputs agree",
        manual_steps=manual_steps + 2)
