"""The implication theorem: extracted specification implies the original.

``prove_implication`` builds the architectural map, generates one lemma per
matched element (callees first), discharges each, and reports the overall
theorem with the quantities section 6.2.4 of the paper gives: lemma count,
TCC counts with automatic/subsumed split, and which lemmas needed which
evidence level.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

from ..exec.config import coerce_exec_config, reject_legacy_exec_kwargs
from ..extract.mapper import ArchitecturalMap, build_map
from ..extract.matchratio import MatchRatio, match_ratio
from ..prover import AutoProver
from ..spec import SpecEvaluator, ast as s
from .lemmas import Lemma, generate_lemmas, implication_tccs
from .prover import LemmaOutcome, discharge_lemma

__all__ = ["ImplicationResult", "prove_implication"]


@dataclass
class ImplicationResult:
    original: s.Theory
    extracted: s.Theory
    map: ArchitecturalMap
    ratio: MatchRatio
    outcomes: List[LemmaOutcome]
    tcc_total: int
    tcc_proved: int
    tcc_subsumed: int
    tcc_unproved: int
    wall_seconds: float

    @property
    def lemma_count(self) -> int:
        return len(self.outcomes)

    @property
    def holds(self) -> bool:
        return (bool(self.outcomes)
                and all(o.proved for o in self.outcomes)
                and self.tcc_unproved == 0)

    @property
    def is_proof(self) -> bool:
        """True when every lemma was discharged at a proof-strength level
        (no sampled evidence)."""
        return self.holds and all(o.is_proof for o in self.outcomes)

    @property
    def failed(self) -> List[LemmaOutcome]:
        return [o for o in self.outcomes if not o.proved]

    def by_evidence(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for o in self.outcomes:
            out[o.evidence] = out.get(o.evidence, 0) + 1
        return out

    @property
    def interactive_lemmas(self) -> int:
        """Lemmas that needed 'manual guidance' (tactic steps beyond plain
        automation) -- the paper: "In most cases, the PVS theorem prover
        could not prove the lemmas completely automatically"."""
        return sum(1 for o in self.outcomes if o.manual_steps > 0)

    @property
    def total_manual_steps(self) -> int:
        return sum(o.manual_steps for o in self.outcomes)


def prove_implication(original: s.Theory, extracted: s.Theory,
                      seed: int = 20090701,
                      exec=None,
                      **legacy) -> ImplicationResult:
    """Prove the implication theorem.

    Lemma discharge runs through the obligation scheduler
    (:mod:`repro.exec`): one ``lemma`` obligation per architectural-map
    element.  ``exec`` is the :class:`~repro.exec.ExecConfig` for the
    run (the PR-3 era bare ``jobs``/``cache``/``telemetry`` shims are
    gone and raise ``TypeError``).  The serial path runs lemmas inline in the
    historical order with the shared evaluator pair (bit-identical to
    the pre-scheduler path); a thread pool uses one evaluator pair per
    worker thread (``SpecEvaluator`` carries a mutable memo and step
    budget, so instances are not shared across threads); worker
    processes rebuild the whole theory context from a declarative
    :class:`~repro.exec.LemmaPayload`.  Results are cached
    content-addressed on (theory texts, lemma identity, seed).
    """
    import threading

    from ..exec import LemmaPayload, lemma_obligation, theory_fingerprint

    reject_legacy_exec_kwargs("prove_implication", legacy)
    config = coerce_exec_config(exec, owner="prove_implication")

    started = time.perf_counter()
    amap = build_map(original, extracted)
    ratio = match_ratio(original, extracted)
    lemmas = generate_lemmas(original, amap)

    orig_eval = SpecEvaluator(original)
    ext_eval = SpecEvaluator(extracted)
    tls = threading.local()

    def evaluators():
        if config.effective_serial:
            return orig_eval, ext_eval
        pair = getattr(tls, "pair", None)
        if pair is None:
            pair = (SpecEvaluator(original), SpecEvaluator(extracted))
            tls.pair = pair
        return pair

    original_fp = theory_fingerprint(original)
    extracted_fp = theory_fingerprint(extracted)

    def discharger(lemma):
        def discharge():
            o_eval, e_eval = evaluators()
            return discharge_lemma(lemma, original, extracted, amap,
                                   o_eval, e_eval, seed=seed)
        return discharge

    obligations = [
        lemma_obligation(lemma, discharger(lemma),
                         original_fp=original_fp, extracted_fp=extracted_fp,
                         seed=seed,
                         payload=LemmaPayload(
                             original=original, extracted=extracted,
                             original_fp=original_fp,
                             extracted_fp=extracted_fp,
                             lemma_name=lemma.name, seed=seed))
        for lemma in lemmas
    ]
    outcomes = [result.value
                for result in config.scheduler().run(obligations)]

    # Implication-theorem TCCs, discharged automatically with subsumption
    # accounting (duplicates across byte-typed signatures).
    tccs = implication_tccs(original, extracted, amap)
    prover = AutoProver()
    proved = subsumed = unproved = 0
    outcome_by_term: Dict[int, bool] = {}
    for tcc in tccs:
        known = outcome_by_term.get(tcc._id)
        if known is not None:
            subsumed += 1
            if not known:
                unproved += 1
            continue
        result = prover.prove(tcc)
        outcome_by_term[tcc._id] = result.proved
        if result.proved:
            proved += 1
        else:
            unproved += 1

    return ImplicationResult(
        original=original, extracted=extracted, map=amap, ratio=ratio,
        outcomes=outcomes,
        tcc_total=len(tccs), tcc_proved=proved, tcc_subsumed=subsumed,
        tcc_unproved=unproved,
        wall_seconds=time.perf_counter() - started,
    )
