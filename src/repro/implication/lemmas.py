"""Lemma generation for the implication proof.

The implication theorem is "structured as a series of lemmas about the
specification architecture" (section 4.1): one lemma per matched element of
the architectural map, ordered so that callees precede callers (a caller's
lemma is then dischargeable by congruence from its callees' lemmas).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..logic import Term, eq, forall, var, apply, mk
from ..extract.mapper import ArchitecturalMap, MatchedPair
from ..spec import ast as s

__all__ = ["Lemma", "generate_lemmas", "implication_tccs"]


@dataclass(frozen=True)
class Lemma:
    """One implication lemma: the matched elements denote equal values."""

    name: str
    kind: str            # 'table' or 'function'
    original: str
    extracted: str
    statement: Term      # for reporting; foralls over parameters


def _call_order(theory: s.Theory) -> List[str]:
    """Function names in callee-before-caller order."""
    functions = {d.name: d for d in theory.functions()}
    order: List[str] = []
    visiting: Set[str] = set()

    def visit(name: str):
        if name in order or name not in functions:
            return
        if name in visiting:
            return  # recursion: self-call, order irrelevant
        visiting.add(name)
        for node in s.walk_spec(functions[name].body):
            if isinstance(node, s.Call):
                visit(node.fn)
        visiting.discard(name)
        order.append(name)

    for name in functions:
        visit(name)
    return order


def generate_lemmas(original: s.Theory, amap: ArchitecturalMap
                    ) -> List[Lemma]:
    lemmas: List[Lemma] = []
    table_pairs = {p.original: p for p in amap.table_pairs()}
    fn_pairs = {p.original: p for p in amap.function_pairs()}

    for d in original.constants():
        pair = table_pairs.get(d.name)
        if pair is None:
            continue
        statement = eq(var(f"{pair.original}"), var(f"{pair.extracted}~ext"))
        lemmas.append(Lemma(
            name=f"{pair.original}_table_eq", kind="table",
            original=pair.original, extracted=pair.extracted,
            statement=statement))

    functions = {d.name: d for d in original.functions()}
    for name in _call_order(original):
        pair = fn_pairs.get(name)
        if pair is None:
            continue
        fn = functions[name]
        params = tuple(p for p, _ in fn.params)
        lhs = apply(pair.original, *(var(p) for p in params))
        rhs = apply(f"{pair.extracted}~ext", *(var(p) for p in params))
        statement = forall(params, eq(lhs, rhs)) if params else eq(lhs, rhs)
        lemmas.append(Lemma(
            name=f"{pair.original}_eq", kind="function",
            original=pair.original, extracted=pair.extracted,
            statement=statement))
    return lemmas


def implication_tccs(original: s.Theory, extracted: s.Theory,
                     amap: ArchitecturalMap) -> List[Term]:
    """Type-correctness conditions of the implication theorem: for every
    matched function, each original-side parameter value must be acceptable
    to the extracted side (and the extracted result must fit the original
    result type).  Built with the raw constructor so duplicates across the
    many byte-typed signatures surface as *subsumed* TCCs rather than
    folding away."""
    from ..spec.typecheck import _Checker, _static_bounds

    check_orig = _Checker(original)
    check_orig.run()
    check_ext = _Checker(extracted)
    check_ext.run()

    def bounds_of(checker, fname):
        fn = checker.functions[fname]
        params = []
        for pname, ptype in fn.params:
            resolved = _resolve_type(checker, ptype)
            params.append(_static_bounds(resolved))
        result = _static_bounds(_resolve_type(checker, fn.return_type))
        return params, result

    def _resolve_type(checker, t):
        from ..spec.typecheck import _resolve
        return _resolve(t, checker.types)

    tccs: List[Term] = []
    v = var("v?")
    for pair in amap.function_pairs():
        orig_params, orig_result = bounds_of(check_orig, pair.original)
        ext_params, ext_result = bounds_of(check_ext, pair.extracted)
        if len(orig_params) != len(ext_params):
            continue
        for ob, eb in zip(orig_params, ext_params):
            if ob is None or eb is None:
                continue
            guard = mk("and", (mk("le", (mk("int", value=ob[0]), v)),
                               mk("le", (v, mk("int", value=ob[1])))))
            concl = mk("and", (mk("le", (mk("int", value=eb[0]), v)),
                               mk("le", (v, mk("int", value=eb[1])))))
            tccs.append(mk("forall", (mk("implies", (guard, concl)),),
                           value=("v?",)))
        if orig_result is not None and ext_result is not None:
            guard = mk("and", (mk("le", (mk("int", value=ext_result[0]), v)),
                               mk("le", (v, mk("int", value=ext_result[1])))))
            concl = mk("and", (mk("le", (mk("int", value=orig_result[0]), v)),
                               mk("le", (v, mk("int", value=orig_result[1])))))
            tccs.append(mk("forall", (mk("implies", (guard, concl)),),
                           value=("v?",)))
    return tccs
