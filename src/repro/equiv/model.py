"""The state-transition semantics model behind semantics preservation.

The paper (section 5.1) defines refactoring soundness as::

    init_state(P) = init_state(P') => final_state(P) = final_state(P')

with system states modeled as mappings from identifiers to values and
subprograms as transitions between states.  This module provides exactly
those notions concretely: a :class:`State` is a name->value mapping over a
subprogram's visible variables, and :func:`final_state` runs the concrete
interpreter to produce the transition's output.

The simplifying assumptions the paper makes are inherited: programs
terminate (the interpreter has a step budget), execution time is not
preserved, and intermediate states need not match -- only the initial and
final states do.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..lang import Interpreter, TypedPackage
from ..lang import ast
from ..lang.types import (
    ArrayType, BooleanType, IntegerType, ModularType, RangeType, Type,
)

__all__ = ["State", "final_state", "random_value", "random_state",
           "input_params", "observable_params", "state_key", "domain_size"]

#: A program state: identifier -> value (ints, bools, lists for arrays).
State = Dict[str, object]

_INTEGER_SAMPLE_RANGE = (-2**31, 2**31 - 1)


def input_params(sp: ast.Subprogram) -> List[ast.Param]:
    return [p for p in sp.params if p.mode in ("in", "in out")]


def observable_params(sp: ast.Subprogram) -> List[ast.Param]:
    return [p for p in sp.params if p.mode != "in"]


def random_value(t: Type, rng: random.Random):
    if isinstance(t, ModularType):
        return rng.randrange(t.modulus)
    if isinstance(t, RangeType):
        return rng.randint(t.lo, t.hi)
    if isinstance(t, BooleanType):
        return bool(rng.getrandbits(1))
    if isinstance(t, IntegerType):
        return rng.randint(*_INTEGER_SAMPLE_RANGE)
    if isinstance(t, ArrayType):
        return [random_value(t.elem, rng) for _ in range(t.length)]
    raise TypeError(f"cannot sample type {t!r}")


def random_state(typed: TypedPackage, sp: ast.Subprogram,
                 rng: random.Random) -> State:
    """A random initial state covering the subprogram's input parameters."""
    state: State = {}
    for p in input_params(sp):
        state[p.name] = random_value(typed.type_named(p.type_name), rng)
    return state


def domain_size(typed: TypedPackage, sp: ast.Subprogram,
                limit: int) -> Optional[int]:
    """Size of the input domain if finite and below ``limit``, else None."""
    total = 1
    for p in input_params(sp):
        t = typed.type_named(p.type_name)
        if isinstance(t, ModularType):
            total *= t.modulus
        elif isinstance(t, RangeType):
            total *= (t.hi - t.lo + 1)
        elif isinstance(t, BooleanType):
            total *= 2
        else:
            return None
        if total > limit:
            return None
    return total


def final_state(typed: TypedPackage, name: str, initial: State,
                step_limit: int = 50_000_000) -> State:
    """Run the subprogram transition from ``initial``; returns the final
    observable state (out/in-out parameters, or ``Result`` for functions)."""
    sp = typed.signatures[name]
    interp = Interpreter(typed, step_limit=step_limit, check_asserts=False)
    if sp.is_function:
        args = [initial[p.name] for p in sp.params]
        return {"Result": interp.call_function(name, args)}
    args = []
    for p in sp.params:
        args.append(initial.get(p.name))
    return interp.call_procedure(name, args)


def state_key(state: State) -> Tuple:
    """Hashable canonical form of a state (for comparison and memoizing)."""
    def freeze(v):
        if isinstance(v, list):
            return tuple(freeze(x) for x in v)
        return v
    return tuple(sorted((k, freeze(v)) for k, v in state.items()))


@dataclass(frozen=True)
class TransitionSemantics:
    """Formal reading of a subprogram: a transition between states.

    ``init_vars`` are the identifiers the transition reads; ``final_vars``
    the ones it defines.  Two subprograms with the same signature are
    semantics-equivalent iff for every initial state the final states agree
    (the theorem :mod:`repro.equiv.theorem` discharges)."""

    subprogram: str
    init_vars: Tuple[str, ...]
    final_vars: Tuple[str, ...]

    @staticmethod
    def of(sp: ast.Subprogram) -> "TransitionSemantics":
        return TransitionSemantics(
            subprogram=sp.name,
            init_vars=tuple(p.name for p in input_params(sp)),
            final_vars=tuple(p.name for p in observable_params(sp))
            if not sp.is_function else ("Result",),
        )
