"""Differential testing of semantics preservation.

Runs two subprograms (usually the same name before/after a refactoring)
from equal random initial states and compares final states -- a direct
dynamic check of the paper's preservation theorem.  Used standalone for
quick screening and as the fallback evidence level when the input domain is
too large to enumerate and the programs are outside the symbolically
summarizable fragment.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..lang import TypedPackage
from ..lang.errors import MiniAdaError
from .model import (
    State, domain_size, final_state, input_params, random_state, state_key,
)

__all__ = ["Counterexample", "DifferentialResult", "differential_check",
           "exhaustive_check", "enumerate_states"]


@dataclass(frozen=True)
class Counterexample:
    initial: State
    left_final: Optional[State]
    right_final: Optional[State]
    left_error: Optional[str] = None
    right_error: Optional[str] = None


@dataclass(frozen=True)
class DifferentialResult:
    equivalent: bool
    trials: int
    counterexample: Optional[Counterexample] = None


def _run(typed: TypedPackage, name: str, initial: State):
    try:
        return final_state(typed, name, dict(initial)), None
    except MiniAdaError as exc:
        return None, str(exc)


def _compare(left_typed, left_name, right_typed, right_name, initial,
             ) -> Optional[Counterexample]:
    left, left_err = _run(left_typed, left_name, initial)
    right, right_err = _run(right_typed, right_name, initial)
    if left_err or right_err:
        # A fault on one side only, or differing faults, is a difference;
        # matching faults (both raise) still count as disagreement unless
        # both fault identically -- refactoring must preserve non-faulting
        # executions, and our case studies use non-faulting domains.
        if left_err and right_err:
            return None
        return Counterexample(initial=initial, left_final=left,
                              right_final=right, left_error=left_err,
                              right_error=right_err)
    if state_key(left) != state_key(right):
        return Counterexample(initial=initial, left_final=left,
                              right_final=right)
    return None


def differential_check(left_typed: TypedPackage, left_name: str,
                       right_typed: TypedPackage, right_name: str,
                       trials: int = 64, seed: int = 20090701,
                       sampler=None) -> DifferentialResult:
    """Random differential test over ``trials`` equal initial states.

    ``sampler(rng)`` overrides initial-state generation -- needed when the
    meaningful input domain is narrower than the declared types (e.g. AES
    key lengths are 4/6/8 words, not 5 or 7)."""
    sp_left = left_typed.signatures[left_name]
    sp_right = right_typed.signatures[right_name]
    left_ins = [p.name for p in input_params(sp_left)]
    right_ins = [p.name for p in input_params(sp_right)]
    if left_ins != right_ins:
        raise ValueError(
            f"signatures differ: {left_name} vs {right_name}")
    rng = random.Random(seed)
    for trial in range(trials):
        initial = sampler(rng) if sampler is not None \
            else random_state(left_typed, sp_left, rng)
        cx = _compare(left_typed, left_name, right_typed, right_name, initial)
        if cx is not None:
            return DifferentialResult(equivalent=False, trials=trial + 1,
                                      counterexample=cx)
    return DifferentialResult(equivalent=True, trials=trials)


def enumerate_states(typed: TypedPackage, sp) -> List[State]:
    """All initial states of a finite-domain subprogram."""
    names = []
    value_ranges = []
    for p in input_params(sp):
        t = typed.type_named(p.type_name)
        names.append(p.name)
        if hasattr(t, "modulus"):
            value_ranges.append(range(t.modulus))
        elif hasattr(t, "lo") and hasattr(t, "hi") and not hasattr(t, "elem"):
            value_ranges.append(range(t.lo, t.hi + 1))
        elif t.name == "Boolean":
            value_ranges.append((False, True))
        else:
            raise ValueError(f"{p.name}: domain not enumerable")
    return [dict(zip(names, combo))
            for combo in itertools.product(*value_ranges)]


def exhaustive_check(left_typed: TypedPackage, left_name: str,
                     right_typed: TypedPackage, right_name: str,
                     limit: int = 1 << 16) -> DifferentialResult:
    """Exhaustive equivalence check over a finite input domain."""
    sp = left_typed.signatures[left_name]
    size = domain_size(left_typed, sp, limit)
    if size is None:
        raise ValueError(f"{left_name}: domain exceeds limit {limit}")
    trials = 0
    for initial in enumerate_states(left_typed, sp):
        trials += 1
        cx = _compare(left_typed, left_name, right_typed, right_name, initial)
        if cx is not None:
            return DifferentialResult(equivalent=False, trials=trials,
                                      counterexample=cx)
    return DifferentialResult(equivalent=True, trials=trials)
