"""Semantics-preservation machinery (PVS transformation proofs substitute).

See DESIGN.md: the theorem proved per transformation application is the
paper's ``init_state(P) = init_state(P') => final_state(P) =
final_state(P')``, discharged by symbolic summary equality, exhaustive
evaluation, or differential testing -- with the evidence level recorded on
the theorem object.
"""

from .differential import (
    Counterexample, DifferentialResult, differential_check, enumerate_states,
    exhaustive_check,
)
from .model import (
    State, TransitionSemantics, domain_size, final_state, input_params,
    observable_params, random_state, random_value, state_key,
)
from .symbolic import SymbolicExecutor, SymbolicSummary, UnsupportedProgram
from .theorem import EXHAUSTIVE_LIMIT, EquivalenceTheorem, prove_equivalence

__all__ = [
    "State", "TransitionSemantics", "final_state", "random_state",
    "random_value", "state_key", "input_params", "observable_params",
    "domain_size",
    "Counterexample", "DifferentialResult", "differential_check",
    "exhaustive_check", "enumerate_states",
    "SymbolicExecutor", "SymbolicSummary", "UnsupportedProgram",
    "EquivalenceTheorem", "prove_equivalence", "EXHAUSTIVE_LIMIT",
]
