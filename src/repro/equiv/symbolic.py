"""Forward symbolic execution of MiniAda subprograms.

Executes a subprogram over *terms* instead of values: parameters start as
logic variables, assignments fold through the smart constructors, branches
merge with ``ite``, and literal-bounded loops unroll.  The result maps each
observable output to a term over the input variables -- a closed-form
summary of the subprogram.

Uses:

* **semantics-preservation proofs** -- two subprograms whose summaries
  normalize to the same term are equivalent on all inputs
  (:mod:`repro.equiv.theorem`);
* the prover's ``expand`` tactic (definition expansion of called
  functions, exactly the "expansion of function definitions" the paper's
  interactive PVS proofs used);
* strongest-postcondition-style annotation synthesis for the defect
  experiment's setup 1 (annotations that describe the code as it is).

Programs with while-loops or dynamically bounded for-loops are not
summarizable this way; ``execute`` returns ``None`` with a reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..lang import TypedPackage, ast
from ..lang.types import ArrayType
from ..logic import Term, conj, disj, intc, ite, neg, select, store, var
from ..vcgen.translate import TranslationContext, translate_expr

__all__ = ["SymbolicSummary", "SymbolicExecutor", "UnsupportedProgram"]


class UnsupportedProgram(Exception):
    """The subprogram cannot be summarized symbolically."""


@dataclass
class SymbolicSummary:
    """Closed-form summary: observable name -> term over input variables."""

    subprogram: str
    outputs: Dict[str, Term]
    steps: int


class _Stop(Exception):
    """Internal: budget exhausted."""


class SymbolicExecutor:
    def __init__(self, typed: TypedPackage, max_steps: int = 200_000,
                 inline_depth: int = 16):
        self.typed = typed
        self.max_steps = max_steps
        self.inline_depth = inline_depth
        self.steps = 0

    # -- public ----------------------------------------------------------

    def execute(self, name: str) -> SymbolicSummary:
        """Summarize subprogram ``name``; raises UnsupportedProgram for
        shapes outside the summarizable fragment."""
        self.steps = 0
        sp = self.typed.signatures[name]
        state: Dict[str, Term] = {}
        for p in sp.params:
            if p.mode == "out":
                state[p.name] = var(f"{p.name}#uninit")
            else:
                state[p.name] = var(p.name)
        for d in sp.decls:
            state[d.name] = var(f"{d.name}#uninit")
        ctx = self.typed.context(sp.name).runtime_view()
        for d in sp.decls:
            if d.init is not None:
                state[d.name] = self._expr(d.init, state, ctx, sp)
        returned, result = self._block(sp.body, state, ctx, sp, depth=0)
        outputs: Dict[str, Term] = {}
        if sp.is_function:
            if result is None:
                raise UnsupportedProgram(f"{name}: no return value computed")
            outputs["Result"] = result
        else:
            for p in sp.params:
                if p.mode != "in":
                    outputs[p.name] = state[p.name]
        return SymbolicSummary(subprogram=name, outputs=outputs,
                               steps=self.steps)

    # -- machinery --------------------------------------------------------

    def _charge(self, n: int = 1):
        self.steps += n
        if self.steps > self.max_steps:
            raise UnsupportedProgram("symbolic step budget exceeded")

    def _expr(self, expr: ast.Expr, state, ctx, sp) -> Term:
        self._charge()
        tc = TranslationContext(typed=self.typed, ctx=ctx, state=state)
        term = translate_expr(tc, expr)
        return self._inline_calls(term, depth=0)

    def _inline_calls(self, term: Term, depth: int) -> Term:
        """Replace applications of defined functions with their symbolic
        summaries instantiated at the argument terms.

        Iterative (generator trampoline): symbolic states are store/ite
        chains whose depth grows with the number of unrolled writes, far
        past what worker-thread C stacks tolerate recursively.  A per-walk
        memo keyed on interning id collapses shared subterms, which the
        recursive formulation re-expanded per occurrence."""
        from ..logic import run_trampoline
        return run_trampoline(self._inline_calls_gen(term, depth, {}))

    def _inline_calls_gen(self, term: Term, depth: int, memo: Dict[int, Term]):
        hit = memo.get(term._id)
        if hit is not None:
            return hit
        if depth > self.inline_depth:
            return term
        sig = None
        if term.op == "apply":
            sig = self.typed.signatures.get(term.value)
        if sig is not None and sig.is_function:
            from ..logic import substitute_simplifying
            summary = self.execute_cached(term.value)
            mapping = {}
            for p, a in zip(sig.params, term.args):
                mapping[p.name] = yield self._inline_calls_gen(a, depth, memo)
            result = substitute_simplifying(summary.outputs["Result"], mapping)
        elif not term.args:
            result = term
        else:
            new_args = []
            for a in term.args:
                h = memo.get(a._id)
                if h is None:
                    h = yield self._inline_calls_gen(a, depth, memo)
                new_args.append(h)
            new_args = tuple(new_args)
            if all(n is o for n, o in zip(new_args, term.args)):
                result = term
            else:
                from ..logic import rebuild_smart
                result = rebuild_smart(term.op, new_args, term.value)
        memo[term._id] = result
        return result

    _summary_cache: Dict[Tuple[int, str], SymbolicSummary] = {}

    def execute_cached(self, name: str) -> SymbolicSummary:
        key = (id(self.typed), name)
        hit = self._summary_cache.get(key)
        if hit is None:
            saved = self.steps
            hit = self.execute(name)
            self.steps += saved
            self._summary_cache[key] = hit
        return hit

    def _block(self, stmts, state, ctx, sp, depth
               ) -> Tuple[Term, Optional[Term]]:
        """Execute statements; returns (returned-condition, result-term)."""
        from ..logic import FALSE
        returned = FALSE
        result: Optional[Term] = None
        for stmt in stmts:
            if returned.is_true:
                break
            r_cond, r_val = self._stmt(stmt, state, ctx, sp, depth, returned)
            if r_cond is not None and not r_cond.is_false:
                if result is None:
                    result = r_val
                elif r_val is not None:
                    result = ite(conj(neg(returned), r_cond), r_val, result)
                returned = disj(returned, r_cond)
        return returned, result

    def _stmt(self, stmt, state, ctx, sp, depth, already_returned
              ) -> Tuple[Optional[Term], Optional[Term]]:
        self._charge()
        if isinstance(stmt, ast.Assign):
            value = self._expr(stmt.value, state, ctx, sp)
            self._store(stmt.target, value, state, ctx, sp)
            return None, None
        if isinstance(stmt, (ast.Null, ast.Assert)):
            return None, None
        if isinstance(stmt, ast.Return):
            from ..logic import TRUE
            value = None
            if stmt.value is not None:
                value = self._expr(stmt.value, state, ctx, sp)
            return TRUE, value
        if isinstance(stmt, ast.If):
            return self._if(stmt, state, ctx, sp, depth)
        if isinstance(stmt, ast.For):
            return self._for(stmt, state, ctx, sp, depth)
        if isinstance(stmt, ast.While):
            raise UnsupportedProgram(
                f"{sp.name}: while-loops are not symbolically summarizable")
        if isinstance(stmt, ast.ProcCall):
            return self._call(stmt, state, ctx, sp, depth)
        raise UnsupportedProgram(f"unsupported {type(stmt).__name__}")

    def _store(self, target, value, state, ctx, sp):
        if isinstance(target, ast.Name):
            state[target.id] = value
            return
        if isinstance(target, ast.ArrayRef):
            chain = []
            node = target
            while isinstance(node, ast.ArrayRef):
                chain.append(node)
                node = node.base
            root = node.id
            # Rebuild nested stores from the outside in.
            current = state[root]
            stores = []
            for ref in reversed(chain):  # outermost first
                base_t = ctx.infer(ref.base)
                idx = self._expr(ref.index, state, ctx, sp)
                if base_t.lo != 0:
                    from ..logic import sub
                    idx = sub(idx, intc(base_t.lo))
                stores.append((current, idx))
                current = select(current, idx)
            new_value = value
            for arr, idx in reversed(stores):
                new_value = store(arr, idx, new_value)
            state[root] = new_value
            return
        raise UnsupportedProgram("bad assignment target")

    def _if(self, stmt: ast.If, state, ctx, sp, depth):
        from ..logic import FALSE
        conditions = []
        branch_states = []
        branch_returns = []
        not_taken = None
        for cond_expr, body in stmt.branches:
            cond = self._expr(cond_expr, state, ctx, sp)
            path = cond if not_taken is None else conj(not_taken, cond)
            not_taken = neg(cond) if not_taken is None \
                else conj(not_taken, neg(cond))
            if path.is_false:
                continue
            child = dict(state)
            r, rv = self._block(body, child, ctx, sp, depth)
            conditions.append(path)
            branch_states.append(child)
            branch_returns.append((r, rv))
            if path.is_true:
                state.clear()
                state.update(child)
                return (r, rv) if not r.is_false else (None, None)
        # Else branch.
        child = dict(state)
        r, rv = self._block(stmt.else_body, child, ctx, sp, depth)
        conditions.append(not_taken if not_taken is not None else FALSE)
        branch_states.append(child)
        branch_returns.append((r, rv))
        # Merge variables across branches.
        merged = dict(branch_states[-1])
        for cond, bstate in zip(reversed(conditions[:-1]),
                                reversed(branch_states[:-1])):
            for k in set(merged) | set(bstate):
                a = bstate.get(k)
                b = merged.get(k)
                if a is None or b is None or a is b:
                    merged[k] = a if a is not None else b
                else:
                    merged[k] = ite(cond, a, b)
        state.clear()
        state.update(merged)
        # Merge return information.
        ret_cond = FALSE
        ret_val: Optional[Term] = None
        for cond, (r, rv) in zip(reversed(conditions),
                                 reversed(branch_returns)):
            if r.is_false:
                continue
            this_cond = conj(cond, r)
            ret_cond = disj(ret_cond, this_cond)
            if rv is not None:
                ret_val = rv if ret_val is None else ite(this_cond, rv, ret_val)
        if ret_cond.is_false:
            return None, None
        return ret_cond, ret_val

    def _for(self, stmt: ast.For, state, ctx, sp, depth):
        lo = self._expr(stmt.lo, state, ctx, sp)
        hi = self._expr(stmt.hi, state, ctx, sp)
        if lo.op != "int" or hi.op != "int":
            raise UnsupportedProgram(
                f"{sp.name}: loop bounds not literal after folding")
        indices = range(lo.value, hi.value + 1)
        if stmt.reverse:
            indices = reversed(indices)
        ctx.push_loop_var(stmt.var)
        shadow = state.get(stmt.var)
        try:
            for i in indices:
                state[stmt.var] = intc(i)
                r, rv = self._block(stmt.body, state, ctx, sp, depth)
                if not r.is_false:
                    raise UnsupportedProgram(
                        f"{sp.name}: return inside a loop")
        finally:
            ctx.pop_loop_var()
            if shadow is not None:
                state[stmt.var] = shadow
            else:
                state.pop(stmt.var, None)
        return None, None

    def _call(self, stmt: ast.ProcCall, state, ctx, sp, depth):
        if depth >= self.inline_depth:
            raise UnsupportedProgram("procedure inlining depth exceeded")
        callee = self.typed.signatures[stmt.name]
        callee_ctx = self.typed.context(callee.name).runtime_view()
        callee_state: Dict[str, Term] = {}
        for arg, param in zip(stmt.args, callee.params):
            if param.mode != "out":
                callee_state[param.name] = self._expr(arg, state, ctx, sp)
            else:
                callee_state[param.name] = var(f"{param.name}#uninit")
        for d in callee.decls:
            callee_state[d.name] = var(f"{d.name}#uninit")
            if d.init is not None:
                callee_state[d.name] = self._expr(
                    d.init, callee_state, callee_ctx, callee)
        r, _ = self._block(callee.body, callee_state, callee_ctx, callee,
                           depth + 1)
        if not r.is_false and not r.is_true:
            raise UnsupportedProgram(
                f"{callee.name}: conditional procedure return")
        for arg, param in zip(stmt.args, callee.params):
            if param.mode != "in":
                self._store(arg, callee_state[param.name], state, ctx, sp)
        return None, None
