"""Semantics-preservation theorems and their proof.

For each transformation application the refactoring engine discharges the
theorem the paper states in section 5.1::

    init_state(P) = init_state(P') => final_state(P) = final_state(P')

Three evidence levels, tried strongest-first:

``symbolic``      both subprograms have closed-form symbolic summaries and
                  the summaries are identical terms after normalization
                  (a proof, within the summarizable fragment);
``exhaustive``    the input domain is finite and small; every initial state
                  was executed on both sides (a proof by evaluation --
                  Smith & Dill verified AES S-box properties the same way);
``differential``  random initial states only (evidence, not proof; the
                  theorem object records this honestly).

The paper permits exactly this postponement: "the semantics-preserving
proof can be postponed until the transformation has been shown to be
useful" (section 5.2) -- differential evidence is our mechanized version of
a postponed proof.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lang import TypedPackage
from ..logic import Rewriter, default_rules
from .differential import (
    Counterexample, DifferentialResult, differential_check, exhaustive_check,
)
from .model import domain_size
from .symbolic import SymbolicExecutor, UnsupportedProgram

__all__ = ["EquivalenceTheorem", "prove_equivalence", "EXHAUSTIVE_LIMIT"]

EXHAUSTIVE_LIMIT = 1 << 16


@dataclass(frozen=True)
class EquivalenceTheorem:
    """A (possibly postponed) semantics-preservation theorem instance."""

    left: str
    right: str
    status: str            # 'proved', 'refuted', 'evidence'
    evidence: str          # 'symbolic', 'exhaustive', 'differential'
    trials: int = 0
    counterexample: Optional[Counterexample] = None
    detail: str = ""

    @property
    def holds(self) -> bool:
        return self.status in ("proved", "evidence")

    @property
    def is_proof(self) -> bool:
        return self.status == "proved"


def _try_symbolic(left_typed, left_name, right_typed, right_name
                  ) -> Optional[EquivalenceTheorem]:
    try:
        left_summary = SymbolicExecutor(left_typed).execute(left_name)
        right_summary = SymbolicExecutor(right_typed).execute(right_name)
    except UnsupportedProgram:
        return None
    if set(left_summary.outputs) != set(right_summary.outputs):
        return EquivalenceTheorem(
            left=left_name, right=right_name, status="refuted",
            evidence="symbolic", detail="observable variables differ")
    rewriter = Rewriter(default_rules())
    for key in left_summary.outputs:
        a = rewriter.normalize(left_summary.outputs[key])
        b = rewriter.normalize(right_summary.outputs[key])
        if a is not b:
            # Not syntactically equal after normalization: inconclusive
            # (terms may still be semantically equal), fall through to the
            # evaluation-based levels.
            return None
    return EquivalenceTheorem(
        left=left_name, right=right_name, status="proved",
        evidence="symbolic",
        detail="symbolic summaries normalize identically")


def prove_equivalence(left_typed: TypedPackage, left_name: str,
                      right_typed: TypedPackage, right_name: str = None,
                      trials: int = 64, seed: int = 20090701,
                      exhaustive_limit: int = EXHAUSTIVE_LIMIT,
                      sampler=None) -> EquivalenceTheorem:
    """Discharge the preservation theorem at the strongest feasible level.

    With a custom ``sampler`` the theorem is relative to the sampled input
    domain (a documented precondition), so only differential evidence is
    gathered."""
    if right_name is None:
        right_name = left_name

    if sampler is None:
        symbolic = _try_symbolic(left_typed, left_name,
                                 right_typed, right_name)
        if symbolic is not None:
            return symbolic

        sp = left_typed.signatures[left_name]
        if domain_size(left_typed, sp, exhaustive_limit) is not None:
            result = exhaustive_check(left_typed, left_name,
                                      right_typed, right_name,
                                      limit=exhaustive_limit)
            return _from_dynamic(result, left_name, right_name,
                                 "exhaustive", proved=True)

    result = differential_check(left_typed, left_name,
                                right_typed, right_name,
                                trials=trials, seed=seed, sampler=sampler)
    return _from_dynamic(result, left_name, right_name,
                         "differential", proved=False)


def _from_dynamic(result: DifferentialResult, left_name, right_name,
                  evidence, proved: bool) -> EquivalenceTheorem:
    if not result.equivalent:
        return EquivalenceTheorem(
            left=left_name, right=right_name, status="refuted",
            evidence=evidence, trials=result.trials,
            counterexample=result.counterexample)
    return EquivalenceTheorem(
        left=left_name, right=right_name,
        status="proved" if proved else "evidence",
        evidence=evidence, trials=result.trials,
        detail=f"{result.trials} initial states agreed")
