"""Planner catalogs: the user-specified moves the search may propose.

The transformation library's mechanical families enumerate their own
sites (:meth:`~repro.refactor.engine.Transformation.enumerate_sites`),
but the paper's pipeline also leans on *user-specified* transformations
-- representation changes, clone-extraction targets, wholesale layout
alignment -- that no pattern matcher can invent (section 5.2's escape
hatch).  A :class:`Catalog` packages those as guarded moves: each entry
carries a transformation instance plus a ``min_match`` gate (the
structure-match fraction the program must already have reached before
the move is worth proposing) and is proposed at most once per chain.

Crucially, an entry is a *proposal*, nothing more: the planner still
evaluates it against every mechanical candidate on equal scoring terms,
and the engine still checks it with a semantics-preservation theorem
before it can join the chain.  The catalog tells the search what a human
*might* try; the metrics and theorems decide what survives.

A ``goal=True`` entry marks a terminal move: reaching a state through it
completes the plan.  For AES the goal is
:class:`AlignWithSpecification` -- the paper's final "merely tidying"
rewrite into the specification-facing layout -- gated at ``min_match``
high enough (0.90) that it only fires after the renames that align the
architecture, which keeps the search from short-circuiting through the
tidy rewrite from the unrolled original (where its theorem would still
pass, but nothing would have been *discovered*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..lang import TypedPackage, ast, parse_package
from ..refactor import Transformation

__all__ = ["CatalogEntry", "Catalog", "AlignWithSpecification",
           "aes_catalog"]


@dataclass
class AlignWithSpecification(Transformation):
    """Rewrite the package into a given specification-facing layout.

    The planner's terminal tidy: simplify residual index arithmetic,
    order declarations, align formatting.  Like every transformation it
    is validated by the engine's semantics-preservation theorem over the
    observables -- the target source earns its way in by behaving
    identically, not by being trusted."""

    target_source: str

    name = "align-with-specification"
    category = "modifying redundant or intermediate computations"

    def describe(self) -> str:
        return ("rewrite into the specification-aligned layout "
                "(tidy residual computations)")

    def affected_subprograms(self, typed):
        return []

    def apply(self, typed: TypedPackage) -> ast.Package:
        return parse_package(self.target_source)


@dataclass(frozen=True)
class CatalogEntry:
    """One guarded user-specified move."""

    name: str                     # unique within the catalog
    transformation: Transformation
    min_match: float = 0.0        # propose only at/above this match fraction
    goal: bool = False            # reaching it completes the plan


@dataclass
class Catalog:
    entries: Tuple[CatalogEntry, ...] = ()

    def proposals(self, match_fraction: float,
                  applied: frozenset) -> List[CatalogEntry]:
        """Entries proposable from a state: gate passed, not yet on the
        chain.  Deterministic: catalog order."""
        return [e for e in self.entries
                if e.name not in applied and match_fraction >= e.min_match]


def aes_catalog() -> Catalog:
    """The user-specified moves of the AES case study (section 6.2.2).

    These are the same specified artifacts the manual pipeline uses
    (:mod:`repro.aes.stages`) -- the planner's job is to discover *when*
    each belongs in the chain, interleaved with which mechanical sites,
    not to re-derive the GF(2^8) arithmetic from the documentation.
    ``min_match`` gates are deliberately coarse: only the terminal tidy
    needs one, because an unguarded full rewrite would let the search
    skip the discovery problem entirely.  Stages with remove lists are
    ``tolerate_missing``: the search interleaves its own tidying (dead-
    subprogram removal, suffix renames) with the staged moves, so a
    superseded original a stage would delete may already be gone by the
    time the stage is tried -- the hand pipeline's strict not-found
    error would strand the stage permanently."""
    from ..aes import stages
    from ..aes.refactored import refactored_source
    from ..refactor import (
        ExtractFunction, ExtractProcedureClone, UserSpecifiedTransformation,
    )

    entries: List[CatalogEntry] = [
        CatalogEntry("gf-arithmetic", UserSpecifiedTransformation(
            description="introduce the S-boxes and GF(2^8) arithmetic the "
                        "tables were computed from (FIPS-197 section 5.1)",
            add_decls=stages.gf_function_decls(),
            replace_subprograms=stages.gf_function_subprograms(),
            category="reversing table lookups",
        )),
        CatalogEntry("bytes-encrypt", UserSpecifiedTransformation(
            description="replace packed 32-bit words by four-byte arrays on "
                        "the encryption path (key schedule over Word_Bytes, "
                        "state as 16 bytes)",
            add_decls=stages.byte_types_decls(),
            replace_subprograms=stages.stage3_subprograms(),
            category="adjusting data structures",
        )),
        CatalogEntry("bytes-decrypt", UserSpecifiedTransformation(
            description="replace packed 32-bit words by four-byte arrays on "
                        "the decryption path; remove the word tables, "
                        "word-typed functions and word types",
            replace_subprograms=stages.stage4_subprograms(),
            remove_subprograms=("Expand_Key", "Encrypt", "Expand_Dec_Key",
                                "Decrypt")
            + stages.word_machinery_subprograms(),
            remove_decls=("Rcon", "Word_Table", "Rcon_Table", "Word",
                          "Word_Key"),
            category="adjusting data structures",
            tolerate_missing=True,
        )),
        CatalogEntry("keyexpansion-helpers", UserSpecifiedTransformation(
            description="reverse the inlining of the key expansion word "
                        "operations (RotWord, SubWord, word xor, Rcon)",
            replace_subprograms=stages.stage7_subprograms(),
            category="reversing inlined functions or cloned code",
        )),
        CatalogEntry("per-variant-ciphers", UserSpecifiedTransformation(
            description="reveal the three key-size execution paths and "
                        "split them into per-variant key schedules and "
                        "ciphers (AES-128/192/256)",
            add_decls=stages.key_type_decls(),
            replace_subprograms=stages.stage8_subprograms(),
            remove_subprograms=stages.stage8_removals() + (
                "Round_Key_From",),
            remove_decls=("Byte_State", "Round_Count"),
            category="moving statements into or out of conditionals",
            tolerate_missing=True,
        )),
        CatalogEntry("straightforward-inverse", UserSpecifiedTransformation(
            description="modify the decryption key schedule: replace the "
                        "equivalent inverse cipher by the straightforward "
                        "inverse of FIPS-197 section 5.3 (plain key "
                        "schedule, InvMixColumns inside the round)",
            replace_subprograms=stages.stage12_subprograms(),
            remove_subprograms=stages.stage12_removals() + (
                "Eq_Inv_Round", "Eq_Inv_Final_Round"),
            category="modifying redundant or intermediate computations",
            tolerate_missing=True,
        )),
    ]
    for source, minimum in stages.encrypt_state_procedures() \
            + stages.decrypt_state_procedures():
        name = source.split("(")[0].split()[-1]
        entries.append(CatalogEntry(
            f"extract-{name}", ExtractProcedureClone(
                procedure_source=source, minimum_occurrences=minimum)))
    for source, minimum in stages.round_composition_functions():
        name = source.split("(")[0].split()[-1]
        entries.append(CatalogEntry(
            f"extract-{name}", ExtractFunction(
                function_source=source, minimum_occurrences=minimum)))
    entries.append(CatalogEntry(
        "align-architecture",
        AlignWithSpecification(target_source=refactored_source()),
        min_match=0.90, goal=True))
    return Catalog(entries=tuple(entries))
