"""Candidate enumeration: everything the planner may try from a state.

Three deterministic sources, concatenated in a fixed order:

1. **Library sites** -- every family in the transformation library is
   asked for applicable sites on the current program
   (:meth:`~repro.refactor.engine.Transformation.enumerate_sites`);
2. **Catalog proposals** -- the user-specified moves whose ``min_match``
   gate the state has passed (:mod:`repro.plan.catalog`);
3. **Spec-alignment renames** -- for each same-kind, same-arity pair of
   an unmatched specification element and an unmatched implementation
   element in the architectural map, a rename of the implementation name
   to the specification name.  This is how the planner discovers the
   paper's block-13 tidy (``Byte_Block`` -> ``State``) without it being
   spelled out: the map says which names fail to correspond, and renaming
   toward the specification is the only move that can close that gap.

   Alignment renames are gated at ``ALIGN_RENAME_MIN_MATCH``: renaming
   toward the specification is the paper's end-of-chain "merely tidying",
   and it is only *evidence of correspondence* once most of the
   architecture already matches.  Early in a chain nearly every element
   is unmatched, so the pairing would propose mostly false
   correspondences -- and since a rename always preserves semantics and
   always buys match points, an ungated search happily commits them
   (renaming ``Te4_F`` to ``InvShiftRows`` both looks great on the
   metric and strands the table-reversal sites that rely on the ``_F``
   naming convention).  The gate makes the move available exactly where
   its premise holds.

Everything here over-approximates: proposals may be inapplicable or
semantics-breaking, and that is fine -- scoring marks inapplicable
results, and the engine's theorem is the gate for chain membership.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..extract.mapper import build_map, _elements
from ..extract.skeleton import SkeletonError, extract_skeleton
from ..lang import TypedPackage
from ..refactor import RemoveDeadSubprogram, Rename, Transformation
from .catalog import Catalog

__all__ = ["Candidate", "enumerate_candidates", "ALIGN_RENAME_MIN_MATCH"]

#: Architectural-map kind -> Rename kind.
_KIND_MAP = {"type": "type", "table": "constant", "function": "subprogram"}

#: Match fraction below which spec-alignment renames are not proposed
#: (see the module docstring: a rename toward the specification is only
#: evidence of correspondence once most of the architecture matches).
ALIGN_RENAME_MIN_MATCH = 0.8


@dataclass
class Candidate:
    """One proposed next step."""

    transformation: Transformation
    origin: str            # 'library' | 'catalog' | 'align'
    entry: Optional[str] = None   # catalog entry name, when origin='catalog'
    goal: bool = False


def enumerate_candidates(typed: TypedPackage, match_fraction: float,
                         catalog: Catalog, applied: frozenset,
                         reference, observables=()) -> List[Candidate]:
    """All candidates from one state, in deterministic order.

    ``observables`` prunes dead-subprogram removals targeting the
    observable interface: site enumeration cannot know the interface
    (observables have no in-package callers either), the engine would
    reject the application anyway, and without the filter those
    rejections recur at every single expansion."""
    out: List[Candidate] = []
    from ..refactor.library import TRANSFORMATION_LIBRARY
    for classes in TRANSFORMATION_LIBRARY.values():
        for cls in classes:
            out.extend(Candidate(transformation=t, origin="library")
                       for t in cls.enumerate_sites(typed)
                       if not (isinstance(t, RemoveDeadSubprogram)
                               and t.subprogram in observables))
    for entry in catalog.proposals(match_fraction, applied):
        out.append(Candidate(transformation=entry.transformation,
                             origin="catalog", entry=entry.name,
                             goal=entry.goal))
    out.extend(_alignment_renames(typed, match_fraction, reference))
    return out


def _alignment_renames(typed: TypedPackage, match_fraction: float,
                       reference) -> Iterator[Candidate]:
    """Renames closing gaps in the architectural map, in map order."""
    if reference is None or match_fraction < ALIGN_RENAME_MIN_MATCH:
        return
    try:
        skeleton = extract_skeleton(typed)
    except SkeletonError:
        return
    amap = build_map(reference, skeleton)
    spec_arity = {(k, n): a for k, n, a in _elements(reference)}
    impl_arity = {(k, n): a for k, n, a in _elements(skeleton)}
    for okind, oname in amap.unmatched_original:
        for ekind, ename in amap.unmatched_extracted:
            if okind != ekind:
                continue
            if spec_arity.get((okind, oname)) != \
                    impl_arity.get((ekind, ename)):
                continue
            yield Candidate(
                transformation=Rename(kind=_KIND_MAP[okind], old=ename,
                                      new=oname),
                origin="align")
