"""The persistent plan cache: probe scores and theorem verdicts on disk.

Replanning is dominated by re-measuring candidate states the previous
run already measured and re-proving edges the previous run already
proved: the planner's frontier is deterministic, so a second run over
the same program re-requests the *same* obligations.  A
:class:`PlanCache` makes those replays warm across processes --
``python -m repro.plan --plan-cache plan.json`` twice runs the whole
search the second time without scheduling a single evaluation.

One JSON file, schema ``repro-plan-cache/v1``::

    {
      "schema": "repro-plan-cache/v1",
      "scoring": "<sha256 scoring-config digest>",
      "evaluations": {"<obligation cache key>": {...StateEvaluation...}},
      "validations": {"<edge key>": {"ok": bool, "reason": "..."}}
    }

**Keys.**  Evaluation entries reuse the planner's obligation cache key
verbatim -- ``make_key(PLAN_EVAL, parent_fp, candidate_token,
reference_fp, parent_match, tier)`` -- so an entry is scoped to the
exact (candidate program, transformation, probe budget) it measured.
Validation entries key the *edge*: ``make_key("plan_validate",
parent_fp, child_fp, candidate_token, check, trials, seed,
observables)``.  The file-level ``scoring`` digest
(:func:`scoring_digest`) covers the run-shaping inputs the per-entry
keys do not: the reference theory, the probe budgets, and the
validation-engine configuration.  :class:`~repro.plan.scoring
.ScoreWeights` are deliberately *not* in the digest -- evaluations
store raw measured components, and scores are recomputed from the
weights at search time, so a weight tweak replans warm.

**Durability.**  Saves go through
:func:`~repro.exec.atomicio.atomic_write_json`; loading is defensive by
construction (the :mod:`repro.incr.manifest` discipline): a missing,
torn, wrong-schema, or wrong-scope file loads as *empty*, never as an
error -- a broken cache means a cold replan, not a broken plan.

**Soundness.**  A cached ``ok`` validation lets the planner replay the
edge *mechanically* (apply the transformation, skip the differential
trials) -- sound because validation is a deterministic function of the
keyed inputs, and double-checked anyway: the replayed state's
fingerprint must equal the cached edge's child fingerprint or the
planner falls back to full validation.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from ..exec.atomicio import atomic_write_json
from ..exec.cache import make_key

__all__ = ["PLAN_CACHE_SCHEMA", "PlanCache", "scoring_digest"]

PLAN_CACHE_SCHEMA = "repro-plan-cache/v1"


def scoring_digest(reference_fp: str, probe_tree_bytes: int,
                   probe_vcs: int, check: str, trials: int, seed: int,
                   observables) -> str:
    """Digest of the run-shaping inputs that scope every cached entry:
    the reference theory the match ratio measures against, the probe
    budgets, and the validation-engine configuration.  Samplers are not
    capturable here (they are functions); they are assumed deterministic
    in the seed, as the AES case study's are -- use a fresh cache path
    when swapping sampler sets."""
    return make_key(
        "plan-scoring", reference_fp, str(probe_tree_bytes),
        str(probe_vcs), check, str(trials), str(seed),
        repr(list(observables)))


class PlanCache:
    """Load-on-construct, save-on-demand store of plan evaluations and
    validation verdicts, scoped to one scoring-config digest."""

    def __init__(self, path: Union[str, os.PathLike], scoring: str):
        self.path = Path(path)
        self.scoring = scoring
        self._evaluations: Dict[str, dict] = {}
        self._validations: Dict[str, dict] = {}
        self.dirty = False
        #: Warm/cold accounting for telemetry and the bench harness.
        self.eval_hits = 0
        self.eval_misses = 0
        self.validation_hits = 0
        self.validation_misses = 0
        self._load()

    # -- persistence --------------------------------------------------------

    def _load(self) -> None:
        """Ingest the file if -- and only if -- it is a well-formed cache
        under this scoring digest; any defect loads as empty."""
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if not isinstance(data, dict) \
                or data.get("schema") != PLAN_CACHE_SCHEMA \
                or data.get("scoring") != self.scoring:
            return
        evaluations = data.get("evaluations")
        validations = data.get("validations")
        if not isinstance(evaluations, dict) \
                or not isinstance(validations, dict):
            return
        for key, value in evaluations.items():
            if isinstance(key, str) and isinstance(value, dict):
                self._evaluations[key] = value
        for key, value in validations.items():
            if isinstance(key, str) and isinstance(value, dict) \
                    and isinstance(value.get("ok"), bool):
                self._validations[key] = value

    def save(self) -> None:
        """Publish atomically; a no-op while nothing changed."""
        if not self.dirty:
            return
        atomic_write_json(self.path, {
            "schema": PLAN_CACHE_SCHEMA,
            "scoring": self.scoring,
            "evaluations": self._evaluations,
            "validations": self._validations,
        })
        self.dirty = False

    # -- evaluations --------------------------------------------------------

    def get_evaluation(self, key: str) -> Optional[dict]:
        value = self._evaluations.get(key)
        if value is None:
            self.eval_misses += 1
        else:
            self.eval_hits += 1
        return value

    def put_evaluation(self, key: str, value: dict) -> None:
        if self._evaluations.get(key) != value:
            self._evaluations[key] = value
            self.dirty = True

    # -- validation verdicts ------------------------------------------------

    @staticmethod
    def validation_key(parent_fp: str, child_fp: str, token: str,
                       check: str, trials: int, seed: int,
                       observables) -> str:
        return make_key("plan_validate", parent_fp, child_fp, token,
                        check, str(trials), str(seed),
                        repr(list(observables)))

    def get_validation(self, key: str) -> Optional[dict]:
        value = self._validations.get(key)
        if value is None:
            self.validation_misses += 1
        else:
            self.validation_hits += 1
        return value

    def put_validation(self, key: str, ok: bool, reason: str = "") -> None:
        value = {"ok": ok, "reason": reason}
        if self._validations.get(key) != value:
            self._validations[key] = value
            self.dirty = True

    def __len__(self) -> int:
        return len(self._evaluations) + len(self._validations)
