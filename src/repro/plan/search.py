"""Best-first discovery of verification-refactoring chains (DESIGN.md §17).

The planner automates the loop the paper's section 6 describes a human
driving: look at the metrics, pick the transformation that moves the
program toward its specification's architecture, prove it preserved
semantics, repeat.  Four stages per iteration:

1. **Enumerate** -- candidate transformations from the library's site
   enumerators, the user-specified catalog, and the architectural map's
   unmatched-name pairs (:mod:`repro.plan.candidates`);
2. **Score** -- each candidate's result state is measured (match ratio,
   size, complexity; examiner/prover probe for the leaders) by pure
   module-level functions fanned out as obligations over the configured
   scheduler backend (:mod:`repro.plan.scoring`);
3. **Select** -- a beam-bounded best-first frontier orders states by
   score with seeded content-addressed tie-breaks
   (:mod:`repro.plan.frontier`).  Best-first, not greedy: the measured
   manual chain's score *dips* at the word-packing reversal (match
   drops while the representation changes underneath), so a hill
   climber stalls exactly where the paper's insight lives;
4. **Validate** -- when a state is popped for expansion, its incoming
   edge is replayed on a transient :class:`RefactoringEngine`, which
   checks the semantics-preservation theorem.  A failed theorem
   discards the state (the parent package is untouched -- rollback is
   free because nothing was committed) and the search continues from
   the frontier.  Every ancestor of a popped state was itself popped,
   so every edge of the returned chain carries a checked theorem.

Determinism: enumeration order is structural, scoring is wall-clock
free, scheduler outcomes return in submission order, and all ordering
ties break on ``make_key(seed, fingerprint)``.  The discovered chain is
therefore bit-identical across serial, thread, process, and remote
execution -- asserted by ``benchmarks/bench_plan.py``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..exec import (
    CallPayload, ExecConfig, Obligation, coerce_exec_config, make_key,
    package_fingerprint, theory_fingerprint,
)
from ..lang import TypedPackage, analyze, ast, print_package
from ..refactor import RefactoringEngine, TransformationError
from .cache import PlanCache, scoring_digest
from .candidates import Candidate, enumerate_candidates
from .catalog import Catalog
from .frontier import Frontier, PlanStep, PlanState
from .scoring import (
    DEFAULT_PROBE_TREE_BYTES, DEFAULT_PROBE_VCS, ScoreWeights,
    StateEvaluation, candidate_token, evaluate_candidate,
)

__all__ = ["Planner", "PlanResult"]

#: Obligation kind for candidate-state measurement.
PLAN_EVAL = "plan_eval"


@dataclass
class PlanResult:
    """What a planning run discovered."""

    found: bool
    steps: List[PlanStep]
    #: Digest over the step tokens + final state: two runs agreeing on
    #: this agree on the entire chain.
    chain_digest: str
    final_fingerprint: str
    final_evaluation: Optional[StateEvaluation]
    final_source: Optional[str]
    expansions: int
    evaluations: int
    validations: int
    #: Theorem-rejected edges: (token, description, reason) -- the
    #: planner's rollback log.
    rejected: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def step_count(self) -> int:
        return len(self.steps)

    def to_json(self) -> dict:
        return {
            "found": self.found,
            "steps": [s.to_json() for s in self.steps],
            "chain_digest": self.chain_digest,
            "final_fingerprint": self.final_fingerprint,
            "final_evaluation":
                None if self.final_evaluation is None
                else self.final_evaluation.to_json(),
            "expansions": self.expansions,
            "evaluations": self.evaluations,
            "validations": self.validations,
            "rejected": [list(r) for r in self.rejected],
        }


class Planner:
    """Search for a transformation chain from ``package`` toward the
    architecture of ``reference`` (a specification theory)."""

    def __init__(self, package: ast.Package, observables: Sequence[str],
                 reference, catalog: Optional[Catalog] = None,
                 weights: Optional[ScoreWeights] = None,
                 beam_width: int = 12, top_k: int = 6,
                 max_steps: int = 64, max_expansions: int = 256,
                 goal_match: Optional[float] = None,
                 check: str = "differential", trials: int = 2,
                 seed: int = 20090701, samplers: Optional[dict] = None,
                 exec: Optional[ExecConfig] = None,
                 probe_tree_bytes: int = DEFAULT_PROBE_TREE_BYTES,
                 probe_vcs: int = DEFAULT_PROBE_VCS,
                 plan_cache=None,
                 log: Optional[Callable[[str], None]] = None):
        """``goal_match``: alternative/additional goal condition -- any
        state whose match fraction reaches it completes the plan (used
        when the catalog has no ``goal`` entry).  ``check``/``trials``/
        ``samplers``/``seed`` configure the transient validation engines
        exactly as they would a manual
        :class:`~repro.refactor.engine.RefactoringEngine`.
        ``plan_cache``: a path (or a :class:`~repro.plan.cache.PlanCache`)
        for the persistent probe/score and theorem-verdict store --
        replanning the same program replays its scored frontier warm
        (DESIGN.md §18)."""
        self.typed = analyze(package)
        self.observables = list(observables)
        self.reference = reference
        self.catalog = catalog if catalog is not None else Catalog()
        self.weights = weights if weights is not None else ScoreWeights()
        self.beam_width = beam_width
        self.top_k = top_k
        self.max_steps = max_steps
        self.max_expansions = max_expansions
        self.goal_match = goal_match
        self.check = check
        self.trials = trials
        self.seed = seed
        self.samplers = samplers
        self.exec = coerce_exec_config(exec, owner="Planner")
        self.probe_tree_bytes = probe_tree_bytes
        self.probe_vcs = probe_vcs
        self._log = log or (lambda message: None)
        self._reference_fp = "" if reference is None \
            else theory_fingerprint(reference)
        if plan_cache is None or isinstance(plan_cache, PlanCache):
            self._cache: Optional[PlanCache] = plan_cache
        else:
            self._cache = PlanCache(plan_cache, scoring_digest(
                self._reference_fp, probe_tree_bytes, probe_vcs,
                check, trials, seed, self.observables))
        self._root_fp = ""
        self._evaluations = 0
        self._validations = 0
        #: Typed forms of validated states, keyed by fingerprint
        #: (validation already analyzed the package; expansion reuses it).
        self._typed_of: Dict[str, TypedPackage] = {}

    # -- search -------------------------------------------------------------

    def plan(self) -> PlanResult:
        try:
            return self._plan()
        finally:
            # Persist whatever was learned even when the search raises:
            # a partial cache still warms the next replan.
            if self._cache is not None:
                self._cache.save()

    def _plan(self) -> PlanResult:
        root_fp = self._root_fp = package_fingerprint(self.typed)
        root_eval = StateEvaluation.from_json(self._measure_root(root_fp))
        self._typed_of[root_fp] = self.typed
        frontier = Frontier(self.beam_width)
        frontier.push(PlanState(
            fingerprint=root_fp, evaluation=root_eval,
            score=root_eval.score(self.weights),
            tie=self._tie(root_fp), depth=0, chain=(),
            applied_entries=frozenset(), package=self.typed.package))
        expansions = 0
        rejected: List[Tuple[str, str, str]] = []
        best: Optional[PlanState] = None

        while len(frontier):
            state = frontier.pop()
            if state.fingerprint in frontier.visited and not state.goal:
                continue
            if not self._validate(state, rejected):
                continue
            frontier.visited.add(state.fingerprint)
            if best is None or state.score > best.score:
                best = state
            if self._is_goal(state):
                return self._result(state, found=True,
                                    expansions=expansions,
                                    rejected=rejected)
            if state.depth >= self.max_steps or \
                    expansions >= self.max_expansions:
                continue
            expansions += 1
            for child in self._expand(state, frontier.visited):
                frontier.push(child)
            frontier.prune()

        return self._result(best, found=False, expansions=expansions,
                            rejected=rejected)

    # -- stages -------------------------------------------------------------

    def _validate(self, state: PlanState,
                  rejected: List[Tuple[str, str, str]]) -> bool:
        """Replay the state's incoming edge with the theorem checked.

        Success materializes the state's package (and typed form) from
        the replay; failure leaves the parent untouched and logs the
        rejection.  The root validates trivially."""
        if state.transformation is None:
            return True
        token = candidate_token(state.transformation)
        cache_key = None
        if self._cache is not None:
            parent_fp = state.chain[-2].fingerprint \
                if len(state.chain) >= 2 else self._root_fp
            cache_key = PlanCache.validation_key(
                parent_fp, state.fingerprint, token, self.check,
                self.trials, self.seed, self.observables)
            verdict = self._cache.get_validation(cache_key)
            if verdict is not None:
                # A cached verdict still counts as a validation: the
                # edge was checked, just not in this process.
                if not verdict["ok"]:
                    self._validations += 1
                    rejected.append((token,
                                     state.transformation.describe(),
                                     verdict.get("reason", "")))
                    self._log(f"rejected (cached theorem): "
                              f"{state.transformation.describe()}: "
                              f"{verdict.get('reason', '')}")
                    return False
                if self._replay_accepted(state, parent_fp):
                    self._validations += 1
                    last = state.chain[-1]
                    self._log(f"step {state.depth}: {last.description} "
                              f"(score {state.score:+.4f}, "
                              f"match {last.match_percent:.1f}%, "
                              f"cached theorem)")
                    return True
                # Replay disagreed with the cached child fingerprint:
                # distrust the entry and run the full validation below.
        # check_observables: an automated search composes hundreds of
        # steps, so every accepted edge carries the end-to-end theorem
        # over the observables -- a narrow affected-subprogram check
        # passing while the composition drifts is not acceptable here.
        engine = RefactoringEngine(
            state.parent_package, observables=self.observables,
            check=self.check, trials=self.trials, seed=self.seed,
            samplers=self.samplers, exec=self.exec,
            check_observables=True)
        try:
            engine.apply(state.transformation)
        except TransformationError as exc:
            self._validations += 1
            rejected.append((token, state.transformation.describe(),
                             str(exc)))
            if cache_key is not None:
                self._cache.put_validation(cache_key, False, str(exc))
            self._log(f"rejected (theorem): "
                      f"{state.transformation.describe()}: {exc}")
            return False
        self._validations += 1
        if cache_key is not None:
            self._cache.put_validation(cache_key, True)
        state.package = engine.package
        self._typed_of[state.fingerprint] = engine.typed
        last = state.chain[-1]
        self._log(f"step {state.depth}: {last.description} "
                  f"(score {state.score:+.4f}, "
                  f"match {last.match_percent:.1f}%)")
        return True

    def _replay_accepted(self, state: PlanState, parent_fp: str) -> bool:
        """Materialize a cached-accepted edge mechanically: apply the
        transformation without the differential trials (the theorem was
        checked when the verdict was cached), then double-check the
        result against the fingerprint the evaluation promised.  False
        -- with nothing mutated -- sends the caller to full validation."""
        try:
            typed_parent = self._typed_of.get(parent_fp)
            if typed_parent is None:
                typed_parent = analyze(state.parent_package)
                self._typed_of[parent_fp] = typed_parent
            new_package = state.transformation.apply(typed_parent)
            typed = analyze(new_package)
        except Exception:   # noqa: BLE001 - cached-replay fault boundary
            return False
        if package_fingerprint(typed) != state.fingerprint:
            return False
        state.package = new_package
        self._typed_of[state.fingerprint] = typed
        return True

    def _expand(self, state: PlanState, visited) -> List[PlanState]:
        typed = self._typed_of.get(state.fingerprint)
        if typed is None:
            typed = analyze(state.package)
            self._typed_of[state.fingerprint] = typed
        candidates = enumerate_candidates(
            typed, state.evaluation.match_fraction, self.catalog,
            state.applied_entries, self.reference,
            observables=self.observables)
        if not candidates:
            return []
        evaluations = self._measure(state, candidates, probe=False)

        scored: List[Tuple[float, str, Candidate, StateEvaluation]] = []
        seen: set = set()
        for candidate, evaluation in zip(candidates, evaluations):
            if not evaluation.applicable:
                continue
            fp = evaluation.fingerprint
            if not candidate.goal:
                # No-ops and already-expanded states add nothing; goal
                # candidates are exempt (reaching the goal *is* the
                # point, even if its state were somehow seen).
                if fp == state.fingerprint or fp in visited:
                    continue
            if fp in seen:
                continue
            seen.add(fp)
            scored.append((evaluation.static_score(self.weights),
                           self._tie(fp), candidate, evaluation))
        scored.sort(key=lambda item: (-item[0], item[1]))

        # The probe tier: only the static leaders earn the examiner +
        # prover pass (same fan-out path).
        leaders = scored[:self.top_k]
        if leaders:
            probed = self._measure(
                state, [c for _, _, c, _ in leaders], probe=True)
            refreshed = []
            for (_, tie, candidate, evaluation), probe_eval in \
                    zip(leaders, probed):
                if probe_eval.applicable:
                    evaluation = probe_eval
                refreshed.append(
                    (evaluation.static_score(self.weights), tie,
                     candidate, evaluation))
            scored = refreshed + scored[self.top_k:]

        children = []
        for _, tie, candidate, evaluation in scored:
            entries = state.applied_entries if candidate.entry is None \
                else state.applied_entries | {candidate.entry}
            step = PlanStep(
                token=candidate_token(candidate.transformation),
                description=candidate.transformation.describe(),
                category=candidate.transformation.category,
                origin=candidate.origin, entry=candidate.entry,
                score=evaluation.score(self.weights),
                match_percent=100.0 * evaluation.match_fraction,
                fingerprint=evaluation.fingerprint)
            children.append(PlanState(
                fingerprint=evaluation.fingerprint,
                evaluation=evaluation,
                score=evaluation.score(self.weights), tie=tie,
                depth=state.depth + 1, chain=state.chain + (step,),
                applied_entries=frozenset(entries), goal=candidate.goal,
                parent_package=state.package,
                transformation=candidate.transformation,
                origin=candidate.origin, entry=candidate.entry))
        return children

    def _measure(self, state: PlanState, candidates: List[Candidate],
                 probe: bool) -> List[StateEvaluation]:
        """Fan candidate measurement out over the configured scheduler."""
        parent_match = (state.evaluation.match_fraction,
                        state.evaluation.match_total)
        obligations = [
            self._obligation(state, candidate, parent_match, probe)
            for candidate in candidates]
        self._evaluations += len(obligations)
        results: List[Optional[StateEvaluation]] = [None] * len(obligations)
        pending: List[Tuple[int, Obligation]] = []
        for i, obligation in enumerate(obligations):
            cached = None if self._cache is None \
                else self._cache.get_evaluation(obligation.cache_key)
            if cached is not None:
                results[i] = StateEvaluation.from_json(cached)
            else:
                pending.append((i, obligation))
        outcomes = self.exec.scheduler().run(
            [obligation for _, obligation in pending]) if pending else []
        for (i, obligation), outcome in zip(pending, outcomes):
            if not outcome.ok:
                # A crashed/errored evaluation is treated as an
                # inapplicable candidate: the chain must never depend on
                # a state we could not measure.  Never cached -- a
                # transient fault must not poison later replans.
                results[i] = StateEvaluation(
                    applicable=False,
                    reason=f"evaluation {outcome.status}: "
                           f"{outcome.error or ''}")
            else:
                results[i] = StateEvaluation.from_json(outcome.value)
                if self._cache is not None:
                    self._cache.put_evaluation(obligation.cache_key,
                                               outcome.value)
        return results

    def _obligation(self, state: PlanState, candidate: Candidate,
                    parent_match, probe: bool) -> Obligation:
        transformation = candidate.transformation
        token = candidate_token(transformation)
        tier = f"probe:{self.probe_tree_bytes}:{self.probe_vcs}" \
            if probe else "static"
        key = make_key(PLAN_EVAL, state.fingerprint, token,
                       self._reference_fp, repr(parent_match), tier)
        kwargs = dict(parent_match=parent_match, probe=probe,
                      probe_tree_bytes=self.probe_tree_bytes,
                      probe_vcs=self.probe_vcs)
        package = state.package

        def thunk(package=package, fp=state.fingerprint,
                  transformation=transformation, kwargs=kwargs):
            return evaluate_candidate(package, fp, transformation,
                                      self.reference, **kwargs)

        return Obligation(
            kind=PLAN_EVAL, label=f"eval:{transformation.describe()}",
            thunk=thunk, cache_key=key,
            encode=_identity, decode=_identity,
            payload=CallPayload(
                fn=evaluate_candidate,
                args=(package, state.fingerprint, transformation,
                      self.reference),
                kwargs=tuple(sorted(kwargs.items()))))

    def _measure_root(self, root_fp: str) -> dict:
        self._evaluations += 1
        key = make_key(PLAN_EVAL, root_fp, "<root>", self._reference_fp,
                       "None",
                       f"probe:{self.probe_tree_bytes}:{self.probe_vcs}")
        if self._cache is not None:
            cached = self._cache.get_evaluation(key)
            if cached is not None:
                return cached
        value = evaluate_candidate(
            self.typed.package, root_fp, None, self.reference,
            probe=True, probe_tree_bytes=self.probe_tree_bytes,
            probe_vcs=self.probe_vcs)
        if self._cache is not None:
            self._cache.put_evaluation(key, value)
        return value

    # -- helpers ------------------------------------------------------------

    def _tie(self, fingerprint: str) -> str:
        return make_key(str(self.seed), fingerprint)

    def _is_goal(self, state: PlanState) -> bool:
        if state.goal:
            return True
        return self.goal_match is not None and \
            state.evaluation.match_fraction >= self.goal_match

    def _result(self, state: Optional[PlanState], found: bool,
                expansions: int, rejected) -> PlanResult:
        steps = list(state.chain) if state is not None else []
        final_fp = state.fingerprint if state is not None else ""
        digest = make_key("plan_chain", *[s.token for s in steps], final_fp)
        source = None
        if state is not None and state.package is not None:
            source = print_package(state.package)
        return PlanResult(
            found=found, steps=steps, chain_digest=digest,
            final_fingerprint=final_fp,
            final_evaluation=state.evaluation if state is not None else None,
            final_source=source,
            expansions=expansions, evaluations=self._evaluations,
            validations=self._validations, rejected=list(rejected))


def _identity(value):
    """JSON codec for evaluations, which already are plain dicts."""
    return value
