"""Candidate scoring for the automated planner (DESIGN.md §17).

The score of a program state composes the metrics the repo already
computes -- exactly the analyzer outputs the paper's human read off the
metrics dashboard before choosing the next refactoring:

* the **spec-structure match ratio** (:mod:`repro.extract.matchratio`),
  the primary "amenable to proof" gradient (figure 2(f): 4.7% on the
  optimized AES, 93.0% after the manual chain);
* **element/complexity metrics** (logical SLOC, average McCabe) -- small,
  simple states verify more cheaply;
* **VC metrics** from a *budgeted* examiner probe (``max_tree_bytes``
  capped): the log of the simplification work units, plus a flat penalty
  while analysis is still infeasible under the budget;
* an **auto-discharge probe**: the fraction of the budgeted probe's VCs
  discharged mechanically (simplifier discharges plus a bounded sample
  pushed through the :class:`~repro.prover.auto.AutoProver`), the cheap
  stand-in for the paper's auto-discharge percentage.

Two tiers, after genec's layered ``VerificationEngine`` (cheap layers
gate expensive ones): the *static* tier (match + elements + complexity)
ranks every enumerated candidate; only the leaders earn the *probe* tier
(examiner + prover).  Evaluation is a pure function of (package,
transformation, weights, probe budgets): no wall clocks, no prover
timeouts (the probe runs the auto prover with ``timeout_seconds=None`` --
its internal budgets are deterministic), so scores are bit-identical
across the serial, thread, process, and remote backends.

:func:`evaluate_candidate` is module-level and operates on picklable
arguments, so the planner fans evaluations out as Obligations carrying
:class:`~repro.exec.payload.CallPayload` -- candidate scoring rides the
proof farm for free.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..exec.payload import _typed_package

__all__ = [
    "ScoreWeights", "StateEvaluation", "evaluate_candidate",
    "candidate_token", "DEFAULT_PROBE_TREE_BYTES", "DEFAULT_PROBE_VCS",
]

#: Examiner tree budget for the probe tier: large enough that mid-chain
#: states analyze, small enough that the worst (fully unrolled) state
#: bails out in ~0.1 s.
DEFAULT_PROBE_TREE_BYTES = 1_000_000

#: How many of the probe's undischarged VCs (smallest simplified residue
#: first) are pushed through the auto prover.
DEFAULT_PROBE_VCS = 6


@dataclass(frozen=True)
class ScoreWeights:
    """Linear weights over the normalized metric components.

    Defaults are calibrated on the manual AES chain (figure 2): the match
    ratio dominates, SLOC/McCabe prefer smaller and simpler states among
    equal-match ones, and the probe terms break ties toward states whose
    VCs are small and mechanically dischargeable."""

    match: float = 2.0        # per unit of match fraction (0..1)
    sloc: float = 0.0002      # per logical source line, subtracted
    mccabe: float = 0.02      # per average McCabe point, subtracted
    work: float = 0.03        # per log10 simplification work unit, subtracted
    probe: float = 0.2        # per unit of probe auto-discharge fraction
    infeasible: float = 0.05  # flat penalty while the probe is infeasible

    def token(self) -> str:
        """Stable serialization for obligation cache keys."""
        return repr(tuple(getattr(self, f.name)
                          for f in dataclasses.fields(self)))


@dataclass(frozen=True)
class StateEvaluation:
    """The measured components of one candidate (or root) state."""

    applicable: bool
    reason: str = ""                 # why not, when inapplicable
    fingerprint: str = ""            # content digest of the result state
    match_fraction: float = 0.0
    match_total: int = 0
    logical_sloc: int = 0
    subprograms: int = 0
    average_mccabe: float = 0.0
    #: Probe tier; ``None`` until the state earns the expensive pass.
    feasible: Optional[bool] = None
    work_units: Optional[int] = None
    probe_total: Optional[int] = None
    probe_discharged: Optional[int] = None

    @property
    def probed(self) -> bool:
        return self.work_units is not None

    @property
    def probe_fraction(self) -> float:
        if not self.probe_total:
            return 1.0
        return self.probe_discharged / self.probe_total

    def static_score(self, weights: ScoreWeights) -> float:
        return (weights.match * self.match_fraction
                - weights.sloc * self.logical_sloc
                - weights.mccabe * self.average_mccabe)

    def score(self, weights: ScoreWeights) -> float:
        """Full score; probe components contribute only once measured."""
        value = self.static_score(weights)
        if self.probed:
            value -= weights.work * math.log10(self.work_units + 1)
            value += weights.probe * self.probe_fraction
            if not self.feasible:
                value -= weights.infeasible
        return value

    def to_json(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "StateEvaluation":
        return cls(**payload)


def candidate_token(transformation) -> str:
    """Deterministic identity of a transformation instance: class name
    plus field values (dataclass) or description (plain class).  Used for
    cache keys, dedupe, and cross-backend chain comparison."""
    cls = type(transformation).__name__
    if dataclasses.is_dataclass(transformation):
        fields = tuple((f.name, repr(getattr(transformation, f.name)))
                       for f in dataclasses.fields(transformation))
        return f"{cls}{fields!r}"
    return f"{cls}({transformation.describe()!r})"


# ---------------------------------------------------------------------------
# Evaluation (module-level: rides CallPayload through every backend)
# ---------------------------------------------------------------------------

def evaluate_candidate(package, package_fp: str, transformation,
                       reference, parent_match: Optional[tuple] = None,
                       probe: bool = False,
                       probe_tree_bytes: int = DEFAULT_PROBE_TREE_BYTES,
                       probe_vcs: int = DEFAULT_PROBE_VCS
                       ) -> Dict[str, Any]:
    """Mechanically apply ``transformation`` to ``package`` and measure
    the result state; with ``transformation=None``, measure ``package``
    itself (the root state).

    Returns :class:`StateEvaluation` as a JSON dict (the obligation cache
    stores it verbatim).  ``parent_match`` is the parent state's
    ``(match_fraction, match_total)``; a ``match_neutral`` transformation
    reuses it instead of re-extracting the skeleton.  Inapplicability
    (``TransformationError``, type errors) is a result, not an exception.
    """
    from ..lang import analyze
    from ..lang.errors import MiniAdaError
    from ..metrics import complexity_metrics, element_metrics
    from ..refactor.engine import TransformationError

    typed = _typed_package(package_fp, package)
    if transformation is None:
        child = typed
    else:
        try:
            new_package = transformation.apply(typed)
            child = analyze(new_package)
        except (TransformationError, MiniAdaError) as exc:
            return StateEvaluation(
                applicable=False, reason=str(exc)).to_json()

    from ..exec.cache import package_fingerprint
    fingerprint = package_fingerprint(child)

    if transformation is not None \
            and getattr(transformation, "match_neutral", False) \
            and parent_match is not None:
        match_fraction, match_total = parent_match
    else:
        match_fraction, match_total = _match_components(child, reference)

    elements = element_metrics(child.package)
    complexity = complexity_metrics(child.package)
    evaluation = dict(
        applicable=True, fingerprint=fingerprint,
        match_fraction=match_fraction, match_total=match_total,
        logical_sloc=elements.logical_sloc,
        subprograms=elements.subprograms,
        average_mccabe=complexity.average_mccabe,
    )
    if probe:
        evaluation.update(_probe(child, probe_tree_bytes, probe_vcs))
    return StateEvaluation(**evaluation).to_json()


def _match_components(typed, reference) -> tuple:
    """(fraction, total) of the spec-structure match ratio against the
    reference theory; a state whose skeleton cannot even be extracted is
    maximally far from specification shape."""
    from ..extract import match_ratio
    from ..extract.skeleton import SkeletonError, extract_skeleton
    if reference is None:
        return 0.0, 0
    try:
        skeleton = extract_skeleton(typed)
    except SkeletonError:
        return 0.0, 0
    ratio = match_ratio(reference, skeleton)
    return ratio.ratio, ratio.total


def _probe(typed, probe_tree_bytes: int, probe_vcs: int) -> Dict[str, Any]:
    """The expensive tier: budgeted examiner + bounded auto-prover pass.

    Protocol follows figure 2's measurement: postconditions set to true,
    VCs generated and simplified under the (reduced) resource budget.
    The deliberately-small budget keeps the probe ~0.1 s even on the
    fully unrolled AES; deep states report ``feasible=False`` plus their
    partial work, which the score penalizes."""
    from ..lang import analyze, with_true_postconditions
    from ..prover.auto import AutoProver
    from ..vcgen import Examiner, ExaminerLimits

    stripped = analyze(with_true_postconditions(typed.package))
    limits = ExaminerLimits(max_tree_bytes=probe_tree_bytes)
    report = Examiner(stripped, limits=limits).examine()

    vcs = [vc for analysis in report.per_subprogram.values()
           for vc in analysis.vcs]
    discharged = sum(1 for vc in vcs if vc.simplified.discharged)
    residues = sorted(
        (vc for vc in vcs if not vc.simplified.discharged),
        key=lambda vc: (vc.simplified_bytes, vc.subprogram, vc.name))
    for vc in residues[:probe_vcs]:
        # timeout_seconds=None: bounded by the prover's deterministic
        # internal budgets, never by a wall clock.
        prover = AutoProver(stripped, subprogram_name=vc.subprogram,
                            timeout_seconds=None)
        if prover.prove(vc.simplified.simplified).proved:
            discharged += 1
    return dict(feasible=report.feasible, work_units=report.work_units,
                probe_total=len(vcs), probe_discharged=discharged)
