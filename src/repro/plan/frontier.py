"""The planner's search frontier: deterministic best-first with a beam.

States are ordered by score, descending; ties break on depth,
*descending*, then on a *seeded canonical tie token* --
``make_key(seed, fingerprint)`` -- so the order is a pure function of
(program content, seed).  No wall-clock times, no ``id()`` values, no
insertion-order dependence: two runs of the same search, on any
scheduler backend, pop states in exactly the same order.

Deeper-on-ties matters on score plateaus.  Setup moves (a rename that
makes a catalog entry applicable) are often score-*neutral*: their
payoff appears one or more steps later.  Breaking exact ties by hash
alone makes survival of such a multi-step line a lottery against the
sea of equally-scored sibling permutations, and the beam routinely
prunes the only progressing chain.  Preferring the deeper state commits
the search along a line until its score genuinely changes, while the
score still dominates ordering and the beam still protects against
dips.

The beam bounds memory: after each expansion the frontier keeps only the
``beam_width`` best open states.  Beam pruning is what makes the search
*informed* rather than exhaustive -- the paper's observation is that the
metrics gradient (match ratio up, VC size down) reliably points along
the human's chain, so a narrow beam suffices; the score dip at the word-
packing reversal (match briefly falls while the representation changes)
is why the beam must hold more than one state.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ..lang import ast
from .scoring import StateEvaluation

__all__ = ["PlanStep", "PlanState", "Frontier"]


@dataclass(frozen=True)
class PlanStep:
    """One committed edge of a plan (JSON-able)."""

    token: str          # canonical transformation identity
    description: str
    category: str
    origin: str         # 'library' | 'catalog' | 'align'
    entry: Optional[str] = None
    score: float = 0.0
    match_percent: float = 0.0
    fingerprint: str = ""

    def to_json(self) -> dict:
        import dataclasses
        return dataclasses.asdict(self)


@dataclass
class PlanState:
    """One node of the search: a program version plus how we got there.

    The child *package* is not materialized until the state is popped and
    validated (the engine's theorem replay produces it); until then the
    state carries its parent's package and the transformation, which is
    all validation needs."""

    fingerprint: str
    evaluation: StateEvaluation
    score: float
    tie: str                        # seeded canonical tie-break token
    depth: int
    chain: Tuple[PlanStep, ...]
    applied_entries: frozenset
    goal: bool = False
    #: Edge back to the parent; None for the root.
    parent_package: Optional[ast.Package] = None
    transformation: Optional[object] = None
    origin: str = "root"
    entry: Optional[str] = None
    #: Filled at pop time by theorem-checked replay.
    package: Optional[ast.Package] = None

    @property
    def order_key(self) -> Tuple[float, int, str]:
        return (-self.score, -self.depth, self.tie)


class Frontier:
    """Sorted open list with beam pruning and a visited set."""

    def __init__(self, beam_width: int):
        self.beam_width = beam_width
        self._states: List[PlanState] = []
        self._keys: List[Tuple[float, str]] = []
        self.visited: Set[str] = set()

    def __len__(self) -> int:
        return len(self._states)

    def push(self, state: PlanState) -> None:
        at = bisect.bisect_right(self._keys, state.order_key)
        self._keys.insert(at, state.order_key)
        self._states.insert(at, state)

    def pop(self) -> PlanState:
        self._keys.pop(0)
        return self._states.pop(0)

    def prune(self) -> int:
        """Apply the beam: drop everything past the ``beam_width`` best."""
        dropped = len(self._states) - self.beam_width
        if dropped > 0:
            del self._states[self.beam_width:]
            del self._keys[self.beam_width:]
        return max(0, dropped)
