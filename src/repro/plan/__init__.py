"""Automated verification-refactoring planning (DESIGN.md §17).

``repro.plan`` closes the loop the paper leaves to the human: given a
program, its specification theory, and the transformation library, it
*discovers* a chain of semantics-preserving refactorings that carries
the program into a provable, specification-aligned form -- enumerate
candidate sites, score the resulting states on the repo's own metrics,
search best-first under a beam, and validate every accepted step with
the engine's semantics-preservation theorem.

Entry points: :class:`Planner` (library),
``python -m repro.plan`` (CLI), ``python -m repro.harness --plan``
(harness report mode), and :func:`plan_aes` for the AES case study.
"""

from .cache import PLAN_CACHE_SCHEMA, PlanCache, scoring_digest
from .catalog import AlignWithSpecification, Catalog, CatalogEntry, \
    aes_catalog
from .candidates import Candidate, enumerate_candidates
from .frontier import Frontier, PlanState, PlanStep
from .scoring import ScoreWeights, StateEvaluation, candidate_token, \
    evaluate_candidate
from .search import Planner, PlanResult

__all__ = [
    "Planner", "PlanResult", "plan_aes",
    "PlanCache", "PLAN_CACHE_SCHEMA", "scoring_digest",
    "Catalog", "CatalogEntry", "AlignWithSpecification", "aes_catalog",
    "Candidate", "enumerate_candidates",
    "Frontier", "PlanState", "PlanStep",
    "ScoreWeights", "StateEvaluation", "candidate_token",
    "evaluate_candidate",
]


def plan_aes(trials: int = 2, seed: int = 20090701, exec=None,
             beam_width: int = 12, top_k: int = 6,
             max_expansions: int = 256, plan_cache=None,
             log=None) -> PlanResult:
    """Plan the AES case study: optimized implementation toward the
    FIPS-197 architecture, with the section-6.2.2 user-specified moves
    available in the catalog.  ``plan_cache`` is a path for the
    persistent :class:`PlanCache` -- a second run replays the whole
    scored frontier warm."""
    from ..aes.blocks import cipher_sampler
    from ..aes.fips197 import fips197_theory
    from ..aes.optimized import optimized_source
    from ..lang import parse_package

    planner = Planner(
        parse_package(optimized_source()),
        observables=["Cipher", "Inv_Cipher"],
        reference=fips197_theory(),
        catalog=aes_catalog(),
        beam_width=beam_width, top_k=top_k,
        max_expansions=max_expansions,
        check="differential", trials=trials, seed=seed,
        samplers={"Cipher": cipher_sampler, "Inv_Cipher": cipher_sampler},
        exec=exec, plan_cache=plan_cache, log=log)
    return planner.plan()
