"""Command line for the automated planner: ``python -m repro.plan``.

Plans the AES case study by default and prints the discovered chain as
a human-readable report (or JSON with ``--json``).  Execution flags
mirror the harness: ``--jobs``/``--backend`` configure the obligation
scheduler the planner fans candidate evaluations out on.
"""

from __future__ import annotations

import json
import sys
import time
from typing import List, Optional

from ..exec import ExecConfig

__all__ = ["main"]


def _flag_value(argv: List[str], flag: str) -> Optional[str]:
    for i, arg in enumerate(argv):
        if arg == flag and i + 1 < len(argv):
            return argv[i + 1]
        if arg.startswith(flag + "="):
            return arg.split("=", 1)[1]
    return None


def _int_flag(argv: List[str], flag: str, default: int) -> int:
    raw = _flag_value(argv, flag)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise SystemExit(f"{flag} needs an integer, got {raw!r}")


def render_report(result, elapsed: float) -> str:
    """The plan as a markdown-ish report (shared with the harness)."""
    lines = [
        "# Automated verification-refactoring plan",
        "",
        f"chain found: {result.found}  "
        f"({result.step_count} steps, {result.expansions} expansions, "
        f"{result.evaluations} candidate evaluations, "
        f"{result.validations} theorem validations, "
        f"{len(result.rejected)} rejected)",
        f"chain digest: {result.chain_digest}",
        f"wall time: {elapsed:.1f} s",
        "",
        "| # | step | origin | match % | score |",
        "|---|------|--------|---------|-------|",
    ]
    for i, step in enumerate(result.steps, start=1):
        lines.append(
            f"| {i} | {step.description} | {step.origin} "
            f"| {step.match_percent:.1f} | {step.score:+.4f} |")
    evaluation = result.final_evaluation
    if evaluation is not None:
        lines += [
            "",
            f"final state: match {100 * evaluation.match_fraction:.1f}%, "
            f"{evaluation.logical_sloc} logical SLOC, "
            f"avg McCabe {evaluation.average_mccabe:.2f}",
        ]
        if evaluation.probed:
            lines.append(
                f"probe: {evaluation.probe_discharged}/"
                f"{evaluation.probe_total} VCs auto-discharged "
                f"(feasible: {evaluation.feasible})")
    if result.rejected:
        lines += ["", "rejected by the preservation theorem:"]
        lines += [f"- {description}: {reason}"
                  for _, description, reason in result.rejected]
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--help" in argv or "-h" in argv:
        print("usage: python -m repro.plan [--jobs N] [--backend B] "
              "[--trials N] [--beam N] [--top-k N] [--max-expansions N] "
              "[--batch-size N] [--batch-bytes-cap N] "
              "[--plan-cache PATH] [--json] [--quiet]")
        return 0
    jobs = _int_flag(argv, "--jobs", 1)
    backend = _flag_value(argv, "--backend") or "thread"
    trials = _int_flag(argv, "--trials", 2)
    beam = _int_flag(argv, "--beam", 12)
    top_k = _int_flag(argv, "--top-k", 6)
    max_expansions = _int_flag(argv, "--max-expansions", 256)
    batch_size = _int_flag(argv, "--batch-size", 16)
    batch_bytes_cap = _int_flag(argv, "--batch-bytes-cap", 4 * 1024 * 1024)
    plan_cache = _flag_value(argv, "--plan-cache")
    quiet = "--quiet" in argv or "--json" in argv

    from . import plan_aes
    try:
        config = ExecConfig(jobs=jobs, backend=backend,
                            batch_size=batch_size,
                            batch_bytes_cap=batch_bytes_cap)
    except ValueError as exc:
        # Loud failure over silent degradation: a nonsensical batching
        # knob must stop the run, not quietly drop work.
        raise SystemExit(str(exc))
    log = (lambda message: None) if quiet \
        else (lambda message: print(f"  {message}", flush=True))
    started = time.monotonic()
    result = plan_aes(trials=trials, exec=config, beam_width=beam,
                      top_k=top_k, max_expansions=max_expansions,
                      plan_cache=plan_cache, log=log)
    elapsed = time.monotonic() - started
    if "--json" in argv:
        payload = result.to_json()
        payload["wall_seconds"] = round(elapsed, 3)
        print(json.dumps(payload, indent=2))
    else:
        print(render_report(result, elapsed))
    return 0 if result.found else 1


if __name__ == "__main__":
    raise SystemExit(main())
