"""Cross-obligation normalization cache.

The pipeline's per-VC hot path builds a *fresh* :class:`~repro.logic
.rewriter.Rewriter` for every verification condition (the auto prover
constructs one simplifier per ``prove`` call), so the rewriter's own DAG
memo -- keyed on interning ids, scoped to one instance -- cannot carry a
normal form from one VC to the next even though AES VCs share most of
their structure (round bodies, table axioms).  This module provides the
memo that survives: a bounded, thread-safe LRU mapping

    (rules_key, canonical fingerprint of the input subterm)
        -> its normal form

where ``rules_key`` names everything that determines the normal form
besides the term itself (package fingerprint, subprogram -- the type-bound
hook differs per subprogram -- excluded rule families, and whether the
prover's extra rules are loaded).  Keying on :func:`repro.logic.canon
.fingerprint` rather than interning ids makes entries meaningful across
rewriter instances, across threads, and across the process boundary: the
implementation-proof session exports a subprogram's warm entries into its
:class:`~repro.exec.payload.VCPayload` batch, and process-pool workers
absorb them before discharging (terms re-intern through the wire format,
so the cached normal forms keep hash-consing identity worker-side).

Soundness is inherited from the rewriter's own DAG memo: rewriting is
context-free (a rule sees one node, never its ancestors), so a subterm's
normal form under a fixed rule set is position-independent -- exactly the
property the per-instance memo already relies on -- and caching it across
instances keyed by (rule set, term identity) changes no result.  Only
*converged* results are published.  Eviction is least-recently-used; the
cache never invalidates (terms are immutable and the rules are pinned by
the key), it only bounds memory.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Iterable, List, Optional, Tuple

from .terms import Term

__all__ = ["NormalizationCache", "NormScope", "default_norm_cache",
           "DEFAULT_NORM_CACHE_ENTRIES"]

#: Default LRU capacity.  An AES-sized implementation proof publishes a
#: few tens of thousands of distinct subterm normal forms; 1<<16 keeps
#: the whole working set resident while bounding a long harness run.
DEFAULT_NORM_CACHE_ENTRIES = 1 << 16


class NormalizationCache:
    """Bounded, thread-safe LRU of normal forms keyed by
    ``(rules_key, fingerprint)``."""

    def __init__(self, max_entries: int = DEFAULT_NORM_CACHE_ENTRIES):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries!r}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, str], Term]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    # -- core ---------------------------------------------------------------

    def get(self, rules_key: str, fp: str) -> Optional[Term]:
        key = (rules_key, fp)
        with self._lock:
            term = self._entries.get(key)
            if term is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return term

    def put(self, rules_key: str, fp: str, term: Term) -> None:
        key = (rules_key, fp)
        entries = self._entries
        with self._lock:
            if key in entries:
                entries.move_to_end(key)
                entries[key] = term
                return
            entries[key] = term
            while len(entries) > self.max_entries:
                entries.popitem(last=False)

    def scope(self, rules_key: str) -> "NormScope":
        """A single-key view suitable for :class:`~repro.logic.rewriter
        .Rewriter`'s ``shared`` parameter."""
        return NormScope(self, rules_key)

    # -- payload warm-shipping ----------------------------------------------

    def export(self, rules_key: str,
               limit: Optional[int] = None) -> List[Tuple[str, Term]]:
        """The scope's ``(fingerprint, normal form)`` pairs, most recently
        used last; with ``limit``, only the *most* recently used entries
        (the biggest, latest-converging subtrees publish last, so the MRU
        tail is the valuable end to ship to workers)."""
        with self._lock:
            pairs = [(fp, term) for (rk, fp), term in self._entries.items()
                     if rk == rules_key]
        if limit is not None and len(pairs) > limit:
            pairs = pairs[-limit:]
        return pairs

    def absorb(self, rules_key: str,
               pairs: Iterable[Tuple[str, Term]]) -> None:
        """Install exported entries (worker-side warm-up)."""
        for fp, term in pairs:
            self.put(rules_key, fp, term)

    # -- stats / maintenance ------------------------------------------------

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = 0


class NormScope:
    """A :class:`NormalizationCache` bound to one ``rules_key``: the
    ``shared`` handle a rewriter consults (``get``/``put`` by fingerprint
    alone, on its hot path)."""

    __slots__ = ("cache", "rules_key")

    def __init__(self, cache: NormalizationCache, rules_key: str):
        self.cache = cache
        self.rules_key = rules_key

    def get(self, fp: str) -> Optional[Term]:
        return self.cache.get(self.rules_key, fp)

    def put(self, fp: str, term: Term) -> None:
        self.cache.put(self.rules_key, fp, term)


_DEFAULT: Optional[NormalizationCache] = None
_DEFAULT_LOCK = threading.Lock()


def default_norm_cache() -> NormalizationCache:
    """The process-wide cache (used by process-pool workers, where the
    session object that owns a per-run instance does not exist).
    ``REPRO_NORM_CACHE_SIZE`` overrides the capacity."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            size = int(os.environ.get("REPRO_NORM_CACHE_SIZE", "0")) \
                or DEFAULT_NORM_CACHE_ENTRIES
            _DEFAULT = NormalizationCache(max_entries=size)
        return _DEFAULT
