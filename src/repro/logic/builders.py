"""Smart constructors for :class:`repro.logic.terms.Term`.

These perform *light, local* normalization at construction time -- constant
folding, flattening of associative operators, canonical argument ordering for
commutative operators, unit/annihilator laws.  Deeper simplification (the
SPARK-Simplifier substitute) lives in :mod:`repro.logic.rewriter` /
:mod:`repro.logic.rules`.

Keeping construction-time normalization *light* is deliberate: the paper's
headline phenomenon is the size of *generated* verification conditions before
simplification (figure 2(d) vs 2(e)), so the VC generator must not secretly
simplify its output.  The constructors here only do what the SPARK Examiner's
own term builder does: fold literals and normalize trivial units.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from .canon import fingerprint
from .terms import COMMUTATIVE_OPS, Term, mk

__all__ = [
    "TRUE", "FALSE", "intc", "boolc", "var", "conj", "disj", "neg",
    "implies", "iff", "ite", "eq", "ne", "lt", "le", "gt", "ge",
    "add", "sub", "mul", "divi", "modi", "xor", "band", "bor", "bnot",
    "shl", "shr", "select", "store", "apply", "forall", "exists",
]

TRUE = mk("bool", value=True)
FALSE = mk("bool", value=False)


def intc(n: int) -> Term:
    """Integer literal."""
    return mk("int", value=int(n))


def boolc(b: bool) -> Term:
    return TRUE if b else FALSE


def var(name: str) -> Term:
    """Logical variable (program variable, bound variable, or fresh symbol)."""
    return mk("var", value=name)


def _sorted_args(args: Sequence[Term]) -> Tuple[Term, ...]:
    # Canonical order must not depend on interning ids: ids encode the
    # process's construction history, and two processes reaching the same
    # logical term along different paths (a farm worker unpickling leases
    # vs. the coordinator generating VCs) would otherwise hold different
    # argument orders -- and the provers' search order with them.  The
    # structural Merkle digest is history-free and memoized per term.
    return tuple(sorted(args, key=fingerprint))


def _flatten(op: str, args: Iterable[Term]) -> list:
    out = []
    for a in args:
        if a.op == op:
            out.extend(a.args)
        else:
            out.append(a)
    return out


# ---------------------------------------------------------------------------
# Boolean connectives
# ---------------------------------------------------------------------------

def conj(*args: Term) -> Term:
    """N-ary conjunction: flattens, drops ``true``, short-circuits ``false``."""
    flat = _flatten("and", args)
    kept = []
    seen = set()
    for a in flat:
        if a.is_true:
            continue
        if a.is_false:
            return FALSE
        if a._id not in seen:
            seen.add(a._id)
            kept.append(a)
    if not kept:
        return TRUE
    if len(kept) == 1:
        return kept[0]
    return mk("and", _sorted_args(kept))


def disj(*args: Term) -> Term:
    flat = _flatten("or", args)
    kept = []
    seen = set()
    for a in flat:
        if a.is_false:
            continue
        if a.is_true:
            return TRUE
        if a._id not in seen:
            seen.add(a._id)
            kept.append(a)
    if not kept:
        return FALSE
    if len(kept) == 1:
        return kept[0]
    return mk("or", _sorted_args(kept))


def neg(a: Term) -> Term:
    if a.is_true:
        return FALSE
    if a.is_false:
        return TRUE
    if a.op == "not":
        return a.args[0]
    return mk("not", (a,))


def implies(a: Term, b: Term) -> Term:
    if a.is_true:
        return b
    if a.is_false or b.is_true:
        return TRUE
    if b.is_false:
        return neg(a)
    if a is b:
        return TRUE
    return mk("implies", (a, b))


def iff(a: Term, b: Term) -> Term:
    if a is b:
        return TRUE
    if a.is_true:
        return b
    if b.is_true:
        return a
    if a.is_false:
        return neg(b)
    if b.is_false:
        return neg(a)
    return mk("iff", _sorted_args((a, b)))


def ite(c: Term, t: Term, e: Term) -> Term:
    if c.is_true:
        return t
    if c.is_false:
        return e
    if t is e:
        return t
    return mk("ite", (c, t, e))


# ---------------------------------------------------------------------------
# Relations
# ---------------------------------------------------------------------------

def eq(a: Term, b: Term) -> Term:
    if a is b:
        return TRUE
    if a.is_literal and b.is_literal:
        return boolc(a.value == b.value)
    return mk("eq", _sorted_args((a, b)))


def ne(a: Term, b: Term) -> Term:
    return neg(eq(a, b))


def lt(a: Term, b: Term) -> Term:
    if a is b:
        return FALSE
    if a.op == "int" and b.op == "int":
        return boolc(a.value < b.value)
    return mk("lt", (a, b))


def le(a: Term, b: Term) -> Term:
    if a is b:
        return TRUE
    if a.op == "int" and b.op == "int":
        return boolc(a.value <= b.value)
    return mk("le", (a, b))


def gt(a: Term, b: Term) -> Term:
    return lt(b, a)


def ge(a: Term, b: Term) -> Term:
    return le(b, a)


# ---------------------------------------------------------------------------
# Arithmetic (integers; division/modulo are Python floor semantics, which
# agree with Ada semantics on the nonnegative operands MiniAda programs use)
# ---------------------------------------------------------------------------

def add(*args: Term) -> Term:
    flat = _flatten("add", args)
    const = 0
    rest = []
    for a in flat:
        if a.op == "int":
            const += a.value
        else:
            rest.append(a)
    if const != 0 or not rest:
        rest.append(intc(const))
    if len(rest) == 1:
        return rest[0]
    return mk("add", _sorted_args(rest))


def mul(*args: Term) -> Term:
    flat = _flatten("mul", args)
    const = 1
    rest = []
    for a in flat:
        if a.op == "int":
            const *= a.value
        else:
            rest.append(a)
    if const == 0:
        return intc(0)
    if const != 1 or not rest:
        rest.append(intc(const))
    if len(rest) == 1:
        return rest[0]
    return mk("mul", _sorted_args(rest))


def sub(a: Term, b: Term) -> Term:
    """Normalized to ``a + (-1)*b`` so sums stay in one associative class."""
    return add(a, mul(intc(-1), b))


def divi(a: Term, b: Term) -> Term:
    if a.op == "int" and b.op == "int" and b.value != 0:
        return intc(a.value // b.value)
    if b.op == "int" and b.value == 1:
        return a
    return mk("div", (a, b))


def modi(a: Term, b: Term) -> Term:
    if a.op == "int" and b.op == "int" and b.value != 0:
        return intc(a.value % b.value)
    if b.op == "int" and b.value == 1:
        return intc(0)
    return mk("mod", (a, b))


# ---------------------------------------------------------------------------
# Bitwise operators over naturals
# ---------------------------------------------------------------------------

def xor(*args: Term) -> Term:
    """N-ary bitwise xor: folds literals, cancels equal pairs, drops 0."""
    flat = _flatten("xor", args)
    const = 0
    counts = {}
    order = []
    for a in flat:
        if a.op == "int":
            const ^= a.value
        else:
            if a._id not in counts:
                order.append(a)
            counts[a._id] = counts.get(a._id, 0) + 1
    rest = [a for a in order if counts[a._id] % 2 == 1]
    if const != 0 or not rest:
        rest.append(intc(const))
    if len(rest) == 1:
        return rest[0]
    return mk("xor", _sorted_args(rest))


def band(*args: Term) -> Term:
    flat = _flatten("band", args)
    const = -1
    rest = []
    seen = set()
    for a in flat:
        if a.op == "int":
            const &= a.value
        elif a._id not in seen:
            seen.add(a._id)
            rest.append(a)
    if const == 0:
        return intc(0)
    if const != -1 or not rest:
        rest.append(intc(const))
    if len(rest) == 1:
        return rest[0]
    return mk("band", _sorted_args(rest))


def bor(*args: Term) -> Term:
    flat = _flatten("bor", args)
    const = 0
    rest = []
    seen = set()
    for a in flat:
        if a.op == "int":
            const |= a.value
        elif a._id not in seen:
            seen.add(a._id)
            rest.append(a)
    if const != 0 or not rest:
        rest.append(intc(const))
    if len(rest) == 1:
        return rest[0]
    return mk("bor", _sorted_args(rest))


def bnot(a: Term, width: int) -> Term:
    """Bitwise complement within ``width`` bits."""
    mask = (1 << width) - 1
    if a.op == "int":
        return intc(a.value ^ mask)
    if a.op == "bnot" and a.value == width:
        return a.args[0]
    return mk("bnot", (a,), value=width)


def shl(a: Term, b: Term) -> Term:
    if a.op == "int" and b.op == "int":
        return intc(a.value << b.value)
    if b.op == "int" and b.value == 0:
        return a
    return mk("shl", (a, b))


def shr(a: Term, b: Term) -> Term:
    if a.op == "int" and b.op == "int":
        return intc(a.value >> b.value)
    if b.op == "int" and b.value == 0:
        return a
    return mk("shr", (a, b))


# ---------------------------------------------------------------------------
# Arrays and applications
# ---------------------------------------------------------------------------

def select(arr: Term, idx: Term) -> Term:
    """Array read, with read-over-write resolution when indices are decided."""
    while arr.op == "store":
        base, widx, wval = arr.args
        if widx is idx:
            return wval
        if widx.op == "int" and idx.op == "int":
            if widx.value == idx.value:
                return wval
            arr = base
            continue
        break
    return mk("select", (arr, idx))


def store(arr: Term, idx: Term, val: Term) -> Term:
    if arr.op == "store" and arr.args[1] is idx:
        arr = arr.args[0]
    return mk("store", (arr, idx, val))


def apply(fname: str, *args: Term) -> Term:
    """Application of a named (interpreted or uninterpreted) function."""
    return mk("apply", tuple(args), value=fname)


def forall(names: Sequence[str], body: Term) -> Term:
    if body.op == "bool":
        return body
    names = tuple(n for n in names if n in body.free_vars())
    if not names:
        return body
    return mk("forall", (body,), value=names)


def exists(names: Sequence[str], body: Term) -> Term:
    if body.op == "bool":
        return body
    names = tuple(n for n in names if n in body.free_vars())
    if not names:
        return body
    return mk("exists", (body,), value=names)
