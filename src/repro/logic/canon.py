"""Deterministic canonical serialization of terms.

Cache keys for proof obligations (:mod:`repro.exec.cache`) must be stable
across processes, and -- since the distributed proof farm (DESIGN.md §16)
promises verdicts bit-identical to the serial backend -- so must the
in-memory canonical form of every term.  The smart constructors
(:func:`repro.logic.builders._sorted_args`) order commutative arguments
by the :func:`fingerprint` defined here, which is independent of
construction order and process history.  Python hash randomization never
leaks into terms either (argument tuples, not sets, everywhere).

Two canonical views:

``fingerprint``     a Merkle-style SHA-256 digest computed bottom-up over
                    the DAG.  Commutative operators hash the *sorted*
                    tuple of child digests, and quantifier binder lists
                    are sorted, so the digest is independent of
                    construction order and process history.  Linear in
                    DAG size; this is what cache keys use.

``canonical_text``  a human-readable canonical rendering with the same
                    sorting rules and normalized single-space layout.
                    Tree-sized (shared subterms are printed at every
                    occurrence), so intended for the small terms that
                    survive simplification -- tests, debugging, and
                    golden output.
"""

from __future__ import annotations

import hashlib
from typing import Dict

from .terms import COMMUTATIVE_OPS, Term
from .traversal import postorder_missing

__all__ = ["fingerprint", "canonical_text"]

#: Digest cache, keyed by interning id.  Terms are immutable and live for
#: the process lifetime (the interning table never evicts), so entries
#: never go stale.  Concurrent writes race benignly: every thread computes
#: the same digest for the same term.
_digest_cache: Dict[int, str] = {}


def _value_token(value) -> str:
    """A stable token for a node payload (int, bool, str, tuple of names,
    or None)."""
    if value is None:
        return ""
    if isinstance(value, tuple):
        return ",".join(sorted(value))
    return repr(value)


def fingerprint(term: Term) -> str:
    """SHA-256 hex digest of the canonical form of ``term``.

    Stable across processes, interning order, and hash randomization:
    structurally equal terms (modulo commutative argument order and binder
    list order) always produce the same digest.
    """
    cache = _digest_cache
    hit = cache.get(term._id)
    if hit is not None:
        return hit
    # Post-order over the DAG so children are hashed before parents; the
    # walk prunes at already-digested subterms, so re-fingerprinting after
    # the DAG grows costs only the new nodes.
    for node in postorder_missing(term, cache):
        child = [cache[a._id] for a in node.args]
        if node.op in COMMUTATIVE_OPS:
            child = sorted(child)
        payload = "\x1f".join([node.op, _value_token(node.value)] + child)
        cache[node._id] = hashlib.sha256(payload.encode()).hexdigest()
    return cache[term._id]


_INFIX = {
    "and": "and", "or": "or", "implies": "->", "iff": "<->",
    "eq": "=", "lt": "<", "le": "<=",
    "add": "+", "mul": "*", "div": "div", "mod": "mod",
    "xor": "xor", "band": "&", "bor": "|",
    "shl": "<<", "shr": ">>", "sub": "-",
}


def canonical_text(term: Term, max_chars: int = 1_000_000) -> str:
    """Render ``term`` in a canonical, whitespace-normalized form.

    Commutative arguments and quantifier binder lists are sorted by their
    rendered text, so the output -- unlike :func:`repro.logic.printer.render`
    -- does not depend on interning order.  The result is truncated with an
    ellipsis at ``max_chars`` (canonical text is tree-sized; use
    :func:`fingerprint` for large or heavily shared terms).
    """
    memo: Dict[int, str] = {}
    for node in postorder_missing(term, memo):
        args = [memo[a._id] for a in node.args]
        if node.op in COMMUTATIVE_OPS:
            args = sorted(args)
        op = node.op
        if op == "int":
            text = str(node.value)
        elif op == "bool":
            text = "true" if node.value else "false"
        elif op == "var":
            text = str(node.value)
        elif op == "not":
            text = f"not({args[0]})"
        elif op == "bnot":
            text = f"bnot{node.value}({args[0]})"
        elif op == "neg":
            text = f"-({args[0]})"
        elif op == "ite":
            text = f"(if {args[0]} then {args[1]} else {args[2]})"
        elif op == "select":
            text = f"{args[0]}[{args[1]}]"
        elif op == "store":
            text = f"store({args[0]}, {args[1]}, {args[2]})"
        elif op == "apply":
            text = f"{node.value}({', '.join(args)})"
        elif op in ("forall", "exists"):
            names = ", ".join(sorted(node.value))
            text = f"({op} {names}: {args[0]})"
        elif op in _INFIX:
            text = "(" + f" {_INFIX[op]} ".join(args) + ")"
        else:
            text = f"{op}({', '.join(args)})"
        memo[node._id] = text
    out = memo[term._id]
    if len(out) > max_chars:
        return out[:max_chars] + "…"
    return out
