"""Shared logical term language.

Verification conditions, symbolic states and proof obligations throughout
the Echo reproduction are hash-consed :class:`~repro.logic.terms.Term` DAGs.
See :mod:`repro.logic.terms` for the operator vocabulary.
"""

from .canon import canonical_text, fingerprint
from .builders import (
    FALSE, TRUE, add, apply, band, bnot, boolc, bor, conj, disj, divi, eq,
    exists, forall, ge, gt, iff, implies, intc, ite, le, lt, modi, mul, ne,
    neg, select, shl, shr, store, sub, var, xor,
)
from .measure import dag_size, max_depth, tree_bytes, tree_size
from .normcache import NormalizationCache, NormScope, default_norm_cache
from .printer import render, render_full
from .rewriter import Rewriter, RewriteBudgetExceeded, RewriteStats, Rule
from .rules import decide_relation, default_rules, interval_of, rule_families
from .substitute import rebuild_smart, substitute, substitute_simplifying
from .terms import Term, mk, term_table
from .traversal import postorder_missing, run_trampoline
from .wire import (
    WireFormatError, decode_term, decode_terms, encode_term, encode_terms,
)

__all__ = [
    "Term", "mk", "term_table",
    "TRUE", "FALSE", "intc", "boolc", "var", "conj", "disj", "neg",
    "implies", "iff", "ite", "eq", "ne", "lt", "le", "gt", "ge",
    "add", "sub", "mul", "divi", "modi", "xor", "band", "bor", "bnot",
    "shl", "shr", "select", "store", "apply", "forall", "exists",
    "dag_size", "tree_size", "tree_bytes", "max_depth",
    "render", "render_full", "canonical_text", "fingerprint",
    "Rewriter", "Rule", "RewriteStats", "RewriteBudgetExceeded",
    "NormalizationCache", "NormScope", "default_norm_cache",
    "default_rules", "rule_families", "interval_of", "decide_relation",
    "substitute", "substitute_simplifying", "rebuild_smart",
    "run_trampoline", "postorder_missing",
    "encode_term", "decode_term", "encode_terms", "decode_terms",
    "WireFormatError",
]
