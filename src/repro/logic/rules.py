"""Simplification rule families and interval reasoning.

The SPARK Simplifier discharges the bulk of generated VCs with shallow
reasoning: constant propagation, interval/bounds arguments for range checks,
equality substitution, and hypothesis pruning.  This module provides the
same families, each tagged so the ablation benchmarks can disable one family
at a time:

``bounds``     discharge relations via sound context-free interval analysis
``boolean``    absorption / negation-of-relation cleanup
``equality``   orientation and use of variable equalities
``arrays``     select/store axioms beyond the constructor-level ones

:func:`interval_of` is also used directly by the prover with an environment
of known variable ranges harvested from VC hypotheses.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from . import builders as b
from .rewriter import Rule
from .terms import Term

__all__ = [
    "interval_of", "decide_relation", "default_rules", "rule_families",
    "Interval",
]

#: (lo, hi) with ``None`` meaning unbounded on that side.
Interval = Tuple[Optional[int], Optional[int]]

_UNBOUNDED: Interval = (None, None)


def _add_bound(x: Optional[int], y: Optional[int]) -> Optional[int]:
    if x is None or y is None:
        return None
    return x + y


def _next_mask(n: int) -> int:
    """Smallest ``2^k - 1`` that is ``>= n`` (for xor/or upper bounds)."""
    if n <= 0:
        return 0
    return (1 << n.bit_length()) - 1


def interval_of(term: Term, env: Dict[str, Interval] = None,
                depth: int = 12, hook=None) -> Interval:
    """A sound interval for an integer-sorted term.

    ``env`` maps variable names to known intervals (harvested from VC
    hypotheses by the caller).  ``hook`` is an optional callable
    ``Term -> Interval | None`` supplying type-derived bounds (the VC
    generator knows, e.g., that any ``select`` from a Byte array is in
    [0, 255]).  Without either, the analysis is still useful because masking
    idioms are self-bounding: ``x & m`` lies in ``[0, m]`` for any integer
    ``x`` when ``m >= 0``, and ``x mod m`` lies in ``[0, m-1]`` for
    ``m > 0`` (Python/Euclidean semantics).
    """
    if depth <= 0:
        return _UNBOUNDED
    op = term.op
    if op == "int":
        return (term.value, term.value)
    if op == "var":
        # Hypothesis-derived bounds and type-derived (hook) bounds are both
        # sound: intersect them (the hypotheses are often tighter).
        elo, ehi = env.get(term.value, _UNBOUNDED) if env else _UNBOUNDED
        hlo, hhi = hook(term) or _UNBOUNDED if hook is not None \
            else _UNBOUNDED
        lo = elo if hlo is None else (hlo if elo is None else max(elo, hlo))
        hi = ehi if hhi is None else (hhi if ehi is None else min(ehi, hhi))
        return (lo, hi)
    if hook is not None:
        hinted = hook(term)
        if hinted is not None:
            return hinted
    if op == "band":
        # Any literal mask bounds the result from both sides.
        best: Interval = _UNBOUNDED
        nonneg_arg = False
        for a in term.args:
            lo, hi = interval_of(a, env, depth - 1, hook)
            if lo is not None and lo >= 0:
                nonneg_arg = True
                if best[1] is None or (hi is not None and hi < best[1]):
                    best = (0, hi)
        if nonneg_arg:
            return (0, best[1])
        return _UNBOUNDED
    if op == "mod":
        m = term.args[1]
        if m.op == "int" and m.value > 0:
            return (0, m.value - 1)
        return _UNBOUNDED
    if op == "add":
        lo, hi = 0, 0
        for a in term.args:
            alo, ahi = interval_of(a, env, depth - 1, hook)
            lo = _add_bound(lo, alo)
            hi = _add_bound(hi, ahi)
            if lo is None and hi is None:
                return _UNBOUNDED
        return (lo, hi)
    if op == "mul":
        los_his = [interval_of(a, env, depth - 1, hook) for a in term.args]
        lo, hi = 1, 1
        for alo, ahi in los_his:
            if alo is None or ahi is None:
                return _UNBOUNDED
            candidates = [lo * alo, lo * ahi, hi * alo, hi * ahi]
            lo, hi = min(candidates), max(candidates)
        return (lo, hi)
    if op == "shr":
        alo, ahi = interval_of(term.args[0], env, depth - 1, hook)
        k = term.args[1]
        if k.op == "int" and k.value >= 0 and alo is not None and alo >= 0:
            return (0, None if ahi is None else ahi >> k.value)
        return _UNBOUNDED
    if op == "shl":
        alo, ahi = interval_of(term.args[0], env, depth - 1, hook)
        k = term.args[1]
        if k.op == "int" and k.value >= 0 and alo is not None and alo >= 0:
            return (alo << k.value, None if ahi is None else ahi << k.value)
        return _UNBOUNDED
    if op in ("xor", "bor"):
        hi_mask = 0
        for a in term.args:
            alo, ahi = interval_of(a, env, depth - 1, hook)
            if alo is None or alo < 0 or ahi is None:
                return _UNBOUNDED
            hi_mask = max(hi_mask, ahi)
        return (0, _next_mask(hi_mask))
    if op == "bnot":
        width = term.value
        return (0, (1 << width) - 1)
    if op == "div":
        alo, ahi = interval_of(term.args[0], env, depth - 1, hook)
        m = term.args[1]
        if m.op == "int" and m.value > 0 and alo is not None and alo >= 0:
            # Floor division is monotone for nonnegative dividends.
            return (alo // m.value, None if ahi is None else ahi // m.value)
        return _UNBOUNDED
    if op == "ite":
        tlo, thi = interval_of(term.args[1], env, depth - 1, hook)
        elo, ehi = interval_of(term.args[2], env, depth - 1, hook)
        lo = None if tlo is None or elo is None else min(tlo, elo)
        hi = None if thi is None or ehi is None else max(thi, ehi)
        return (lo, hi)
    return _UNBOUNDED


def decide_relation(term: Term, env: Dict[str, Interval] = None,
                    hook=None) -> Optional[bool]:
    """Decide ``lt``/``le``/``eq`` relations by interval separation, or None."""
    if term.op not in ("lt", "le", "eq"):
        return None
    alo, ahi = interval_of(term.args[0], env, hook=hook)
    blo, bhi = interval_of(term.args[1], env, hook=hook)
    if term.op == "lt":
        if ahi is not None and blo is not None and ahi < blo:
            return True
        if alo is not None and bhi is not None and alo >= bhi:
            return False
    elif term.op == "le":
        if ahi is not None and blo is not None and ahi <= blo:
            return True
        if alo is not None and bhi is not None and alo > bhi:
            return False
    elif term.op == "eq":
        # Only the disequality direction is decidable by separation.
        if ahi is not None and blo is not None and ahi < blo:
            return False
        if bhi is not None and alo is not None and bhi < alo:
            return False
    return None


# ---------------------------------------------------------------------------
# Rule family: bounds
# ---------------------------------------------------------------------------

def _make_interval_rule(hook=None):
    def _rule_interval_relation(term: Term) -> Optional[Term]:
        decided = decide_relation(term, hook=hook)
        if decided is None:
            return None
        return b.boolc(decided)
    return _rule_interval_relation


def _make_vacuous_forall_rule(hook=None):
    def _rule_vacuous_forall(term: Term) -> Optional[Term]:
        """``forall k: (lo <= k and k <= hi) -> body`` is true when the
        guard range is empty for every valuation (lo always > hi)."""
        if term.op != "forall":
            return None
        body = term.args[0]
        if body.op != "implies":
            return None
        if len(term.value) != 1:
            return None
        the_var = term.value[0]
        guard = body.args[0]
        parts = guard.args if guard.op == "and" else (guard,)
        lows, highs = [], []
        for part in parts:
            if part.op != "le":
                continue
            a, c = part.args
            if c.op == "var" and c.value == the_var:
                lows.append(a)
            elif a.op == "var" and a.value == the_var:
                highs.append(c)
        for low in lows:
            lo_lo, _ = interval_of(low, hook=hook)
            for high in highs:
                _, hi_hi = interval_of(high, hook=hook)
                if lo_lo is not None and hi_hi is not None and lo_lo > hi_hi:
                    return b.TRUE
        return None
    return _rule_vacuous_forall


# ---------------------------------------------------------------------------
# Rule family: boolean
# ---------------------------------------------------------------------------

def _rule_not_relation(term: Term) -> Optional[Term]:
    """not (a < b) -> b <= a;   not (a <= b) -> b < a."""
    if term.op != "not":
        return None
    inner = term.args[0]
    if inner.op == "lt":
        return b.le(inner.args[1], inner.args[0])
    if inner.op == "le":
        return b.lt(inner.args[1], inner.args[0])
    return None


def _rule_absorb(term: Term) -> Optional[Term]:
    """a and (a or b) -> a;   a or (a and b) -> a."""
    if term.op == "and":
        members = {a._id for a in term.args}
        kept = [a for a in term.args
                if not (a.op == "or" and any(x._id in members for x in a.args))]
        if len(kept) != len(term.args):
            return b.conj(*kept)
    if term.op == "or":
        members = {a._id for a in term.args}
        kept = [a for a in term.args
                if not (a.op == "and" and any(x._id in members for x in a.args))]
        if len(kept) != len(term.args):
            return b.disj(*kept)
    return None


def _rule_implies_self(term: Term) -> Optional[Term]:
    """(H and C and ...) -> C   simplifies to true when C is a hypothesis."""
    if term.op != "implies":
        return None
    hyp, concl = term.args
    hyp_ids = {a._id for a in hyp.args} if hyp.op == "and" else {hyp._id}
    if concl._id in hyp_ids:
        return b.TRUE
    if concl.op == "and":
        kept = [c for c in concl.args if c._id not in hyp_ids]
        if len(kept) != len(concl.args):
            return b.implies(hyp, b.conj(*kept))
    return None


# ---------------------------------------------------------------------------
# Rule family: equality
# ---------------------------------------------------------------------------

def _rule_eq_literal_contradiction(term: Term) -> Optional[Term]:
    """Conjunction binding one variable to two distinct literals -> false."""
    if term.op != "and":
        return None
    bound: Dict[str, int] = {}
    for a in term.args:
        if a.op == "eq":
            x, y = a.args
            if x.op == "var" and y.op == "int":
                x, y = y, x
            if y.op == "var" and x.op == "int":
                prior = bound.get(y.value)
                if prior is not None and prior != x.value:
                    return b.FALSE
                bound[y.value] = x.value
    return None


# ---------------------------------------------------------------------------
# Rule family: arrays
# ---------------------------------------------------------------------------

def _rule_store_select_same(term: Term) -> Optional[Term]:
    """store(a, i, a[i]) -> a."""
    if term.op != "store":
        return None
    arr, idx, val = term.args
    if val.op == "select" and val.args[0] is arr and val.args[1] is idx:
        return arr
    return None


def rule_families(hook=None) -> Dict[str, list]:
    """All rules, grouped by family (for the ablation benchmarks).

    ``hook`` supplies type-derived term bounds to the bounds family.
    Every rule declares its ``ops`` -- the exact root operators it can
    fire on (each ``fn`` returns ``None`` for anything else) -- feeding
    the rewriter's head-op dispatch table."""
    return {
        "bounds": [Rule("interval-relation", "bounds",
                        _make_interval_rule(hook),
                        ops=frozenset({"lt", "le", "eq"})),
                   Rule("vacuous-forall", "bounds",
                        _make_vacuous_forall_rule(hook),
                        ops=frozenset({"forall"}))],
        "boolean": [
            Rule("not-relation", "boolean", _rule_not_relation,
                 ops=frozenset({"not"})),
            Rule("absorb", "boolean", _rule_absorb,
                 ops=frozenset({"and", "or"})),
            Rule("implies-self", "boolean", _rule_implies_self,
                 ops=frozenset({"implies"})),
        ],
        "equality": [
            Rule("eq-literal-contradiction", "equality",
                 _rule_eq_literal_contradiction, ops=frozenset({"and"})),
        ],
        "arrays": [Rule("store-select-same", "arrays",
                        _rule_store_select_same,
                        ops=frozenset({"store"}))],
    }


def default_rules(exclude_families=(), hook=None) -> list:
    """The default simplifier rule set, optionally with families disabled."""
    rules = []
    for family, members in rule_families(hook).items():
        if family in exclude_families:
            continue
        rules.extend(members)
    return rules
