"""Hash-consed logical terms.

Every verification artifact in this reproduction -- verification conditions,
symbolic states, extracted specification bodies, proof obligations -- is built
from the ``Term`` type defined here.  Terms are immutable and *hash-consed*:
structurally equal terms are the same Python object, so equality is ``is``,
hashing is O(1), and a term that would print as gigabytes of text is held as a
compact DAG.

This matters for fidelity to the paper: the SPARK tools materialized
verification conditions as trees and "ran out of resources" on unrolled code
(section 6.2.2).  By sharing structure we can *measure* the tree size the
paper's tools choked on (see :mod:`repro.logic.measure`) while still being
able to manipulate the term.

Operator vocabulary
-------------------

==============  =========================================================
kind            meaning
==============  =========================================================
``int``         integer literal (``value`` is the int)
``bool``        boolean literal (``value`` is True/False)
``var``         logical variable (``value`` is the name)
``and or not``  boolean connectives (``and``/``or`` are n-ary, flattened)
``implies iff`` binary boolean connectives
``ite``         if-then-else (args: cond, then, else)
``eq lt le``    relations (gt/ge are normalized away by the builders)
``add mul``     n-ary arithmetic
``sub div mod neg``  binary / unary arithmetic (Euclidean div/mod)
``xor band bor``     n-ary bitwise ops over naturals
``bnot``        bitwise complement; args: term, ``value`` = bit width
``shl shr``     shifts
``select``      array read (array, index)
``store``       array write (array, index, value)
``apply``       function application; ``value`` is the function name
``forall exists``  quantifiers; ``value`` is a tuple of bound names,
                single arg is the body
==============  =========================================================
"""

from __future__ import annotations

import itertools
import threading
from typing import Iterator, Optional, Tuple

__all__ = ["Term", "TermTable", "term_table", "mk", "BOOLEAN_OPS", "COMMUTATIVE_OPS"]

#: Ops whose result is boolean-sorted.
BOOLEAN_OPS = frozenset(
    ["bool", "and", "or", "not", "implies", "iff", "eq", "lt", "le", "forall", "exists"]
)

#: Ops that are associative-commutative; the builders sort their arguments
#: into a canonical order so hash-consing identifies more equal terms.
COMMUTATIVE_OPS = frozenset(["and", "or", "add", "mul", "xor", "band", "bor"])


class Term:
    """An immutable, hash-consed term node.

    Do not instantiate directly: use :func:`mk` or the smart constructors in
    :mod:`repro.logic.builders`, which route through the interning table.

    Pickling routes through the structural wire format of
    :mod:`repro.logic.wire` (which installs ``__reduce__`` on import), so
    an unpickled term is re-interned in the receiving process and identity
    semantics survive the process boundary.
    """

    __slots__ = ("op", "args", "value", "_id", "__weakref__")

    def __init__(self, op: str, args: Tuple["Term", ...], value, ident: int):
        self.op = op
        self.args = args
        self.value = value
        self._id = ident

    # Identity semantics: hash-consing guarantees structural equality is
    # object identity, so the default object __eq__/__hash__ are correct and
    # fast.  We pin them explicitly for documentation value.
    def __hash__(self) -> int:
        return self._id

    def __eq__(self, other) -> bool:
        return self is other

    def __repr__(self) -> str:
        from .printer import render

        text = render(self, max_chars=120)
        return f"Term({text})"

    # -- structural helpers -------------------------------------------------

    @property
    def is_literal(self) -> bool:
        """True for integer and boolean literals."""
        return self.op in ("int", "bool")

    @property
    def is_true(self) -> bool:
        return self.op == "bool" and self.value is True

    @property
    def is_false(self) -> bool:
        return self.op == "bool" and self.value is False

    def iter_dag(self) -> Iterator["Term"]:
        """Yield each distinct subterm exactly once (post-order)."""
        seen = set()
        stack = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if node._id in seen:
                continue
            if expanded:
                seen.add(node._id)
                yield node
            else:
                stack.append((node, True))
                for child in node.args:
                    if child._id not in seen:
                        stack.append((child, False))

    def free_vars(self) -> frozenset:
        """Names of free variables, computed DAG-wise."""
        return _free_vars(self)


class TermTable:
    """Interning table: maps (op, arg ids, value) to the unique Term.

    Thread safety: the scheduler in :mod:`repro.exec` constructs terms
    from pool workers, so interning must be safe under concurrent
    construction.  ``make`` uses double-checked locking -- the unlocked
    fast-path read is safe in CPython (dict reads never observe a
    partially inserted entry under the GIL), and the lock makes the
    check-then-insert atomic so two racing threads interning the same key
    always receive the *same* object.  Identity semantics
    (``__eq__ is is``) would silently break if a duplicate ever escaped.
    """

    def __init__(self):
        self._table = {}
        self._counter = itertools.count(1)
        self._lock = threading.Lock()
        self._free_vars_cache = {}

    def make(self, op: str, args: Tuple[Term, ...] = (), value=None) -> Term:
        key = (op, tuple(t._id for t in args), value)
        hit = self._table.get(key)
        if hit is not None:
            return hit
        with self._lock:
            hit = self._table.get(key)
            if hit is not None:
                return hit
            term = Term(op, args, value, next(self._counter))
            self._table[key] = term
            return term

    def __len__(self) -> int:
        return len(self._table)


#: The process-wide interning table.  Terms from different analyses share it;
#: that is safe because terms are immutable and context-free.
term_table = TermTable()


def mk(op: str, args: Tuple[Term, ...] = (), value=None) -> Term:
    """Intern and return the term ``op(args)`` with payload ``value``.

    This is the *raw* constructor: no simplification or canonical argument
    ordering happens here.  Prefer the smart constructors in
    :mod:`repro.logic.builders` unless you need an exact shape.
    """
    return term_table.make(op, tuple(args), value)


def _free_vars(term: Term) -> frozenset:
    from .traversal import postorder_missing  # late: keep terms dependency-free

    cache = term_table._free_vars_cache
    result = cache.get(term._id)
    if result is not None:
        return result
    # Iterative post-order (children strictly before parents) so huge DAGs do
    # not blow the recursion limit; the walk prunes at already-computed
    # subterms.  Concurrent calls race benignly: each thread computes the
    # same frozenset for the same node; setdefault publishes the first
    # writer's object so all threads share one value.
    for node in postorder_missing(term, cache):
        if node.op == "var":
            acc = frozenset([node.value])
        else:
            acc = frozenset()
            for child in node.args:
                acc |= cache[child._id]
            if node.op in ("forall", "exists"):
                acc -= frozenset(node.value)
        cache.setdefault(node._id, acc)
    return cache[term._id]
