"""Rendering of terms to text.

``render`` is budgeted and DAG-safe: it walks the term iteratively and stops
emitting once ``max_chars`` is reached, so even a VC whose full tree form is
gigabytes can be displayed.  ``render_full`` renders without a budget and is
meant for small terms (specs, simplified VCs, test output).

Both follow the package-wide iterative traversal discipline (DESIGN.md
section 10): rendering depth is bounded by the explicit work stack, never by
the interpreter stack, so error paths can print arbitrarily deep VCs even
from small-stack scheduler worker threads.
"""

from __future__ import annotations

from .terms import Term

__all__ = ["render", "render_full"]

_INFIX = {
    "and": " and ", "or": " or ", "implies": " -> ", "iff": " <-> ",
    "eq": " = ", "lt": " < ", "le": " <= ",
    "add": " + ", "mul": " * ", "div": " div ", "mod": " mod ",
    "xor": " xor ", "band": " & ", "bor": " | ",
    "shl": " << ", "shr": " >> ",
}


def render(term: Term, max_chars: int = 10000) -> str:
    """Render ``term``, truncating with an ellipsis at ``max_chars``."""
    out = []
    count = 0
    truncated = False

    def emit(text: str) -> bool:
        nonlocal count, truncated
        if truncated:
            return False
        remaining = max_chars - count
        if remaining <= 0:
            out.append("…")
            truncated = True
            return False
        if len(text) > remaining:
            out.append(text[:remaining])
            out.append("…")
            truncated = True
            return False
        out.append(text)
        count += len(text)
        return True

    # Work stack of either Term nodes or literal strings to emit.
    stack = [term]
    while stack and not truncated:
        item = stack.pop()
        if isinstance(item, str):
            emit(item)
            continue
        node = item
        op = node.op
        if op == "int":
            emit(str(node.value))
        elif op == "bool":
            emit("true" if node.value else "false")
        elif op == "var":
            emit(node.value)
        elif op == "not":
            emit("not ")
            stack.append(")")
            stack.append(node.args[0])
            emit("(")
        elif op == "bnot":
            emit(f"bnot{node.value}")
            stack.append(")")
            stack.append(node.args[0])
            emit("(")
        elif op == "ite":
            emit("(if ")
            parts = [node.args[0], " then ", node.args[1], " else ",
                     node.args[2], ")"]
            stack.extend(parts[::-1])
        elif op == "select":
            parts = [node.args[0], "[", node.args[1], "]"]
            stack.extend(parts[::-1])
        elif op == "store":
            emit("store(")
            parts = [node.args[0], ", ", node.args[1], ", ", node.args[2], ")"]
            stack.extend(parts[::-1])
        elif op == "apply":
            emit(f"{node.value}(")
            parts = []
            for i, a in enumerate(node.args):
                if i:
                    parts.append(", ")
                parts.append(a)
            parts.append(")")
            stack.extend(parts[::-1])
        elif op in ("forall", "exists"):
            emit(f"({op} {', '.join(node.value)}: ")
            stack.extend([")", node.args[0]])
        elif op in _INFIX:
            sep = _INFIX[op]
            parts = ["("]
            for i, a in enumerate(node.args):
                if i:
                    parts.append(sep)
                parts.append(a)
            parts.append(")")
            stack.extend(parts[::-1])
        else:  # pragma: no cover - defensive for future ops
            emit(f"{op}(")
            parts = []
            for i, a in enumerate(node.args):
                if i:
                    parts.append(", ")
                parts.append(a)
            parts.append(")")
            stack.extend(parts[::-1])
    return "".join(out)


def render_full(term: Term) -> str:
    """Render with a very large budget (intended for small terms)."""
    return render(term, max_chars=10_000_000)
