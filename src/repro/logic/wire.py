"""Pickle-safe wire format for hash-consed terms.

Terms carry identity semantics (``__eq__ is is``, see
:mod:`repro.logic.terms`): structural equality *is* object identity
because every term routes through the process-global interning table.
That invariant is exactly what naive pickling would destroy -- the
default reducer would materialize a fresh, non-interned ``Term`` in the
receiving process, and every identity-based algorithm downstream
(hash-consed equality, DAG memo tables keyed by ``_id``, the rewriter's
caches) would silently misbehave.

This module makes terms safe to ship between processes:

``encode_term``     flatten the DAG into a *structural encoding* -- a
                    postorder tuple of ``(op, child-indices, value)``
                    nodes, each distinct subterm appearing exactly once.
                    Pure picklable primitives (strings, ints, tuples),
                    no ``Term`` objects.  Linear in DAG size, so a term
                    whose tree form is gigabytes still ships compactly.

``decode_term``     rebuild bottom-up through :func:`repro.logic.terms.mk`,
                    i.e. through the receiving process's interning table.
                    Children are interned before parents, so every node
                    lands on *the* unique term for its structure: decoding
                    in the sending process returns the original object
                    (``decode(encode(t)) is t``), and decoding in another
                    process restores full hash-consing identity there.

Importing this module also registers the reducer on ``Term`` itself, so
``pickle.dumps(term)`` -- and therefore shipping obligation payloads that
contain terms to :mod:`repro.exec` process-pool workers -- transparently
round-trips through the structural encoding.

Stability: the encoding preserves the exact argument order of every node
(unlike :func:`repro.logic.canon.fingerprint`, which sorts commutative
arguments at hash time), so the decoded term is structurally identical to
the source term and all canonical digests agree across the process
boundary: ``fingerprint(decode(encode(t))) == fingerprint(t)``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .terms import Term, mk

__all__ = ["WIRE_MAGIC", "WireFormatError",
           "encode_term", "decode_term", "encode_terms", "decode_terms"]

#: Leading tag of every wire value; bump the version on layout changes so
#: a stale on-disk or cross-version payload fails loudly instead of
#: decoding garbage.
WIRE_MAGIC = "repro-term-wire/1"


class WireFormatError(ValueError):
    """The wire value is not a valid term encoding."""


def _flatten(roots: Sequence[Term]) -> Tuple[tuple, Tuple[int, ...]]:
    """Postorder node list over the union DAG of ``roots`` plus the index
    of each root within it.  Shared subterms (within one term or across
    roots) are emitted once."""
    index = {}
    nodes: List[tuple] = []
    for root in roots:
        if root._id in index:
            continue
        for node in root.iter_dag():
            if node._id in index:
                continue
            children = tuple(index[a._id] for a in node.args)
            index[node._id] = len(nodes)
            nodes.append((node.op, children, node.value))
    return tuple(nodes), tuple(index[r._id] for r in roots)


def encode_terms(roots: Sequence[Term]) -> tuple:
    """Encode several terms into one wire value with shared structure."""
    for root in roots:
        if not isinstance(root, Term):
            raise TypeError(f"expected Term, got {type(root).__name__}")
    nodes, root_indices = _flatten(list(roots))
    return (WIRE_MAGIC, nodes, root_indices)


def encode_term(term: Term) -> tuple:
    """Encode one term; see the module docstring for the format."""
    return encode_terms((term,))


def decode_terms(wire) -> List[Term]:
    """Decode a wire value back into interned terms (one per root)."""
    try:
        magic, nodes, root_indices = wire
    except (TypeError, ValueError):
        raise WireFormatError(f"not a term wire value: {wire!r}")
    if magic != WIRE_MAGIC:
        raise WireFormatError(f"unknown wire format tag {magic!r}")
    terms: List[Term] = []
    for node in nodes:
        try:
            op, children, value = node
        except (TypeError, ValueError):
            raise WireFormatError(f"malformed wire node: {node!r}")
        if not isinstance(op, str):
            raise WireFormatError(f"wire node op must be str, got {op!r}")
        try:
            args = tuple(terms[i] for i in children)
        except (IndexError, TypeError):
            # Postorder guarantees children precede parents; anything else
            # is a corrupt or hand-forged payload.
            raise WireFormatError(
                f"wire node references undecoded child: {node!r}")
        if isinstance(value, list):   # JSON transports tuples as lists
            value = tuple(value)
        terms.append(mk(op, args, value))
    try:
        return [terms[i] for i in root_indices]
    except (IndexError, TypeError):
        raise WireFormatError(f"bad wire root indices: {root_indices!r}")


def decode_term(wire) -> Term:
    roots = decode_terms(wire)
    if len(roots) != 1:
        raise WireFormatError(
            f"expected a single-root wire value, got {len(roots)} roots")
    return roots[0]


def _term_reduce(self: Term):
    return (decode_term, (encode_term(self),))


# Make ``pickle`` route Term through the structural encoding.  Without
# this, protocol-2+ pickling of a __slots__ instance would rebuild a raw,
# non-interned Term and break identity semantics in the receiving
# process; with it, unpickling re-interns (pickle imports this module to
# resolve ``decode_term``, so registration also holds in any process that
# only ever *receives* terms).
Term.__reduce__ = _term_reduce
