"""A budgeted, memoizing rewrite engine over hash-consed terms.

This is the computational core of our SPARK-Simplifier substitute: the
simplifier in :mod:`repro.vcgen.simplifier` is this engine loaded with the
rule families from :mod:`repro.logic.rules`.

Rewriting is bottom-up with a per-node fixpoint, memoized across the DAG (a
shared subterm is normalized once no matter how many tree occurrences it
has).  All work is counted; an optional budget turns resource exhaustion into
a :class:`RewriteBudgetExceeded` exception, which the examiner maps to the
paper's "the VCs were too complicated to be handled by the SPARK tools".

The traversal is **iterative** (see :mod:`repro.logic.traversal`): the
engine runs under the obligation scheduler's worker threads, whose C
stacks cannot absorb term-deep native recursion.  Normalization depth is
therefore bounded by heap, not by the interpreter stack, and no
recursion-limit escape hatch exists anywhere in the package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .substitute import rebuild_smart
from .terms import Term

__all__ = ["Rule", "Rewriter", "RewriteStats", "RewriteBudgetExceeded"]

_MAX_FIXPOINT_ITERS = 64

#: Explicit-stack DFS frame states for :meth:`Rewriter.normalize`.
#: ``_EXPAND`` visits a node for the first time (charge it, queue its
#: children); ``_REBUILD`` runs once the children are memoized (rebuild
#: through the smart constructors, then fixpoint); ``_RESUME`` continues a
#: fixpoint that was suspended to normalize a rule's replacement term.
_EXPAND, _REBUILD, _RESUME = 0, 1, 2

#: Work units charged when a per-node fixpoint exhausts its iteration
#: budget (the node is memoized possibly-not-normal; see
#: :attr:`RewriteStats.fixpoint_exhausted`).  Deliberately expensive: an
#: exhausted fixpoint did ``_MAX_FIXPOINT_ITERS`` rule applications'
#: worth of spinning without converging.
_FIXPOINT_EXHAUSTED_COST = 4 * _MAX_FIXPOINT_ITERS


class RewriteBudgetExceeded(Exception):
    """Raised when rewriting exceeds its work budget."""


@dataclass
class Rule:
    """A named rewrite rule.

    ``fn`` returns a replacement term, or ``None`` when the rule does not
    apply.  ``family`` groups rules for the ablation benchmarks (bounds /
    boolean / equality / arrays).
    """

    name: str
    family: str
    fn: Callable[[Term], Optional[Term]]

    def __call__(self, term: Term) -> Optional[Term]:
        return self.fn(term)


@dataclass
class RewriteStats:
    nodes_visited: int = 0
    rules_applied: int = 0
    applications_by_rule: Dict[str, int] = field(default_factory=dict)
    #: Per-node fixpoints that hit ``_MAX_FIXPOINT_ITERS`` without
    #: converging.  The node is memoized as-is even though it may still be
    #: reducible; a nonzero count means normal forms are best-effort and
    #: the examiner surfaces it rather than silently absorbing it.
    fixpoint_exhausted: int = 0

    @property
    def work(self) -> int:
        """Deterministic work units (the paper's 'analysis time' proxy)."""
        return (self.nodes_visited + 4 * self.rules_applied
                + _FIXPOINT_EXHAUSTED_COST * self.fixpoint_exhausted)


class Rewriter:
    """Bottom-up fixpoint rewriter with DAG memoization and a work budget."""

    def __init__(self, rules: Sequence[Rule], max_work: Optional[int] = None):
        self.rules: List[Rule] = list(rules)
        self.max_work = max_work
        self.stats = RewriteStats()
        self._memo: Dict[int, Term] = {}

    def _charge(self, nodes: int = 0, applications: int = 0,
                rule: str = None, exhausted: int = 0):
        self.stats.nodes_visited += nodes
        self.stats.rules_applied += applications
        self.stats.fixpoint_exhausted += exhausted
        if rule is not None:
            by_rule = self.stats.applications_by_rule
            by_rule[rule] = by_rule.get(rule, 0) + applications
        if self.max_work is not None and self.stats.work > self.max_work:
            raise RewriteBudgetExceeded(
                f"rewrite work {self.stats.work} exceeded budget {self.max_work}"
            )

    def normalize(self, term: Term) -> Term:
        """Return the normal form of ``term`` under this rewriter's rules.

        The traversal is an explicit-stack DFS over the DAG -- the exact
        recursion structure of the classic algorithm (preorder charging,
        left-to-right children, postorder rebuild, per-node fixpoint with
        suspension when a replacement needs normalizing first), so memo
        contents, term-creation order, and stats are bit-identical to the
        recursive formulation while depth is bounded by heap only.
        """
        memo = self._memo
        hit = memo.get(term._id)
        if hit is not None:
            return hit
        stack = [(_EXPAND, term, None)]
        while stack:
            state, node, pending = stack.pop()
            if state == _EXPAND:
                if node._id in memo:
                    continue
                self._charge(nodes=1)
                if node.args:
                    stack.append((_REBUILD, node, None))
                    for a in reversed(node.args):
                        if a._id not in memo:
                            stack.append((_EXPAND, a, None))
                    continue
                suspended = self._fixpoint(node, node, _MAX_FIXPOINT_ITERS)
            elif state == _REBUILD:
                # Always rebuild through the smart constructors: terms
                # built with the raw constructor (e.g. by shape-preserving
                # substitution in the WP calculus) fold only here.
                current = rebuild_smart(
                    node.op, tuple(memo[a._id] for a in node.args),
                    node.value)
                if current is not node and current._id in memo:
                    memo[node._id] = memo[current._id]
                    continue
                suspended = self._fixpoint(node, current,
                                           _MAX_FIXPOINT_ITERS)
            else:  # _RESUME: the suspended replacement is normalized now.
                replacement, iters = pending
                suspended = self._fixpoint(node, memo[replacement._id],
                                           iters)
            if suspended is not None:
                stack.append((_RESUME, node, suspended))
                stack.append((_EXPAND, suspended[0], None))
        return memo[term._id]

    def _fixpoint(self, node: Term, current: Term, iters: int):
        """Drive ``node``'s rewrite fixpoint starting from ``current``.

        Returns ``None`` once ``node`` is memoized, or ``(replacement,
        iters_left)`` to suspend so the caller can normalize a freshly
        built replacement -- its spine may expose further redexes even
        though its leaves are already normal -- before resuming.
        """
        memo = self._memo
        while iters:
            iters -= 1
            replacement = self._apply_one(current)
            if replacement is None:
                break
            if replacement._id in memo:
                current = memo[replacement._id]
            elif replacement.args and any(
                a._id not in memo or memo[a._id] is not a
                for a in replacement.args
            ):
                return replacement, iters
            else:
                current = replacement
        else:
            # The fixpoint did not converge: memoizing ``current`` below
            # caches a possibly-reducible term as "normal".  Count it and
            # charge the budget so the overrun shows up in the examiner
            # report (or trips RewriteBudgetExceeded) instead of hiding.
            self._charge(exhausted=1)
        memo[node._id] = current
        memo[current._id] = current
        return None

    def _apply_one(self, term: Term) -> Optional[Term]:
        for rule in self.rules:
            result = rule(term)
            if result is not None and result is not term:
                self._charge(applications=1, rule=rule.name)
                return result
        return None
