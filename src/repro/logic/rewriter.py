"""A budgeted, memoizing rewrite engine over hash-consed terms.

This is the computational core of our SPARK-Simplifier substitute: the
simplifier in :mod:`repro.vcgen.simplifier` is this engine loaded with the
rule families from :mod:`repro.logic.rules`.

Rewriting is bottom-up with a per-node fixpoint, memoized across the DAG (a
shared subterm is normalized once no matter how many tree occurrences it
has).  All work is counted; an optional budget turns resource exhaustion into
a :class:`RewriteBudgetExceeded` exception, which the examiner maps to the
paper's "the VCs were too complicated to be handled by the SPARK tools".
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .substitute import rebuild_smart
from .terms import Term

__all__ = ["Rule", "Rewriter", "RewriteStats", "RewriteBudgetExceeded"]

# Deep WP terms are legitimate here; raise the recursion ceiling once.
if sys.getrecursionlimit() < 100_000:
    sys.setrecursionlimit(100_000)

_MAX_FIXPOINT_ITERS = 64


class RewriteBudgetExceeded(Exception):
    """Raised when rewriting exceeds its work budget."""


@dataclass
class Rule:
    """A named rewrite rule.

    ``fn`` returns a replacement term, or ``None`` when the rule does not
    apply.  ``family`` groups rules for the ablation benchmarks (bounds /
    boolean / equality / arrays).
    """

    name: str
    family: str
    fn: Callable[[Term], Optional[Term]]

    def __call__(self, term: Term) -> Optional[Term]:
        return self.fn(term)


@dataclass
class RewriteStats:
    nodes_visited: int = 0
    rules_applied: int = 0
    applications_by_rule: Dict[str, int] = field(default_factory=dict)

    @property
    def work(self) -> int:
        """Deterministic work units (the paper's 'analysis time' proxy)."""
        return self.nodes_visited + 4 * self.rules_applied


class Rewriter:
    """Bottom-up fixpoint rewriter with DAG memoization and a work budget."""

    def __init__(self, rules: Sequence[Rule], max_work: Optional[int] = None):
        self.rules: List[Rule] = list(rules)
        self.max_work = max_work
        self.stats = RewriteStats()
        self._memo: Dict[int, Term] = {}

    def _charge(self, nodes: int = 0, applications: int = 0, rule: str = None):
        self.stats.nodes_visited += nodes
        self.stats.rules_applied += applications
        if rule is not None:
            by_rule = self.stats.applications_by_rule
            by_rule[rule] = by_rule.get(rule, 0) + applications
        if self.max_work is not None and self.stats.work > self.max_work:
            raise RewriteBudgetExceeded(
                f"rewrite work {self.stats.work} exceeded budget {self.max_work}"
            )

    def normalize(self, term: Term) -> Term:
        """Return the normal form of ``term`` under this rewriter's rules."""
        memo = self._memo
        hit = memo.get(term._id)
        if hit is not None:
            return hit
        self._charge(nodes=1)
        if term.args:
            new_args = tuple(self.normalize(a) for a in term.args)
            # Always rebuild through the smart constructors: terms built with
            # the raw constructor (e.g. by shape-preserving substitution in
            # the WP calculus) fold only here.
            current = rebuild_smart(term.op, new_args, term.value)
            if current is not term and current._id in memo:
                memo[term._id] = memo[current._id]
                return memo[term._id]
        else:
            current = term
        for _ in range(_MAX_FIXPOINT_ITERS):
            replacement = self._apply_one(current)
            if replacement is None:
                break
            # Normalize the replacement: its freshly built spine may expose
            # further redexes even though its leaves are already normal.
            if replacement._id in memo:
                current = memo[replacement._id]
            elif replacement.args and any(
                a._id not in memo or memo[a._id] is not a for a in replacement.args
            ):
                current = self.normalize(replacement)
            else:
                current = replacement
        memo[term._id] = current
        memo[current._id] = current
        return current

    def _apply_one(self, term: Term) -> Optional[Term]:
        for rule in self.rules:
            result = rule(term)
            if result is not None and result is not term:
                self._charge(applications=1, rule=rule.name)
                return result
        return None
