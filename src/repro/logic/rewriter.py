"""A budgeted, memoizing rewrite engine over hash-consed terms.

This is the computational core of our SPARK-Simplifier substitute: the
simplifier in :mod:`repro.vcgen.simplifier` is this engine loaded with the
rule families from :mod:`repro.logic.rules`.

Rewriting is bottom-up with a per-node fixpoint, memoized across the DAG (a
shared subterm is normalized once no matter how many tree occurrences it
has).  All work is counted; an optional budget turns resource exhaustion into
a :class:`RewriteBudgetExceeded` exception, which the examiner maps to the
paper's "the VCs were too complicated to be handled by the SPARK tools".

The traversal is **iterative** (see :mod:`repro.logic.traversal`): the
engine runs under the obligation scheduler's worker threads, whose C
stacks cannot absorb term-deep native recursion.  Normalization depth is
therefore bounded by heap, not by the interpreter stack, and no
recursion-limit escape hatch exists anywhere in the package.

Two hot-path optimizations sit on top (DESIGN.md §13), both off-switchable
back to the retained linear-scan reference:

* **Head-op rule indexing** -- every :class:`Rule` may declare the
  frozenset of root operators it can fire on; the rewriter builds an
  ``op -> (candidate rules)`` dispatch table at construction (rules
  without a declaration land in an always-checked wildcard bucket), so a
  fixpoint iteration scans only the rules that could possibly apply.
  Rule order is preserved within each bucket, so the chosen rule -- and
  therefore every normal form, memo entry, and work count -- is identical
  to the linear scan's.  ``index=False`` (or ``REPRO_REWRITE_INDEX=0``)
  selects the original scan-all-rules path.

* **Cross-obligation sharing** -- an optional ``shared`` scope (see
  :mod:`repro.logic.normcache`) consulted by canonical fingerprint before
  a subterm is expanded and published once its fixpoint converges, so
  formula structure shared between VCs normalizes once per session
  instead of once per VC.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from .substitute import rebuild_smart
from .terms import Term

__all__ = ["Rule", "Rewriter", "RewriteStats", "RewriteBudgetExceeded"]

_MAX_FIXPOINT_ITERS = 64

#: Explicit-stack DFS frame states for :meth:`Rewriter.normalize`.
#: ``_EXPAND`` visits a node for the first time (charge it, queue its
#: children); ``_REBUILD`` runs once the children are memoized (rebuild
#: through the smart constructors, then fixpoint); ``_RESUME`` continues a
#: fixpoint that was suspended to normalize a rule's replacement term.
_EXPAND, _REBUILD, _RESUME = 0, 1, 2

#: Work units charged when a per-node fixpoint exhausts its iteration
#: budget (the node is memoized possibly-not-normal; see
#: :attr:`RewriteStats.fixpoint_exhausted`).  Deliberately expensive: an
#: exhausted fixpoint did ``_MAX_FIXPOINT_ITERS`` rule applications'
#: worth of spinning without converging.
_FIXPOINT_EXHAUSTED_COST = 4 * _MAX_FIXPOINT_ITERS


class RewriteBudgetExceeded(Exception):
    """Raised when rewriting exceeds its work budget."""


@dataclass
class Rule:
    """A named rewrite rule.

    ``fn`` returns a replacement term, or ``None`` when the rule does not
    apply.  ``family`` groups rules for the ablation benchmarks (bounds /
    boolean / equality / arrays).  ``ops``, when given, is the exact set
    of root operators the rule can fire on -- ``fn`` must return ``None``
    for every term whose op is outside it -- and feeds the rewriter's
    head-op dispatch table; ``None`` means "may fire on anything"
    (wildcard bucket, checked at every node).
    """

    name: str
    family: str
    fn: Callable[[Term], Optional[Term]]
    ops: Optional[FrozenSet[str]] = None

    def __call__(self, term: Term) -> Optional[Term]:
        return self.fn(term)


@dataclass
class RewriteStats:
    nodes_visited: int = 0
    rules_applied: int = 0
    applications_by_rule: Dict[str, int] = field(default_factory=dict)
    #: Per-node fixpoints that hit ``_MAX_FIXPOINT_ITERS`` without
    #: converging.  The node is memoized as-is even though it may still be
    #: reducible; a nonzero count means normal forms are best-effort and
    #: the examiner surfaces it rather than silently absorbing it.
    fixpoint_exhausted: int = 0
    #: Dispatch-table consultations that pruned the candidate rule list
    #: (instrumentation only: excluded from ``work`` and from equality so
    #: indexed and linear-scan runs compare bit-identical).
    index_hits: int = field(default=0, compare=False)
    #: Rules the dispatch table never scanned because the node's root
    #: operator ruled them out.
    index_skipped_rules: int = field(default=0, compare=False)
    #: Subterms whose normal form came from the cross-obligation shared
    #: cache instead of being recomputed.
    cross_vc_hits: int = field(default=0, compare=False)

    @property
    def work(self) -> int:
        """Deterministic work units (the paper's 'analysis time' proxy)."""
        return (self.nodes_visited + 4 * self.rules_applied
                + _FIXPOINT_EXHAUSTED_COST * self.fixpoint_exhausted)


def _index_default() -> bool:
    """Head-op indexing defaults on; ``REPRO_REWRITE_INDEX=0`` restores
    the linear scan (read at construction time so process-pool workers
    inherit the differential harness's choice through the environment)."""
    return os.environ.get("REPRO_REWRITE_INDEX", "1") != "0"


class Rewriter:
    """Bottom-up fixpoint rewriter with DAG memoization and a work budget."""

    def __init__(self, rules: Sequence[Rule], max_work: Optional[int] = None,
                 *, index: Optional[bool] = None, shared=None):
        """``index`` selects head-op dispatch (None: the
        ``REPRO_REWRITE_INDEX`` environment default).  ``shared`` is an
        optional cross-obligation scope (:meth:`repro.logic.normcache
        .NormalizationCache.scope`) consulted by canonical fingerprint;
        it must be keyed to this exact rule set."""
        self.rules: List[Rule] = list(rules)
        self.max_work = max_work
        self.stats = RewriteStats()
        self._memo: Dict[int, Term] = {}
        self.indexed = _index_default() if index is None else bool(index)
        self._shared = shared
        # The dispatch table: op -> tuple of candidate rules, in rule-list
        # order (wildcard rules appear in every bucket).  Built eagerly
        # for every declared op; ops first seen during rewriting fall back
        # to the wildcard bucket via _bucket().
        self._wildcard: Tuple[Rule, ...] = tuple(
            r for r in self.rules if r.ops is None)
        self._dispatch: Dict[str, Tuple[Rule, ...]] = {}
        if self.indexed:
            declared = set()
            for rule in self.rules:
                if rule.ops is not None:
                    declared.update(rule.ops)
            for op in declared:
                self._dispatch[op] = tuple(
                    r for r in self.rules
                    if r.ops is None or op in r.ops)

    def _bucket(self, op: str) -> Tuple[Rule, ...]:
        """Candidate rules for a root operator never seen at construction:
        no rule declared it, so only wildcard rules can fire."""
        bucket = self._wildcard
        self._dispatch[op] = bucket
        return bucket

    def _charge(self, nodes: int = 0, applications: int = 0,
                rule: str = None, exhausted: int = 0):
        self.stats.nodes_visited += nodes
        self.stats.rules_applied += applications
        self.stats.fixpoint_exhausted += exhausted
        if rule is not None:
            by_rule = self.stats.applications_by_rule
            by_rule[rule] = by_rule.get(rule, 0) + applications
        if self.max_work is not None and self.stats.work > self.max_work:
            raise RewriteBudgetExceeded(
                f"rewrite work {self.stats.work} exceeded budget {self.max_work}"
            )

    def normalize(self, term: Term) -> Term:
        """Return the normal form of ``term`` under this rewriter's rules.

        Dispatches to the indexed fast path or to the retained
        linear-scan reference; both produce identical normal forms, memo
        contents, and work counts (the differential gate in
        ``tests/test_logic_rewriting.py`` pins this over the full AES VC
        corpus).
        """
        if self.indexed:
            return self._normalize_indexed(term)
        return self._normalize_linear(term)

    # -- linear-scan reference path ------------------------------------------

    def _normalize_linear(self, term: Term) -> Term:
        """The original engine: every fixpoint iteration scans the full
        rule list.  Kept verbatim as the differential reference for the
        indexed path (and selectable via ``REPRO_REWRITE_INDEX=0``).

        The traversal is an explicit-stack DFS over the DAG -- the exact
        recursion structure of the classic algorithm (preorder charging,
        left-to-right children, postorder rebuild, per-node fixpoint with
        suspension when a replacement needs normalizing first), so memo
        contents, term-creation order, and stats are bit-identical to the
        recursive formulation while depth is bounded by heap only.
        """
        memo = self._memo
        hit = memo.get(term._id)
        if hit is not None:
            return hit
        stack = [(_EXPAND, term, None)]
        while stack:
            state, node, pending = stack.pop()
            if state == _EXPAND:
                if node._id in memo:
                    continue
                self._charge(nodes=1)
                if node.args:
                    stack.append((_REBUILD, node, None))
                    for a in reversed(node.args):
                        if a._id not in memo:
                            stack.append((_EXPAND, a, None))
                    continue
                suspended = self._fixpoint(node, node, _MAX_FIXPOINT_ITERS)
            elif state == _REBUILD:
                # Always rebuild through the smart constructors: terms
                # built with the raw constructor (e.g. by shape-preserving
                # substitution in the WP calculus) fold only here.
                current = rebuild_smart(
                    node.op, tuple(memo[a._id] for a in node.args),
                    node.value)
                if current is not node and current._id in memo:
                    memo[node._id] = memo[current._id]
                    continue
                suspended = self._fixpoint(node, current,
                                           _MAX_FIXPOINT_ITERS)
            else:  # _RESUME: the suspended replacement is normalized now.
                replacement, iters = pending
                suspended = self._fixpoint(node, memo[replacement._id],
                                           iters)
            if suspended is not None:
                stack.append((_RESUME, node, suspended))
                stack.append((_EXPAND, suspended[0], None))
        return memo[term._id]

    def _fixpoint(self, node: Term, current: Term, iters: int):
        """Drive ``node``'s rewrite fixpoint starting from ``current``.

        Returns ``None`` once ``node`` is memoized, or ``(replacement,
        iters_left)`` to suspend so the caller can normalize a freshly
        built replacement -- its spine may expose further redexes even
        though its leaves are already normal -- before resuming.
        """
        memo = self._memo
        while iters:
            iters -= 1
            replacement = self._apply_one(current)
            if replacement is None:
                break
            if replacement._id in memo:
                current = memo[replacement._id]
            elif replacement.args and any(
                a._id not in memo or memo[a._id] is not a
                for a in replacement.args
            ):
                return replacement, iters
            else:
                current = replacement
        else:
            # The fixpoint did not converge: memoizing ``current`` below
            # caches a possibly-reducible term as "normal".  Count it and
            # charge the budget so the overrun shows up in the examiner
            # report (or trips RewriteBudgetExceeded) instead of hiding.
            self._charge(exhausted=1)
        memo[node._id] = current
        memo[current._id] = current
        return None

    def _apply_one(self, term: Term) -> Optional[Term]:
        for rule in self.rules:
            result = rule(term)
            if result is not None and result is not term:
                self._charge(applications=1, rule=rule.name)
                return result
        return None

    # -- indexed fast path ---------------------------------------------------

    def _normalize_indexed(self, term: Term) -> Term:
        """Same DFS, same charges, same memo writes as
        :meth:`_normalize_linear`, but each fixpoint consults only the
        dispatch bucket for the node's root operator -- and a node whose
        bucket is empty skips the fixpoint machinery entirely (no rule
        could fire; the memo writes below are exactly the ones an empty
        fixpoint run performs).  When a ``shared`` scope is attached,
        compound subterms are looked up by canonical fingerprint before
        expansion and published once converged.
        """
        memo = self._memo
        hit = memo.get(term._id)
        if hit is not None:
            return hit
        dispatch = self._dispatch
        stats = self.stats
        nrules = len(self.rules)
        shared = self._shared
        if shared is not None:
            from .canon import fingerprint
        stack = [(_EXPAND, term, None)]
        while stack:
            state, node, pending = stack.pop()
            if state == _EXPAND:
                if node._id in memo:
                    continue
                if shared is not None and node.args:
                    cached = shared.get(fingerprint(node))
                    if cached is not None:
                        stats.cross_vc_hits += 1
                        memo[node._id] = cached
                        memo[cached._id] = cached
                        continue
                self._charge(nodes=1)
                if node.args:
                    stack.append((_REBUILD, node, None))
                    for a in reversed(node.args):
                        if a._id not in memo:
                            stack.append((_EXPAND, a, None))
                    continue
                bucket = dispatch.get(node.op)
                if bucket is None:
                    bucket = self._bucket(node.op)
                if not bucket:
                    stats.index_hits += 1
                    stats.index_skipped_rules += nrules
                    memo[node._id] = node
                    continue
                suspended = self._fixpoint_indexed(
                    node, node, _MAX_FIXPOINT_ITERS)
            elif state == _REBUILD:
                current = rebuild_smart(
                    node.op, tuple(memo[a._id] for a in node.args),
                    node.value)
                if current is not node and current._id in memo:
                    result = memo[current._id]
                    memo[node._id] = result
                    if shared is not None:
                        shared.put(fingerprint(node), result)
                    continue
                bucket = dispatch.get(current.op)
                if bucket is None:
                    bucket = self._bucket(current.op)
                if not bucket:
                    stats.index_hits += 1
                    stats.index_skipped_rules += nrules
                    memo[node._id] = current
                    memo[current._id] = current
                    if shared is not None:
                        shared.put(fingerprint(node), current)
                    continue
                suspended = self._fixpoint_indexed(node, current,
                                                   _MAX_FIXPOINT_ITERS)
            else:  # _RESUME
                replacement, iters = pending
                suspended = self._fixpoint_indexed(
                    node, memo[replacement._id], iters)
            if suspended is not None:
                stack.append((_RESUME, node, suspended))
                stack.append((_EXPAND, suspended[0], None))
            elif shared is not None and node.args:
                shared.put(fingerprint(node), memo[node._id])
        return memo[term._id]

    def _fixpoint_indexed(self, node: Term, current: Term, iters: int):
        """:meth:`_fixpoint` with the rule scan replaced by a dispatch
        lookup.  The bucket preserves rule-list order, so the first rule
        that fires is the same rule the linear scan would have chosen."""
        memo = self._memo
        dispatch = self._dispatch
        stats = self.stats
        nrules = len(self.rules)
        while iters:
            iters -= 1
            bucket = dispatch.get(current.op)
            if bucket is None:
                bucket = self._bucket(current.op)
            nbucket = len(bucket)
            if nbucket != nrules:
                stats.index_hits += 1
                stats.index_skipped_rules += nrules - nbucket
            replacement = None
            for rule in bucket:
                result = rule.fn(current)
                if result is not None and result is not current:
                    self._charge(applications=1, rule=rule.name)
                    replacement = result
                    break
            if replacement is None:
                break
            if replacement._id in memo:
                current = memo[replacement._id]
            elif replacement.args and any(
                a._id not in memo or memo[a._id] is not a
                for a in replacement.args
            ):
                return replacement, iters
            else:
                current = replacement
        else:
            self._charge(exhausted=1)
        memo[node._id] = current
        memo[current._id] = current
        return None
