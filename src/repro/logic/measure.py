"""Size measurement for terms.

The paper reports verification-condition sizes in megabytes of generated FDL
text (figure 2(d): 51.16 MB at block 1) and notes that the SPARK tools
"ran out of resources" when the tree got too large.  Because our terms are
hash-consed DAGs we can compute the *tree* statistics those tools would have
materialized -- node counts and printed bytes -- without materializing the
tree, by a memoized bottom-up pass over the DAG.  Counts are exact Python
bigints, so a VC whose tree form would be petabytes is still measurable.
"""

from __future__ import annotations

from typing import Dict

from .terms import Term
from .traversal import postorder_missing

__all__ = ["dag_size", "tree_size", "tree_bytes", "max_depth"]

# Fixed per-node printing overhead estimate: operator token, parentheses,
# separators.  Calibrated against the actual renderer on small terms.
_NODE_OVERHEAD = 4


def dag_size(term: Term) -> int:
    """Number of distinct subterms (shared nodes counted once)."""
    return sum(1 for _ in term.iter_dag())


def tree_size(term: Term, cache: Dict[int, int] = None) -> int:
    """Number of nodes the term would have as a tree (shared nodes expanded).

    This is the quantity that exploded for the paper's tools on unrolled
    code: each 32-bit temporary feeds four uses in the next AES round, so the
    tree grows by roughly 4x per round while the DAG grows linearly.
    """
    if cache is None:
        cache = {}
    for node in postorder_missing(term, cache):
        cache[node._id] = 1 + sum(cache[c._id] for c in node.args)
    return cache[term._id]


def _leaf_bytes(node: Term) -> int:
    if node.op == "int":
        return max(1, len(str(node.value)))
    if node.op == "bool":
        return 4 if node.value else 5
    if node.op == "var":
        return len(node.value)
    return len(node.op)


def tree_bytes(term: Term, cache: Dict[int, int] = None) -> int:
    """Estimated printed size, in bytes, of the fully expanded tree form.

    This stands in for the "size of generated VCs" megabyte figures the
    paper reads off the SPARK Examiner's FDL output files.
    """
    if cache is None:
        cache = {}
    for node in postorder_missing(term, cache):
        size = _leaf_bytes(node) + _NODE_OVERHEAD
        if node.op in ("forall", "exists"):
            size += sum(len(n) + 2 for n in node.value)
        size += sum(cache[c._id] for c in node.args)
        cache[node._id] = size
    return cache[term._id]


def max_depth(term: Term, cache: Dict[int, int] = None) -> int:
    """Longest root-to-leaf path length (1 for a leaf)."""
    if cache is None:
        cache = {}
    for node in postorder_missing(term, cache):
        cache[node._id] = 1 + max((cache[c._id] for c in node.args), default=0)
    return cache[term._id]
