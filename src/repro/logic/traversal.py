"""Stack-safe traversal primitives for the term engine.

Every module that walks :class:`~repro.logic.terms.Term` structure must do
so with **bounded Python recursion**: the obligation scheduler
(:mod:`repro.exec`) discharges VCs from pool worker threads whose C stacks
are small and fixed, and a deep VC walked with native recursion kills the
whole interpreter (a segfault, not a Python exception), bypassing the
budget machinery that is supposed to map resource exhaustion to an honest
"undischarged".  No module under ``src/`` may raise the interpreter
recursion limit -- CI enforces this -- so recursive-looking traversals
are expressed with the two primitives here instead.

``run_trampoline``
    Drives a *generator-recursive* function: a generator that, wherever
    the recursive version would call itself, ``yield``\\ s the sub-call's
    generator and receives the sub-result as the value of the ``yield``
    expression.  The pending frames live on an explicit heap-allocated
    list, so the Python/C stack depth stays O(1) in the term depth while
    the code remains a line-for-line mirror of the recursive original.

``postorder_missing``
    Memoized bottom-up iteration: yields each distinct subterm that is
    not yet in ``cache``, children strictly before parents, pruning the
    walk at cached roots.  The caller must record every yielded node in
    ``cache`` before advancing the iterator; that contract is what makes
    the pruning sound and makes repeated walks over a growing DAG (the
    examiner's resource meter, digest caches) near-linear in the number
    of *new* nodes rather than in the full DAG size.
"""

from __future__ import annotations

import logging
from typing import Any, Generator, Iterator

__all__ = ["run_trampoline", "postorder_missing", "close_failure_count"]

_log = logging.getLogger(__name__)

#: Cumulative count of traversal frames whose ``close()`` raised while an
#: exception unwound through :func:`run_trampoline`.  The primary
#: exception still propagates; this counter keeps the secondary failure
#: observable instead of silently swallowed (tests and postmortems can
#: assert it stayed zero).
_close_failures = 0


def close_failure_count() -> int:
    """How many generator frames failed to close during unwinding."""
    return _close_failures


def run_trampoline(gen: Generator) -> Any:
    """Run a generator-recursive computation to completion.

    ``gen`` yields sub-generators (the sub-calls) and receives their
    results; its ``return`` value is the result of the whole computation.
    Exceptions raised inside any frame propagate to the caller unchanged.
    """
    stack = [gen]
    value = None
    try:
        while stack:
            try:
                child = stack[-1].send(value)
            except StopIteration as stop:
                stack.pop()
                value = stop.value
            else:
                stack.append(child)
                value = None
        return value
    finally:
        # On an exception unwinding through us, release pending frames.
        while stack:
            frame = stack.pop()
            try:
                frame.close()
            except Exception as exc:   # noqa: BLE001 - cleanup boundary:
                # the primary exception must win, but a frame that fails
                # to close is a defect worth recording, not hiding.
                global _close_failures
                _close_failures += 1
                _log.debug("traversal frame %r failed to close: %r",
                           frame, exc)


def postorder_missing(term, cache) -> Iterator:
    """Yield subterms of ``term`` absent from ``cache``, children first.

    The walk is pruned at nodes already in ``cache`` (their children were
    necessarily processed when they were cached).  The **caller must add
    each yielded node to ``cache`` before requesting the next one**; a
    shared subterm reachable along two unexplored paths is yielded only
    once because the second encounter sees it cached.
    """
    stack = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        if node._id in cache:
            continue
        if expanded:
            yield node
            continue
        stack.append((node, True))
        for child in node.args:
            if child._id not in cache:
                stack.append((child, False))
