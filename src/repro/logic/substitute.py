"""Capture-avoiding substitution over hash-consed terms.

Two flavours are provided:

* :func:`substitute` -- rebuilds with the *raw* constructor, preserving the
  exact shape of the input apart from the replaced variables.  This is what
  the weakest-precondition calculus uses, so generated VCs have the honest,
  unsimplified size the paper measures.
* :func:`substitute_simplifying` -- rebuilds through the smart constructors
  (constant folding, select-over-store, ...).  This is what symbolic
  execution uses, where we *want* states to stay in a folded normal form.

Both walk the term with the generator trampoline from
:mod:`repro.logic.traversal`, so substitution into arbitrarily deep terms
is safe on the small fixed C stacks of scheduler worker threads.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Mapping

from . import builders
from .terms import Term, mk
from .traversal import run_trampoline

__all__ = ["substitute", "substitute_simplifying", "rebuild_smart", "rename_bound"]

_fresh_counter = itertools.count(1)


def rebuild_smart(op: str, args, value) -> Term:
    """Rebuild one node through the smart constructors."""
    b = builders
    if op == "and":
        return b.conj(*args)
    if op == "or":
        return b.disj(*args)
    if op == "not":
        return b.neg(args[0])
    if op == "implies":
        return b.implies(args[0], args[1])
    if op == "iff":
        return b.iff(args[0], args[1])
    if op == "ite":
        return b.ite(args[0], args[1], args[2])
    if op == "eq":
        return b.eq(args[0], args[1])
    if op == "lt":
        return b.lt(args[0], args[1])
    if op == "le":
        return b.le(args[0], args[1])
    if op == "add":
        return b.add(*args)
    if op == "mul":
        return b.mul(*args)
    if op == "div":
        return b.divi(args[0], args[1])
    if op == "mod":
        return b.modi(args[0], args[1])
    if op == "xor":
        return b.xor(*args)
    if op == "band":
        return b.band(*args)
    if op == "bor":
        return b.bor(*args)
    if op == "bnot":
        return b.bnot(args[0], value)
    if op == "shl":
        return b.shl(args[0], args[1])
    if op == "shr":
        return b.shr(args[0], args[1])
    if op == "select":
        return b.select(args[0], args[1])
    if op == "store":
        return b.store(args[0], args[1], args[2])
    if op == "apply":
        return b.apply(value, *args)
    if op == "forall":
        return b.forall(value, args[0])
    if op == "exists":
        return b.exists(value, args[0])
    return mk(op, tuple(args), value)


def _rebuild_raw(op: str, args, value) -> Term:
    return mk(op, tuple(args), value)


def _subst(term: Term, mapping: Mapping[str, Term],
           rebuild: Callable, cache: Dict[int, Term]) -> Term:
    hit = cache.get(term._id)
    if hit is not None:
        return hit
    return run_trampoline(_subst_gen(term, mapping, rebuild, cache))


def _subst_gen(term: Term, mapping: Mapping[str, Term],
               rebuild: Callable, cache: Dict[int, Term]):
    """Generator-recursive substitution driven by ``run_trampoline``.

    The substitution cache is per (mapping, binder context): descending
    under a quantifier changes the mapping, so the body walk gets a fresh
    cache, exactly as the context argument would change in the recursive
    formulation.
    """
    hit = cache.get(term._id)
    if hit is not None:
        return hit
    if term.op == "var":
        result = mapping.get(term.value, term)
    elif not term.args and term.op not in ("forall", "exists"):
        result = term
    elif term.op in ("forall", "exists"):
        bound = set(term.value)
        inner = {k: v for k, v in mapping.items() if k not in bound}
        if not inner:
            result = term
        else:
            # Capture check: if a replacement mentions a bound name, rename
            # the bound variable first.
            replaced_frees = set()
            for v in inner.values():
                replaced_frees |= v.free_vars()
            if replaced_frees & bound:
                term = rename_bound(term, replaced_frees | set(inner))
                bound = set(term.value)
                inner = {k: v for k, v in mapping.items() if k not in bound}
            body = yield _subst_gen(term.args[0], inner, rebuild, {})
            result = rebuild(term.op, (body,), term.value)
    else:
        new_args = []
        for a in term.args:
            h = cache.get(a._id)
            if h is None:
                h = yield _subst_gen(a, mapping, rebuild, cache)
            new_args.append(h)
        new_args = tuple(new_args)
        if all(n is o for n, o in zip(new_args, term.args)):
            result = term
        else:
            result = rebuild(term.op, new_args, term.value)
    cache[term._id] = result
    return result


def rename_bound(quant: Term, avoid) -> Term:
    """Alpha-rename the bound variables of a quantifier away from ``avoid``."""
    fresh_map = {}
    new_names = []
    for name in quant.value:
        if name in avoid:
            new = f"{name}~{next(_fresh_counter)}"
            while new in avoid:
                new = f"{name}~{next(_fresh_counter)}"
            fresh_map[name] = builders.var(new)
            new_names.append(new)
        else:
            new_names.append(name)
    body = _subst(quant.args[0], fresh_map, _rebuild_raw, {}) if fresh_map else quant.args[0]
    return mk(quant.op, (body,), tuple(new_names))


def substitute(term: Term, mapping: Mapping[str, Term]) -> Term:
    """Shape-preserving parallel substitution (raw rebuild)."""
    if not mapping:
        return term
    return _subst(term, mapping, _rebuild_raw, {})


def substitute_simplifying(term: Term, mapping: Mapping[str, Term]) -> Term:
    """Substitution that folds through the smart constructors."""
    if not mapping:
        return term
    return _subst(term, mapping, rebuild_smart, {})
