"""Resource model for the examiner.

The paper's SPARK tools materialized verification conditions as FDL text
and *ran out of resources* (memory) on the un-refactored AES -- figure 2(c)
shows no value at blocks 0 and 2-7 for exactly this reason.  Our terms are
DAGs, so we never die; instead a :class:`ResourceMeter` tracks the tree
size the real tools would have materialized and raises
:class:`ResourceExhausted` when it crosses the configured budget, which the
examiner reports as an infeasible analysis.

Analysis "time" is reported two ways:

* ``work_units`` -- deterministic: tree bytes generated plus simplifier
  rewrite work (stable across machines; what the benchmarks assert on);
* measured wall seconds (informational).

``simulated_seconds`` converts work units with a fixed rate calibrated so
the fully refactored AES lands in the order of the paper's 1m42s; only the
*shape* across blocks is meaningful, as DESIGN.md discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..logic.measure import tree_bytes

__all__ = ["ResourceExhausted", "ResourceMeter", "ExaminerLimits",
           "simulated_seconds", "WORK_UNITS_PER_SECOND"]

#: Conversion between deterministic work units and simulated seconds.
#: Calibrated once against the final refactored AES (see EXPERIMENTS.md).
WORK_UNITS_PER_SECOND = 20_000

#: Default tree-byte budget, standing in for the SPARK tools' memory on the
#: paper's 2.0 GHz machine.  Chosen so the un-refactored AES exceeds it while
#: the loop-rerolled version (block 1) squeaks through slowly -- the shape of
#: figure 2(c).
DEFAULT_MAX_TREE_BYTES = 600 * 1024 * 1024


class ResourceExhausted(Exception):
    """The analysis exceeded its (tree-materialization) resource budget."""


@dataclass
class ExaminerLimits:
    max_tree_bytes: int = DEFAULT_MAX_TREE_BYTES
    #: Separate, larger cap guarding our own CPU during generation.
    max_wp_statements: int = 200_000


class ResourceMeter:
    """Tracks the materialized-tree cost of obligations during WP."""

    def __init__(self, limits: Optional[ExaminerLimits] = None):
        self.limits = limits or ExaminerLimits()
        self._tree_cache: Dict[int, int] = {}
        self.peak_tree_bytes = 0
        self.statements = 0

    def measure(self, obligations) -> int:
        total = 0
        for o in obligations:
            total += tree_bytes(o.term, self._tree_cache)
        return total

    def charge(self, obligations):
        self.statements += 1
        total = self.measure(obligations)
        if total > self.peak_tree_bytes:
            self.peak_tree_bytes = total
        if (self.limits.max_tree_bytes is not None
                and total > self.limits.max_tree_bytes):
            raise ResourceExhausted(
                f"obligation tree size {total} bytes exceeds budget "
                f"{self.limits.max_tree_bytes}")
        if self.statements > self.limits.max_wp_statements:
            raise ResourceExhausted("statement budget exceeded")


def simulated_seconds(work_units: int) -> float:
    return work_units / WORK_UNITS_PER_SECOND
