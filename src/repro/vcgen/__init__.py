"""VC generation and simplification (SPARK Examiner/Simplifier substitute).

``Examiner`` drives weakest-precondition VC generation (:mod:`.wp`) with
exception-freedom checks (:mod:`.translate`), under a resource budget
(:mod:`.resources`) that reproduces the paper's "ran out of resources"
behaviour on unrolled code, then simplifies each VC (:mod:`.simplifier`).
"""

from .examiner import Examiner, ExaminerReport, SubprogramAnalysis, VCRecord
from .resources import (
    ExaminerLimits, ResourceExhausted, ResourceMeter, WORK_UNITS_PER_SECOND,
    simulated_seconds,
)
from .simplifier import SimplifiedVC, Simplifier, TypeBoundHook
from .translate import Check, TranslationContext, translate_expr, type_bounds
from .wp import Obligation, WPError, generate_obligations

__all__ = [
    "Examiner", "ExaminerReport", "SubprogramAnalysis", "VCRecord",
    "ExaminerLimits", "ResourceExhausted", "ResourceMeter",
    "WORK_UNITS_PER_SECOND", "simulated_seconds",
    "Simplifier", "SimplifiedVC", "TypeBoundHook",
    "Check", "TranslationContext", "translate_expr", "type_bounds",
    "Obligation", "WPError", "generate_obligations",
]
