"""The SPARK-Simplifier substitute.

Takes generated VCs and applies, per VC:

1. a context-free rewrite pass (rule families from
   :mod:`repro.logic.rules`, with a *type-bound hook* supplying declared
   ranges for program variables, array elements and function results);
2. a contextual pass over the VC's implication structure: variable
   equalities from hypotheses are substituted, interval bounds are
   harvested into an environment, and the conclusion is re-decided;
3. hypothesis pruning: hypotheses sharing no variables (transitively) with
   the conclusion are dropped from the *reported* simplified VC, mirroring
   how the SPARK simplifier shrinks FDL output.

The result records whether the VC was fully discharged and the simplified
residue (whose size figure 2(e) measures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..lang.typecheck import TypedPackage
from ..lang.types import ArrayType, Type
from ..logic import (
    Rewriter, RewriteBudgetExceeded, Term, conj, default_rules, implies,
    decide_relation, substitute_simplifying,
)
from ..logic.rules import Interval
from .translate import type_bounds
from .wp import Obligation

__all__ = ["TypeBoundHook", "Simplifier", "SimplifiedVC",
           "simplifier_rules_key"]


def _base_var_name(name: str) -> str:
    """Strip fresh-variable (``x%3``), old-value (``x@old``) and bound-var
    (``i?``) decorations back to the declared program variable."""
    for sep in ("%", "@", ".", "?"):
        pos = name.find(sep)
        if pos >= 0:
            name = name[:pos]
    return name


class TypeBoundHook:
    """Type-derived interval bounds for terms in one subprogram's VCs."""

    def __init__(self, typed: TypedPackage, subprogram_name: str):
        self.typed = typed
        self._var_types: Dict[str, Type] = {}
        ctx = typed.context(subprogram_name)
        for name, t in ctx.vars.items():
            self._var_types[name] = t
        self._fn_returns: Dict[str, Type] = {}
        for fname, sig in typed.signatures.items():
            if sig.is_function:
                self._fn_returns[fname] = typed.type_named(sig.return_type)
        for pname, pf in typed.proof_functions.items():
            self._fn_returns[pname] = typed.type_named(pf.return_type)

    def _term_type(self, term: Term) -> Optional[Type]:
        if term.op == "var":
            return self._var_types.get(_base_var_name(term.value))
        if term.op == "apply":
            const = self.typed.constants.get(term.value)
            if const is not None and isinstance(const[0], ArrayType):
                return const[0].elem
            return self._fn_returns.get(term.value)
        if term.op == "select":
            base_t = self._term_type(_store_root(term.args[0]))
            if isinstance(base_t, ArrayType):
                return base_t.elem
            return None
        return None

    def __call__(self, term: Term) -> Optional[Interval]:
        t = self._term_type(term)
        if t is None:
            return None
        return type_bounds(t)


def _store_root(term: Term) -> Term:
    while term.op == "store":
        term = term.args[0]
    return term


@dataclass
class SimplifiedVC:
    obligation: Obligation
    simplified: Term
    discharged: bool
    work: int


def simplifier_rules_key(typed: TypedPackage, subprogram_name: str,
                         exclude_families: Tuple[str, ...] = (),
                         extra: str = "") -> str:
    """Cross-obligation cache scope for one subprogram's rule set.

    Everything that shapes a normal form is in the key: the package text
    (the type-bound hook reads declared ranges from it), the subprogram
    (each has its own hook context), the disabled rule families, and an
    ``extra`` tag for callers that load additional rules (the prover).
    """
    from ..exec.cache import package_fingerprint
    return "|".join([package_fingerprint(typed), subprogram_name,
                     ",".join(sorted(exclude_families)), extra])


class Simplifier:
    """Simplifies a batch of VCs for one subprogram."""

    def __init__(self, typed: TypedPackage, subprogram_name: str,
                 exclude_families: Tuple[str, ...] = (),
                 max_work: Optional[int] = None,
                 shared=None):
        """``shared`` is an optional :class:`~repro.logic.normcache
        .NormalizationCache`: normal forms of subterms shared between this
        subprogram's VCs are then reused across ``Simplifier`` instances
        (the prover builds one per VC) instead of recomputed."""
        self.hook = TypeBoundHook(typed, subprogram_name)
        rules = default_rules(exclude_families=exclude_families,
                              hook=self.hook)
        self.exclude_families = exclude_families
        scope = None
        if shared is not None:
            scope = shared.scope(simplifier_rules_key(
                typed, subprogram_name, exclude_families))
        self.rewriter = Rewriter(rules, max_work=max_work, shared=scope)

    @property
    def work(self) -> int:
        return self.rewriter.stats.work

    @property
    def fixpoint_exhausted(self) -> int:
        """Per-node rewrite fixpoints that gave up before converging (their
        results may not be normal forms; surfaced in the examiner report)."""
        return self.rewriter.stats.fixpoint_exhausted

    @property
    def index_hits(self) -> int:
        """Dispatch-table consultations that pruned the rule scan."""
        return self.rewriter.stats.index_hits

    @property
    def index_skipped_rules(self) -> int:
        """Rules never scanned thanks to head-op indexing."""
        return self.rewriter.stats.index_skipped_rules

    @property
    def cross_vc_hits(self) -> int:
        """Subterm normal forms served by the cross-obligation cache."""
        return self.rewriter.stats.cross_vc_hits

    def simplify(self, obligation: Obligation) -> SimplifiedVC:
        before = self.rewriter.stats.work
        try:
            term = self.rewriter.normalize(obligation.term)
            term = self._contextual(term, {})
        except RewriteBudgetExceeded:
            raise
        spent = self.rewriter.stats.work - before
        return SimplifiedVC(
            obligation=obligation,
            simplified=term,
            discharged=term.is_true,
            work=spent,
        )

    # -- contextual simplification -------------------------------------------

    def _contextual(self, term: Term, env: Dict[str, Interval]) -> Term:
        """Walk nested implications, harvesting hypothesis facts.

        Iterative: the descent peels one ``implies`` level at a time onto
        an explicit frame stack (guard chains nest one level per control
        path, so VC implication towers track program depth), then the
        unwind re-decides each conclusion against its harvested
        environment -- the same order of operations as the recursive
        formulation, with bounded interpreter stack."""
        frames = []  # (hyps, local_env) pending reconstruction, innermost last
        current, cur_env = term, env
        result = None
        while True:
            if current.op != "implies":
                result = self._decide(current, cur_env)
                break
            hyp, concl = current.args
            hyps = list(hyp.args) if hyp.op == "and" else [hyp]
            local_env = dict(cur_env)
            equalities: Dict[str, Term] = {}
            false_hyp = False
            for h in hyps:
                if h.is_false:
                    false_hyp = True
                    break
                self._harvest(h, local_env, equalities)
            if false_hyp:
                result = conj()  # false hypotheses: trivially true VC
                break
            if equalities:
                concl = substitute_simplifying(concl, equalities)
                concl = self.rewriter.normalize(concl)
            frames.append((hyps, local_env))
            current, cur_env = concl, local_env
        while frames:
            hyps, local_env = frames.pop()
            if result.is_true:
                continue
            # Re-decide with the harvested environment.
            decided = self._decide(result, local_env)
            if decided.is_true or decided.is_false:
                result = decided
                continue
            kept = self._prune(hyps, decided)
            result = implies(conj(*kept), decided)
        return result

    def _harvest(self, h: Term, env: Dict[str, Interval],
                 equalities: Dict[str, Term]):
        if h.op == "eq":
            a, b = h.args
            if a.op == "var" and b.op == "int":
                a, b = b, a
            if b.op == "var" and a.op == "int":
                env[b.value] = (a.value, a.value)
                equalities.setdefault(b.value, a)
            elif b.op == "var" and b.value not in a.free_vars():
                equalities.setdefault(b.value, a)
            elif a.op == "var" and a.value not in b.free_vars():
                equalities.setdefault(a.value, b)
        elif h.op == "le":
            a, b = h.args
            if a.op == "int" and b.op == "var":
                lo, hi = env.get(b.value, (None, None))
                lo = a.value if lo is None else max(lo, a.value)
                env[b.value] = (lo, hi)
            elif b.op == "int" and a.op == "var":
                lo, hi = env.get(a.value, (None, None))
                hi = b.value if hi is None else min(hi, b.value)
                env[a.value] = (lo, hi)
        elif h.op == "lt":
            a, b = h.args
            if a.op == "int" and b.op == "var":
                lo, hi = env.get(b.value, (None, None))
                lo = a.value + 1 if lo is None else max(lo, a.value + 1)
                env[b.value] = (lo, hi)
            elif b.op == "int" and a.op == "var":
                lo, hi = env.get(a.value, (None, None))
                hi = b.value - 1 if hi is None else min(hi, b.value - 1)
                env[a.value] = (lo, hi)
        elif h.op == "and":
            for sub_h in h.args:
                self._harvest(sub_h, env, equalities)

    def _decide(self, concl: Term, env: Dict[str, Interval]) -> Term:
        if "bounds" in self.exclude_families:
            return concl
        if concl.op == "and":
            parts = [self._decide(c, env) for c in concl.args]
            return conj(*parts)
        if concl.op == "not":
            from ..logic import neg
            return neg(self._decide(concl.args[0], env))
        decided = decide_relation(concl, env=env, hook=self.hook)
        if decided is not None:
            from ..logic import boolc
            return boolc(decided)
        return concl

    def _prune(self, hyps: List[Term], concl: Term) -> List[Term]:
        """Keep hypotheses transitively sharing variables with the conclusion."""
        relevant = set(concl.free_vars())
        kept = []
        remaining = list(hyps)
        changed = True
        while changed:
            changed = False
            still = []
            for h in remaining:
                fv = h.free_vars()
                if fv & relevant or not fv:
                    kept.append(h)
                    relevant |= fv
                    changed = True
                else:
                    still.append(h)
            remaining = still
        return kept
