"""Weakest-precondition verification-condition generation for MiniAda.

The calculus is the SPADE/SPARK one: backward substitution through
statements, with *cut points* at loop heads and at ``--# assert``
statements.  Cut points are what make verification of rolled loops
tractable -- and their absence is what makes unrolled code explode, which
is the phenomenon at the heart of the paper (figure 2(c)/(d)).

Obligations are threaded as a list of ``(kind, term)`` pairs so the
examiner can report VC counts and kinds per subprogram; kinds are the ones
the defect experiment (section 7) distinguishes: exception-freedom checks
(``index``/``div``/``range``), ``precondition``, ``assert``/``invariant``
cuts, and ``post``.

Design restrictions (documented, enforced):

* loop bounds may not depend on variables the loop body modifies (Ada
  evaluates bounds once at entry; MiniAda code must make that snapshot
  explicit);
* ``return`` is supported anywhere control ends (early returns in branch
  arms, as the optimized AES key expansion uses).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..lang import ast
from ..lang.typecheck import TypedPackage
from ..lang.types import ArrayType, ModularType, RangeType, Type
from ..logic import (
    Term, conj, eq, forall, implies, intc, le, lt, mk, neg, select, store,
    substitute, var,
)
from .resources import ResourceMeter
from .translate import Check, TranslationContext, translate_expr, type_bounds

__all__ = ["Obligation", "WPError", "generate_obligations"]


class WPError(Exception):
    """A program shape the WP calculus does not support."""


@dataclass(frozen=True)
class Obligation:
    kind: str
    term: Term


class _WP:
    def __init__(self, typed: TypedPackage, sp: ast.Subprogram,
                 meter: Optional[ResourceMeter] = None):
        self.typed = typed
        self.sp = sp
        self.ctx = typed.context(sp.name).runtime_view()
        self.meter = meter
        self._fresh = itertools.count(1)

    # -- helpers ---------------------------------------------------------

    def fresh(self, name: str) -> Term:
        return var(f"{name}%{next(self._fresh)}")

    def tc(self) -> TranslationContext:
        return TranslationContext(typed=self.typed, ctx=self.ctx)

    def translate(self, expr: ast.Expr) -> Tuple[Term, List[Check]]:
        tc = self.tc()
        term = translate_expr(tc, expr)
        return term, tc.checks

    def subst_all(self, obls: List[Obligation],
                  mapping: Dict[str, Term]) -> List[Obligation]:
        """Parallel substitution into every obligation.

        The obligations are bundled into a single throwaway term so one DAG
        walk serves the whole list -- substituting each obligation separately
        would re-walk shared structure per obligation and be quadratic on
        straight-line code."""
        if not mapping or not obls:
            return obls
        bundle = mk("oblist", tuple(o.term for o in obls))
        new_bundle = substitute(bundle, mapping)
        if new_bundle is bundle:
            return obls
        return [Obligation(o.kind, t)
                for o, t in zip(obls, new_bundle.args)]

    def guard_all(self, obls: List[Obligation], hyp: Term) -> List[Obligation]:
        if hyp.is_true:
            return obls
        return [Obligation(o.kind, implies(hyp, o.term)) for o in obls]

    def checks_to_obls(self, checks: Sequence[Check]) -> List[Obligation]:
        return [Obligation(c.kind, c.condition) for c in checks]

    # -- modified-variable analysis ------------------------------------------

    def modified_vars(self, stmts: Sequence[ast.Stmt]) -> set:
        """Worklist walk (no recursion): nesting depth of generated code is
        unbounded in principle, and only a set is accumulated."""
        out = set()
        work = list(stmts)
        while work:
            stmt = work.pop()
            if isinstance(stmt, ast.Assign):
                out.add(_root_name(stmt.target))
            elif isinstance(stmt, ast.If):
                for _, body in stmt.branches:
                    work.extend(body)
                work.extend(stmt.else_body)
            elif isinstance(stmt, (ast.For, ast.While)):
                if isinstance(stmt, ast.For):
                    out.add(stmt.var)
                work.extend(stmt.body)
            elif isinstance(stmt, ast.ProcCall):
                callee = self.typed.signatures[stmt.name]
                for arg, param in zip(stmt.args, callee.params):
                    if param.mode != "in":
                        out.add(_root_name(arg))
        return out

    # -- statement WP ----------------------------------------------------------

    def wp_stmts(self, stmts: Sequence[ast.Stmt],
                 obls: List[Obligation],
                 post_obls: List[Obligation]) -> List[Obligation]:
        """Backward pass.  ``obls`` is what must hold after the sequence;
        ``post_obls`` is the subprogram postcondition (target of returns)."""
        # Split off leading asserts only at loop heads; here process plain.
        result = obls
        for stmt in reversed(list(stmts)):
            result = self.wp_stmt(stmt, result, post_obls)
            if self.meter is not None:
                self.meter.charge(result)
        return result

    def wp_stmt(self, stmt: ast.Stmt, obls: List[Obligation],
                post_obls: List[Obligation]) -> List[Obligation]:
        if isinstance(stmt, ast.Assign):
            return self.wp_assign(stmt, obls)
        if isinstance(stmt, ast.Null):
            return obls
        if isinstance(stmt, ast.Return):
            if post_obls is None:
                raise WPError(
                    f"{self.sp.name}: 'return' inside a loop is not supported "
                    f"by the WP calculus (restructure the loop)")
            return self.wp_return(stmt, post_obls)
        if isinstance(stmt, ast.Assert):
            return self.wp_cut(stmt, obls)
        if isinstance(stmt, ast.If):
            return self.wp_if(stmt, obls, post_obls)
        if isinstance(stmt, ast.ProcCall):
            return self.wp_proccall(stmt, obls)
        if isinstance(stmt, ast.For):
            return self.wp_for(stmt, obls)
        if isinstance(stmt, ast.While):
            return self.wp_while(stmt, obls)
        raise WPError(f"unsupported statement {type(stmt).__name__}")

    def wp_assign(self, stmt: ast.Assign, obls: List[Obligation]):
        tc = self.tc()
        value = translate_expr(tc, stmt.value)
        target_type = self.ctx.infer(stmt.target)
        self._maybe_range_check(tc, value, target_type, stmt.value)
        if isinstance(stmt.target, ast.Name):
            mapping = {stmt.target.id: value}
        else:
            name, new_value = self._store_term(tc, stmt.target, value)
            mapping = {name: new_value}
        return self.checks_to_obls(tc.checks) + self.subst_all(obls, mapping)

    def _maybe_range_check(self, tc: TranslationContext, value: Term,
                           target_type: Type, value_expr: ast.Expr):
        bounds = type_bounds(target_type)
        if bounds is None or isinstance(target_type, ModularType):
            # Modular arithmetic wraps; no range check needed when the value
            # expression already has the target's modular type.
            if bounds is None:
                return
            value_type = self.ctx.infer(value_expr)
            if isinstance(value_type, ModularType):
                return
        else:
            value_type = self.ctx.infer(value_expr)
            vb = type_bounds(value_type)
            if vb is not None and bounds[0] <= vb[0] and vb[1] <= bounds[1]:
                return
        tc.check("range", conj(le(intc(bounds[0]), value),
                               le(value, intc(bounds[1]))))

    def _store_term(self, tc: TranslationContext, target: ast.ArrayRef,
                    value: Term) -> Tuple[str, Term]:
        """Build the store-chain for a (possibly nested) array target.
        Returns (root variable name, its new whole-array value)."""
        base_t = self.ctx.infer(target.base)
        index = translate_expr(tc, target.index)
        tc.check("index", conj(le(intc(base_t.lo), index),
                               le(index, intc(base_t.hi))))
        if base_t.lo == 0:
            offset = index
        else:
            from ..logic import sub as _sub
            offset = _sub(index, intc(base_t.lo))
        if isinstance(target.base, ast.Name):
            old = var(target.base.id)
            return target.base.id, store(old, offset, value)
        inner_old = translate_expr(tc, target.base)
        new_inner = store(inner_old, offset, value)
        return self._store_term(tc, target.base, new_inner)

    def wp_return(self, stmt: ast.Return, post_obls: List[Obligation]):
        if stmt.value is None:
            return list(post_obls)
        tc = self.tc()
        value = translate_expr(tc, stmt.value)
        rt = self.typed.type_named(self.sp.return_type)
        self._maybe_range_check(tc, value, rt, stmt.value)
        mapping = {"Result": value}
        return self.checks_to_obls(tc.checks) + \
            self.subst_all(post_obls, mapping)

    def wp_cut(self, stmt: ast.Assert, obls: List[Obligation]):
        """Straight-line cut point: prove the assertion here, then forget
        everything except the assertion for the continuation."""
        assertion, checks = self.translate(stmt.expr)
        all_vars = self._all_program_vars()
        mapping = {name: self.fresh(name) for name in all_vars}
        continuation = self.guard_all(
            self.subst_all(obls, mapping), substitute(assertion, mapping))
        return (self.checks_to_obls(checks)
                + [Obligation("assert", assertion)]
                + continuation)

    def _all_program_vars(self) -> List[str]:
        names = [p.name for p in self.sp.params]
        names += [d.name for d in self.sp.decls]
        names += list(self.ctx._loop_vars)
        return names

    def wp_if(self, stmt: ast.If, obls, post_obls):
        result: List[Obligation] = []
        not_taken = None  # conjunction of negated earlier conditions
        cond_checks: List[Obligation] = []
        for cond_expr, body in stmt.branches:
            cond, checks = self.translate(cond_expr)
            guard_context = not_taken if not_taken is not None else None
            checks_obls = self.checks_to_obls(checks)
            if guard_context is not None:
                checks_obls = self.guard_all(checks_obls, guard_context)
            cond_checks.extend(checks_obls)
            path = conj(not_taken, cond) if not_taken is not None else cond
            branch_obls = self.wp_stmts(body, obls, post_obls)
            result.extend(self.guard_all(branch_obls, path))
            not_taken = conj(not_taken, neg(cond)) if not_taken is not None \
                else neg(cond)
        else_obls = self.wp_stmts(stmt.else_body, obls, post_obls)
        result.extend(self.guard_all(else_obls, not_taken))
        return cond_checks + result

    def wp_proccall(self, stmt: ast.ProcCall, obls):
        callee = self.typed.signatures[stmt.name]
        callee_ctx = self.typed.context(callee.name)
        tc = self.tc()
        in_values: Dict[str, Term] = {}
        for arg, param in zip(stmt.args, callee.params):
            if param.mode != "out":
                in_values[param.name] = translate_expr(tc, arg)
        # Precondition VCs at the call site.
        pre_obls: List[Obligation] = []
        for pre in callee.pre:
            pre_tc = TranslationContext(
                typed=self.typed, ctx=callee_ctx, state=dict(in_values))
            pre_term = translate_expr(pre_tc, pre)
            pre_obls.extend(self.checks_to_obls(pre_tc.checks))
            pre_obls.append(Obligation("precondition", pre_term))
        # Havoc the out/in-out arguments, assume the callee postcondition.
        fresh_outs: Dict[str, Term] = {}
        caller_mapping: Dict[str, Term] = {}
        for arg, param in zip(stmt.args, callee.params):
            if param.mode == "in":
                continue
            root = _root_name(arg)
            fresh_value = self.fresh(f"{root}.{param.name}")
            fresh_outs[param.name] = fresh_value
            if isinstance(arg, ast.Name):
                caller_mapping[arg.id] = fresh_value
            else:
                _, new_root = self._store_term(tc, arg, fresh_value)
                caller_mapping[root] = new_root
        post_state = dict(in_values)
        post_state.update(fresh_outs)
        # In the callee post, X~ refers to the in-value of an in-out param.
        old_state = {f"{p.name}@old": in_values[p.name]
                     for p in callee.params if p.mode == "in out"}
        post_terms = []
        for post in callee.post:
            post_tc = TranslationContext(
                typed=self.typed, ctx=callee_ctx, state=post_state)
            term = translate_expr(post_tc, post)
            term = substitute(term, {k: v for k, v in old_state.items()})
            post_terms.append(term)
        # Out values respect their declared types.
        for param in callee.params:
            if param.mode == "in":
                continue
            fact = self._type_fact(fresh_outs[param.name],
                                   self.typed.type_named(param.type_name))
            if fact is not None:
                post_terms.append(fact)
        assumption = conj(*post_terms) if post_terms else None
        after = self.subst_all(obls, caller_mapping)
        if assumption is not None:
            after = self.guard_all(after, assumption)
        return self.checks_to_obls(tc.checks) + pre_obls + after

    # -- loops ----------------------------------------------------------------

    def _loop_invariant_split(self, body: Sequence[ast.Stmt]):
        invariants = []
        rest = list(body)
        while rest and isinstance(rest[0], ast.Assert):
            invariants.append(rest[0].expr)
            rest = rest[1:]
        return invariants, tuple(rest)

    def wp_for(self, stmt: ast.For, obls):
        tc = self.tc()
        lo0 = translate_expr(tc, stmt.lo)
        hi0 = translate_expr(tc, stmt.hi)
        bound_checks = self.checks_to_obls(tc.checks)
        modified = self.modified_vars(stmt.body)
        modified.add(stmt.var)
        bound_deps = lo0.free_vars() | hi0.free_vars()
        if bound_deps & modified:
            raise WPError(
                f"{self.sp.name}: loop bounds depend on variables the body "
                f"modifies ({sorted(bound_deps & modified)})")

        self.ctx.push_loop_var(stmt.var)
        try:
            invariant_exprs, body = self._loop_invariant_split(stmt.body)
            inv_terms = []
            inv_checks: List[Obligation] = []
            for e in invariant_exprs:
                term, checks = self.translate(e)
                inv_checks.extend(self.checks_to_obls(checks))
                inv_terms.append(term)
            i = var(stmt.var)
            counter_range = conj(le(lo0, i), le(i, hi0))
            # Invariant-expression checks hold in every head state: guard
            # with the counter range and include them in the freshened
            # arbitrary-iteration group below.
            inv_checks = self.guard_all(inv_checks, counter_range)
            j_user = conj(*inv_terms) if inv_terms else None
            j_full = conj(counter_range, j_user) if j_user is not None \
                else counter_range

            if not stmt.reverse:
                first, last, step = lo0, hi0, 1
            else:
                first, last, step = hi0, lo0, -1

            # Entry path: invariant holds for the first iteration.
            entry = implies(le(lo0, hi0),
                            substitute(j_full, {stmt.var: first}))
            entry_obl = [Obligation("invariant", entry)]

            # Iterate path: invariant is preserved (i not yet at the last
            # value).  Exit path: the last iteration establishes what follows.
            if step == 1:
                more = lt(i, last)
                next_i = _inc(i)
            else:
                more = lt(last, i)
                next_i = _dec(i)
            inv_next = substitute(j_full, {stmt.var: next_i})
            iter_obls = self.wp_stmts(
                body, [Obligation("invariant", inv_next)], post_obls=None)
            iter_obls = self.guard_all(iter_obls, conj(j_full, more))
            exit_obls = self.wp_stmts(body, obls, post_obls=None)
            exit_obls = self.guard_all(exit_obls, conj(j_full, eq(i, last)))

            # Freshen the arbitrary-iteration variables in all closed paths.
            mapping = {name: self.fresh(name) for name in sorted(modified)}
            iter_obls = self.subst_all(inv_checks + iter_obls, mapping)
            exit_obls = self.subst_all(exit_obls, mapping)

            # Empty path: the loop never runs.
            empty_obls = self.guard_all(obls, lt(hi0, lo0))

            return bound_checks + entry_obl + iter_obls + exit_obls + empty_obls
        finally:
            self.ctx.pop_loop_var()

    def wp_while(self, stmt: ast.While, obls):
        invariant_exprs, body = self._loop_invariant_split(stmt.body)
        tc = self.tc()
        cond = translate_expr(tc, stmt.cond)
        head_checks = self.checks_to_obls(tc.checks)
        inv_terms = []
        for e in invariant_exprs:
            term, checks = self.translate(e)
            head_checks.extend(self.checks_to_obls(checks))
            inv_terms.append(term)
        j_full = conj(*inv_terms) if inv_terms else conj()
        modified = self.modified_vars(stmt.body)

        entry_obl = [Obligation("invariant", j_full)] if inv_terms else []
        # Condition/invariant checks hold at every loop head, where only the
        # invariant is known; they are freshened with the head state.
        head_checks = self.guard_all(head_checks, j_full)
        iter_obls = self.wp_stmts(
            body, [Obligation("invariant", j_full)] if inv_terms else [],
            post_obls=None)
        iter_obls = self.guard_all(iter_obls, conj(j_full, cond))
        exit_obls = self.guard_all(obls, conj(j_full, neg(cond)))
        mapping = {name: self.fresh(name) for name in sorted(modified)}
        iter_obls = self.subst_all(head_checks + iter_obls, mapping)
        exit_obls = self.subst_all(exit_obls, mapping)
        return entry_obl + iter_obls + exit_obls

    # -- type facts -----------------------------------------------------------

    def _type_fact(self, term: Term, t: Type) -> Optional[Term]:
        bounds = type_bounds(t)
        if bounds is not None:
            return conj(le(intc(bounds[0]), term), le(term, intc(bounds[1])))
        if isinstance(t, ArrayType):
            elem_bounds = type_bounds(t.elem)
            if isinstance(t.elem, ArrayType):
                inner = self._type_fact(
                    select(term, var("k?")), t.elem)
                if inner is None:
                    return None
                return forall(
                    ["k?"],
                    implies(conj(le(intc(0), var("k?")),
                                 le(var("k?"), intc(t.hi - t.lo))), inner))
            if elem_bounds is None:
                return None
            k = var("k?")
            body = conj(le(intc(elem_bounds[0]), select(term, k)),
                        le(select(term, k), intc(elem_bounds[1])))
            return forall(
                ["k?"],
                implies(conj(le(intc(0), k), le(k, intc(t.hi - t.lo))), body))
        return None


def _root_name(expr: ast.Expr) -> str:
    while isinstance(expr, ast.ArrayRef):
        expr = expr.base
    if isinstance(expr, ast.Name):
        return expr.id
    raise WPError("cannot determine assignment root")


def _inc(term: Term) -> Term:
    from ..logic import add
    return add(term, intc(1))


def _dec(term: Term) -> Term:
    from ..logic import sub
    return sub(term, intc(1))


def generate_obligations(typed: TypedPackage, sp: ast.Subprogram,
                         meter: Optional[ResourceMeter] = None
                         ) -> List[Obligation]:
    """All proof obligations for ``sp``: exception freedom, cut points, and
    the postcondition, each as ``hypotheses -> conclusion`` over entry-state
    variables, guarded by the precondition and parameter type facts."""
    engine = _WP(typed, sp, meter)

    # Postcondition obligations (the backward seed).
    post_obls: List[Obligation] = []
    for post in sp.post:
        term, checks = engine.translate(post)
        post_obls.extend(engine.checks_to_obls(checks))
        post_obls.append(Obligation("post", term))
    if sp.is_function:
        rt = typed.type_named(sp.return_type)
        obls = engine.wp_stmts(sp.body, [], post_obls)
    else:
        obls = engine.wp_stmts(sp.body, post_obls, post_obls)

    # Local variable initializers run before the body.
    for decl in reversed(sp.decls):
        if decl.init is not None:
            assign = ast.Assign(target=ast.Name(id=decl.name), value=decl.init)
            obls = engine.wp_assign(assign, obls)

    # Entry: old-values equal entry values; preconditions and parameter type
    # facts become hypotheses.
    entry_mapping = {}
    for o in obls:
        for name in o.term.free_vars():
            if name.endswith("@old"):
                entry_mapping[name] = var(name[:-4])
    obls = engine.subst_all(obls, entry_mapping)

    hyps = []
    for pre in sp.pre:
        term, _ = engine.translate(pre)
        hyps.append(term)
    for p in sp.params:
        if p.mode == "out":
            continue
        fact = engine._type_fact(var(p.name), typed.type_named(p.type_name))
        if fact is not None:
            hyps.append(fact)
    context = conj(*hyps) if hyps else None
    if context is not None:
        obls = engine.guard_all(obls, context)

    # Deduplicate (identical obligations arise from shared paths).
    seen = set()
    unique: List[Obligation] = []
    for o in obls:
        if o.term.is_true:
            continue
        key = (o.kind, o.term._id)
        if key not in seen:
            seen.add(key)
            unique.append(o)
    return unique
