"""Translation of MiniAda expressions into logical terms, with run-time
check collection.

Every expression translates to a :class:`~repro.logic.terms.Term` over the
current symbolic state (program variables are logic variables).  Alongside
the value term, the translator collects *check obligations* -- the
exception-freedom conditions SPARK generates: array index in bounds,
division by zero, conversion/assignment range checks.  Short-circuit
operators guard the checks of their right operand, exactly as SPARK does.

Constant tables translate to interpreted applications ``TableName(index)``
rather than store-chains; the prover's ground evaluator resolves them from
the package's constant pool.  This matches SPARK treating constants as
function-like proof rules, and keeps VC size honest (a table *reference*
in the source is one application, not 256 stores).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..lang import ast
from ..lang.typecheck import SubprogramContext, TypedPackage
from ..lang.types import (
    ArrayType, BooleanType, ModularType, RangeType, Type,
)
from ..logic import (
    FALSE, TRUE, Term, add, apply, band, bnot, boolc, bor, conj, disj, divi,
    eq, forall, ge, gt, iff, implies, intc, le, lt, modi, mul, ne, neg,
    select, shl, shr, sub, var, xor,
)

__all__ = ["Check", "TranslationContext", "translate_expr", "type_bounds",
           "array_element_type"]


@dataclass(frozen=True)
class Check:
    """One run-time check obligation collected during translation."""

    kind: str  # 'index', 'div', 'range', 'overflow'
    condition: Term


@dataclass
class TranslationContext:
    """Carries everything expression translation needs."""

    typed: TypedPackage
    ctx: SubprogramContext
    #: Maps a program variable to the term denoting its current value.
    #: Defaults to ``var(name)`` when absent.
    state: Dict[str, Term] = field(default_factory=dict)
    checks: List[Check] = field(default_factory=list)
    #: Extra declared integer bounds for bound variables (loop counters).
    local_bounds: Dict[str, Tuple[Term, Term]] = field(default_factory=dict)

    def value_of(self, name: str) -> Term:
        return self.state.get(name, var(name))

    def check(self, kind: str, condition: Term):
        if not condition.is_true:
            self.checks.append(Check(kind=kind, condition=condition))

    def guarded(self) -> "TranslationContext":
        """A child context collecting checks separately (for short-circuit
        guards); the caller merges them back with a guard."""
        return TranslationContext(
            typed=self.typed, ctx=self.ctx, state=self.state,
            checks=[], local_bounds=self.local_bounds)

    def merge_guarded(self, child: "TranslationContext", guard: Term):
        for check in child.checks:
            self.check(check.kind, implies(guard, check.condition))


def type_bounds(t: Type) -> Optional[Tuple[int, int]]:
    """Static (lo, hi) bounds for scalar types, or None for Integer/Boolean."""
    if isinstance(t, ModularType):
        return (0, t.modulus - 1)
    if isinstance(t, RangeType):
        return (t.lo, t.hi)
    return None


def array_element_type(t: Type) -> Type:
    assert isinstance(t, ArrayType)
    return t.elem


def _typeof(tc: TranslationContext, expr: ast.Expr) -> Type:
    return tc.ctx.infer(expr)


def translate_expr(tc: TranslationContext, expr: ast.Expr) -> Term:
    """Translate ``expr`` to a term over ``tc.state``, collecting checks."""
    if isinstance(expr, ast.IntLit):
        return intc(expr.value)
    if isinstance(expr, ast.BoolLit):
        return boolc(expr.value)
    if isinstance(expr, ast.Name):
        if expr.id in tc.typed.constants:
            ctype, cval = tc.typed.constants[expr.id]
            if not isinstance(cval, tuple):
                return intc(cval) if not isinstance(cval, bool) else boolc(cval)
            # Whole-array constant reference: keep symbolic by name.
            return var(expr.id)
        return tc.value_of(expr.id)
    if isinstance(expr, ast.OldExpr):
        return var(f"{expr.name}@old")
    if isinstance(expr, ast.ArrayRef):
        return _translate_array_ref(tc, expr)
    if isinstance(expr, ast.Conversion):
        return _translate_conversion(tc, expr)
    if isinstance(expr, ast.FuncCall):
        return _translate_call(tc, expr)
    if isinstance(expr, ast.UnOp):
        operand = translate_expr(tc, expr.operand)
        t = _typeof(tc, expr)
        if expr.op == "not":
            if isinstance(t, ModularType):
                return bnot(operand, t.width)
            return neg(operand)
        if expr.op == "-":
            if isinstance(t, ModularType):
                return modi(sub(intc(0), operand), intc(t.modulus))
            return sub(intc(0), operand)
        raise AssertionError(f"unknown unary {expr.op}")
    if isinstance(expr, ast.BinOp):
        return _translate_binop(tc, expr)
    if isinstance(expr, ast.ForAll):
        return _translate_forall(tc, expr)
    raise AssertionError(f"cannot translate {type(expr).__name__}")


def _translate_array_ref(tc: TranslationContext, expr: ast.ArrayRef) -> Term:
    base_t = _typeof(tc, expr.base)
    index = translate_expr(tc, expr.index)
    tc.check("index", conj(le(intc(base_t.lo), index),
                           le(index, intc(base_t.hi))))
    offset = index if base_t.lo == 0 else sub(index, intc(base_t.lo))
    # Constant table read: interpreted application.
    if isinstance(expr.base, ast.Name) and expr.base.id in tc.typed.constants:
        return apply(expr.base.id, offset)
    base = translate_expr(tc, expr.base)
    return select(base, offset)


def _translate_conversion(tc: TranslationContext, expr: ast.Conversion) -> Term:
    value = translate_expr(tc, expr.operand)
    target = tc.typed.type_named(expr.type_name)
    bounds = type_bounds(target)
    if bounds is not None:
        source_bounds = type_bounds(_typeof(tc, expr.operand))
        if source_bounds is None or not (
                bounds[0] <= source_bounds[0] and source_bounds[1] <= bounds[1]):
            tc.check("range", conj(le(intc(bounds[0]), value),
                                   le(value, intc(bounds[1]))))
    return value


def _translate_call(tc: TranslationContext, expr: ast.FuncCall) -> Term:
    if expr.name in ("Shift_Left", "Shift_Right"):
        value = translate_expr(tc, expr.args[0])
        amount = translate_expr(tc, expr.args[1])
        t = _typeof(tc, expr)
        if expr.name == "Shift_Left":
            return modi(shl(value, amount), intc(t.modulus))
        return shr(value, amount)
    args = tuple(translate_expr(tc, a) for a in expr.args)
    sig = tc.typed.signatures.get(expr.name)
    if sig is not None and sig.pre:
        # Precondition check at the call site.
        mapping = {p.name: a for p, a in zip(sig.params, args)}
        callee_ctx = tc.typed.context(expr.name).runtime_view()
        for pre in sig.pre:
            pre_tc = TranslationContext(
                typed=tc.typed, ctx=callee_ctx, state=dict(mapping))
            tc.check("precondition", translate_expr(pre_tc, pre))
    return apply(expr.name, *args)


def _translate_binop(tc: TranslationContext, expr: ast.BinOp) -> Term:
    op = expr.op
    if op in ("and_then", "or_else"):
        left = translate_expr(tc, expr.left)
        child = tc.guarded()
        right = translate_expr(child, expr.right)
        guard = left if op == "and_then" else neg(left)
        tc.merge_guarded(child, guard)
        return conj(left, right) if op == "and_then" else disj(left, right)

    left = translate_expr(tc, expr.left)
    right = translate_expr(tc, expr.right)
    if op in ("=", "/="):
        result = eq(left, right)
        return result if op == "=" else neg(result)
    if op == "<":
        return lt(left, right)
    if op == "<=":
        return le(left, right)
    if op == ">":
        return gt(left, right)
    if op == ">=":
        return ge(left, right)

    t = _typeof(tc, expr)
    if op in ("and", "or", "xor"):
        if isinstance(t, BooleanType):
            if op == "and":
                return conj(left, right)
            if op == "or":
                return disj(left, right)
            return neg(iff(left, right))
        if op == "and":
            return band(left, right)
        if op == "or":
            return bor(left, right)
        return xor(left, right)

    modulus = t.modulus if isinstance(t, ModularType) else None
    if op == "+":
        raw = add(left, right)
        return modi(raw, intc(modulus)) if modulus else raw
    if op == "-":
        raw = sub(left, right)
        return modi(raw, intc(modulus)) if modulus else raw
    if op == "*":
        raw = mul(left, right)
        return modi(raw, intc(modulus)) if modulus else raw
    if op == "/":
        tc.check("div", ne(right, intc(0)))
        return divi(left, right)
    if op == "mod":
        tc.check("div", ne(right, intc(0)))
        return modi(left, right)
    raise AssertionError(f"unknown operator {op}")


def _translate_forall(tc: TranslationContext, expr: ast.ForAll) -> Term:
    lo = translate_expr(tc, expr.lo)
    hi = translate_expr(tc, expr.hi)
    bound_name = f"{expr.var}?"
    inner = TranslationContext(
        typed=tc.typed, ctx=tc.ctx,
        state={**tc.state, expr.var: var(bound_name)},
        checks=[], local_bounds=tc.local_bounds)
    tc.ctx.push_loop_var(expr.var)
    try:
        body = translate_expr(inner, expr.body)
    finally:
        tc.ctx.pop_loop_var()
    range_hyp = conj(le(lo, var(bound_name)), le(var(bound_name), hi))
    # Checks collected inside the quantified body hold only under the
    # quantifier's range; re-quantify them.
    for check in inner.checks:
        tc.check(check.kind,
                 forall([bound_name], implies(range_hyp, check.condition)))
    return forall([bound_name], implies(range_hyp, body))
