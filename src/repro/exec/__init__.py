"""Obligation-level proof execution: scheduling, caching, telemetry.

The three proof layers of the Echo pipeline -- VC discharge
(:mod:`repro.prover.session`), per-transformation equivalence trials
(:mod:`repro.refactor.engine`), and implication lemmas
(:mod:`repro.implication`) -- express their work as uniform
:class:`~repro.exec.obligation.Obligation` values and hand them to an
:class:`~repro.exec.scheduler.ObligationScheduler`, which runs them on a
thread pool (``jobs=N``) or inline (``jobs=1``, bit-identical to the
historical serial path), consults a content-addressed
:class:`~repro.exec.cache.ResultCache`, and records structured
:class:`~repro.exec.telemetry.Telemetry` events.
"""

from .cache import (
    ResultCache, default_cache, make_key, package_fingerprint,
    theory_fingerprint,
)
from .events import ObligationEvent
from .obligation import (
    EQUIV_TRIAL, LEMMA, VC, Obligation, equiv_trial_obligation,
    lemma_obligation, vc_obligation,
)
from .scheduler import ObligationOutcome, ObligationScheduler
from .telemetry import ExecStats, Telemetry, default_telemetry

__all__ = [
    "Obligation", "ObligationOutcome", "ObligationScheduler",
    "ObligationEvent", "ExecStats", "Telemetry", "default_telemetry",
    "ResultCache", "default_cache", "make_key",
    "package_fingerprint", "theory_fingerprint",
    "vc_obligation", "equiv_trial_obligation", "lemma_obligation",
    "VC", "EQUIV_TRIAL", "LEMMA",
]
