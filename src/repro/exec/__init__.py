"""Obligation-level proof execution: scheduling, caching, telemetry.

The three proof layers of the Echo pipeline -- VC discharge
(:mod:`repro.prover.session`), per-transformation equivalence trials
(:mod:`repro.refactor.engine`), and implication lemmas
(:mod:`repro.implication`) -- express their work as uniform
:class:`~repro.exec.obligation.Obligation` values and hand them to an
:class:`~repro.exec.scheduler.ObligationScheduler`, which runs them on
one of four backends -- inline (``backend='serial'`` or ``jobs=1``,
bit-identical to the historical serial path), a thread pool
(``backend='thread'``), a process pool (``backend='process'``, true
multi-core proving via the declarative payloads of
:mod:`repro.exec.payload`), or a distributed proof farm
(``backend='remote'``, socket-connected worker hosts with a shared
networked cache tier, :mod:`repro.exec.remote`) -- consults a
content-addressed
:class:`~repro.exec.cache.ResultCache`, and records structured
:class:`~repro.exec.telemetry.Telemetry` events.

Callers configure all of this through one value object,
:class:`~repro.exec.config.ExecConfig`, threaded as the ``exec=``
parameter of every proof entry point.
"""

from .atomicio import atomic_write_json, atomic_write_text
from .cache import (
    ResultCache, default_cache, make_key, package_fingerprint,
    theory_fingerprint,
)
from .config import ExecConfig, coerce_exec_config
from .events import TERMINAL_EVENTS, EventSubscription, ObligationEvent
from .retry import RetryPolicy
from .obligation import (
    EQUIV_TRIAL, LEMMA, VC, Obligation, equiv_trial_obligation,
    lemma_obligation, vc_obligation,
)
from .payload import (
    BatchPayload, CallPayload, EquivTrialPayload, LemmaPayload,
    ObligationPayload, VCPayload, make_batch,
)
from .remote import RemoteCoordinator
from .scheduler import (
    BACKENDS, BackendUnusableError, ObligationOutcome, ObligationScheduler,
)
from .telemetry import ExecStats, Telemetry, default_telemetry, percentile

__all__ = [
    "Obligation", "ObligationOutcome", "ObligationScheduler", "BACKENDS",
    "BackendUnusableError",
    "ExecConfig", "RetryPolicy", "coerce_exec_config",
    "ObligationEvent", "EventSubscription", "TERMINAL_EVENTS",
    "ExecStats", "Telemetry", "default_telemetry", "percentile",
    "atomic_write_text", "atomic_write_json",
    "ResultCache", "default_cache", "make_key",
    "package_fingerprint", "theory_fingerprint",
    "vc_obligation", "equiv_trial_obligation", "lemma_obligation",
    "ObligationPayload", "VCPayload", "EquivTrialPayload", "LemmaPayload",
    "CallPayload", "BatchPayload", "make_batch",
    "VC", "EQUIV_TRIAL", "LEMMA",
    "RemoteCoordinator",
]
