"""The unified execution configuration for the proof layers.

Every Echo entry point that discharges obligations -- the verifier
pipeline, the implementation proof, the refactoring engine's differential
checks, the implication proof, the harness statistics -- takes one
``exec=ExecConfig(...)`` parameter instead of a copy-pasted
``jobs=/cache=/telemetry=`` keyword triplet.  The config is an immutable
value object; components derive per-run :class:`~repro.exec.scheduler
.ObligationScheduler` instances from it via :meth:`ExecConfig.scheduler`.

Migration: the legacy keyword triplet still works on every public entry
point -- it is coerced into an ``ExecConfig`` by :func:`coerce_exec_config`
with a :class:`DeprecationWarning` -- but new code should construct the
config directly::

    from repro import ExecConfig, verify_aes
    result = verify_aes(exec=ExecConfig(jobs=8, backend="process"))
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Any, Optional, Union

from .retry import RetryPolicy
from .scheduler import BACKENDS, ObligationScheduler
from .telemetry import Telemetry

__all__ = ["ExecConfig", "RetryPolicy", "coerce_exec_config", "UNSET"]


class _Unset:
    """Sentinel distinguishing 'not passed' from explicit None/False."""

    def __repr__(self):
        return "<unset>"


#: Default value of deprecated keyword parameters.
UNSET = _Unset()


@dataclass(frozen=True)
class ExecConfig:
    """How proof obligations are executed.

    ``jobs``             worker count; 1 is the guaranteed-deterministic
                         serial path.  None selects ``os.cpu_count()``.
    ``backend``          'serial', 'thread' (GIL-bound, cheap start-up)
                         or 'process' (true multi-core proving).
    ``cache``            a :class:`~repro.exec.cache.ResultCache`, None
                         for the process-wide default, or False to
                         disable caching outright.
    ``cache_memory_entries``  LRU cap applied to the resolved cache's
                         in-memory layer (None leaves the cache's own
                         setting; long harness runs bound their footprint
                         with this).
    ``telemetry``        a :class:`~repro.exec.telemetry.Telemetry`, or
                         None for the component's default (the verifier
                         allocates one per run; bare schedulers fall back
                         to the process-wide log).
    ``timeout_seconds``  per-obligation wall bound; must be positive when
                         given (0 would silently *disable* the worker's
                         SIGALRM instead of enforcing a bound).  The
                         process backend enforces it preemptively (SIGALRM
                         in the worker); the thread backend can only
                         abandon the overrun thread.
    ``retries``          a :class:`RetryPolicy`, or an int coerced to one
                         (that many retries, default exponential backoff).
    ``on_error``         'raise' (propagate, the historical behaviour) or
                         'record' (mark the obligation ``errored``).
    ``on_backend_failure``  'raise' (an unusable backend aborts the run)
                         or 'degrade' (fall back process→thread→serial,
                         recording a ``degraded`` telemetry event).
    """

    jobs: Optional[int] = 1
    backend: str = "thread"
    cache: Any = None
    cache_memory_entries: Optional[int] = None
    telemetry: Optional[Telemetry] = None
    timeout_seconds: Optional[float] = None
    retries: Union[int, RetryPolicy] = 0
    on_error: str = "raise"
    on_backend_failure: str = "raise"

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, "
                             f"got {self.backend!r}")
        if self.jobs is not None and self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs!r}")
        if self.on_error not in ("raise", "record"):
            raise ValueError(f"on_error must be 'raise' or 'record', "
                             f"got {self.on_error!r}")
        if self.on_backend_failure not in ("raise", "degrade"):
            raise ValueError(f"on_backend_failure must be 'raise' or "
                             f"'degrade', got {self.on_backend_failure!r}")
        if self.cache_memory_entries is not None \
                and self.cache_memory_entries < 1:
            raise ValueError(f"cache_memory_entries must be >= 1, got "
                             f"{self.cache_memory_entries!r}")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError(f"timeout_seconds must be positive, got "
                             f"{self.timeout_seconds!r} (0 would disable "
                             f"the worker-side alarm, not enforce one)")
        # Coerce a plain-int retry count to the equivalent policy so every
        # downstream consumer sees one type (the frozen-dataclass dance).
        object.__setattr__(self, "retries", RetryPolicy.coerce(self.retries))

    # -- derivation ---------------------------------------------------------

    def scheduler(self) -> ObligationScheduler:
        """A scheduler configured by this config (one per run)."""
        return ObligationScheduler(
            jobs=self.jobs, cache=self.cache,
            cache_memory_entries=self.cache_memory_entries,
            telemetry=self.telemetry,
            timeout_seconds=self.timeout_seconds, retries=self.retries,
            on_error=self.on_error, backend=self.backend,
            on_backend_failure=self.on_backend_failure)

    def with_telemetry(self, telemetry: Telemetry) -> "ExecConfig":
        """This config with ``telemetry`` bound (components that own a
        per-run telemetry push it down to sub-components this way)."""
        return dataclasses.replace(self, telemetry=telemetry)

    # -- wire form ----------------------------------------------------------

    #: Fields that cross a JSON boundary (the serve protocol, the durable
    #: request journal).  ``cache`` and ``telemetry`` are deliberately
    #: absent: they are live objects owned by the executing side -- a
    #: remote client must never be able to name another tenant's cache.
    JSON_FIELDS = ("jobs", "backend", "timeout_seconds", "retries",
                   "on_error", "on_backend_failure", "cache_memory_entries")

    def to_json(self) -> dict:
        """The JSON-portable fields of this config (see
        :attr:`JSON_FIELDS`; ``retries`` dumps as the policy's dict)."""
        out = {}
        for name in self.JSON_FIELDS:
            value = getattr(self, name)
            out[name] = value.to_json() if name == "retries" else value
        return out

    @classmethod
    def from_json(cls, data: dict) -> "ExecConfig":
        """Rebuild a config from :meth:`to_json` output (or a hand-written
        subset).  Unknown keys are rejected -- in particular ``cache`` and
        ``telemetry``, which never travel -- and field validation is the
        constructor's own (``ValueError`` on bad values)."""
        if not isinstance(data, dict):
            raise ValueError(f"exec config must be a JSON object, "
                             f"got {type(data).__name__}")
        unknown = sorted(set(data) - set(cls.JSON_FIELDS))
        if unknown:
            raise ValueError(f"unknown exec config keys: {unknown} "
                             f"(allowed: {sorted(cls.JSON_FIELDS)})")
        kwargs = dict(data)
        retries = kwargs.get("retries")
        if isinstance(retries, dict):
            try:
                kwargs["retries"] = RetryPolicy(**retries)
            except TypeError as exc:
                raise ValueError(f"bad retries policy: {exc}")
        return cls(**kwargs)

    @property
    def effective_serial(self) -> bool:
        """True when obligations are guaranteed to run inline, in order,
        on the calling thread."""
        return self.backend == "serial" or self.jobs == 1


def coerce_exec_config(exec: Optional[ExecConfig], *, owner: str,
                       jobs: Any = UNSET, cache: Any = UNSET,
                       telemetry: Any = UNSET,
                       timeout_seconds: Any = UNSET) -> ExecConfig:
    """Resolve an entry point's ``exec=`` parameter against its deprecated
    keyword shims.

    Passing any legacy keyword builds an equivalent ``ExecConfig`` and
    emits a :class:`DeprecationWarning` naming ``owner``; mixing legacy
    keywords with an explicit ``exec=`` is an error (two sources of
    truth).  With neither, the default config applies.
    """
    legacy = {name: value for name, value in
              (("jobs", jobs), ("cache", cache), ("telemetry", telemetry),
               ("timeout_seconds", timeout_seconds))
              if value is not UNSET}
    if exec is not None:
        if not isinstance(exec, ExecConfig):
            raise TypeError(
                f"{owner}: exec must be an ExecConfig, got "
                f"{type(exec).__name__} (legacy jobs=/cache=/telemetry= "
                f"values must be passed by keyword)")
        if legacy:
            raise TypeError(
                f"{owner}: pass either exec=ExecConfig(...) or the "
                f"deprecated {sorted(legacy)} keywords, not both")
        return exec
    if not legacy:
        return ExecConfig()
    replacement = ", ".join(f"{name}={value!r}"
                            for name, value in sorted(legacy.items()))
    warnings.warn(
        f"{owner}: the jobs=/cache=/telemetry= keyword triplet is "
        f"deprecated; pass exec=ExecConfig({replacement}) instead",
        DeprecationWarning, stacklevel=3)
    jobs_value = legacy.get("jobs")
    return ExecConfig(
        jobs=1 if jobs_value is None else jobs_value,
        cache=legacy.get("cache"),
        telemetry=legacy.get("telemetry"),
        timeout_seconds=legacy.get("timeout_seconds"))
