"""The unified execution configuration for the proof layers.

Every Echo entry point that discharges obligations -- the verifier
pipeline, the implementation proof, the refactoring engine's differential
checks, the implication proof, the harness statistics -- takes one
``exec=ExecConfig(...)`` parameter instead of a copy-pasted
``jobs=/cache=/telemetry=`` keyword triplet.  The config is an immutable
value object; components derive per-run :class:`~repro.exec.scheduler
.ObligationScheduler` instances from it via :meth:`ExecConfig.scheduler`.

The PR-3 migration is complete: the legacy keyword triplet is gone from
every public entry point.  Passing one now raises a hard ``TypeError``
with the replacement spelled out::

    from repro import ExecConfig, verify_aes
    result = verify_aes(exec=ExecConfig(jobs=8, backend="process"))

The config is also where the proof farm is wired up:
``backend="remote"`` plus ``remote_workers=("host:port", ...)`` (dial
out to listening workers) or ``remote_listen="host:port"`` (bind and
let workers dial in) shards obligations across hosts (DESIGN.md §16).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Optional, Tuple, Union

from .retry import RetryPolicy
from .scheduler import BACKENDS, ObligationScheduler
from .telemetry import Telemetry

__all__ = ["ExecConfig", "RetryPolicy", "coerce_exec_config",
           "reject_legacy_exec_kwargs"]

#: The PR-3 legacy keywords, removed in PR 8.  Entry points keep catching
#: them by name purely to raise a helpful ``TypeError`` (see
#: :func:`reject_legacy_exec_kwargs`) instead of a bare
#: "unexpected keyword argument".
LEGACY_EXEC_KWARGS = ("jobs", "cache", "telemetry", "timeout_seconds",
                      "obligation_timeout")


def _check_address(owner: str, value: Any) -> str:
    """Validate a ``"host:port"`` address string (hostless ``":0"`` is
    allowed for listen addresses -- bind all interfaces, ephemeral
    port)."""
    if not isinstance(value, str) or ":" not in value:
        raise ValueError(f"{owner} addresses must be 'host:port' strings, "
                         f"got {value!r}")
    host, _, port = value.rpartition(":")
    try:
        port_num = int(port)
    except ValueError:
        raise ValueError(f"{owner}: port in {value!r} is not an integer")
    if not 0 <= port_num <= 65535:
        raise ValueError(f"{owner}: port in {value!r} out of range")
    return value


@dataclass(frozen=True)
class ExecConfig:
    """How proof obligations are executed.

    ``jobs``             worker count; 1 is the guaranteed-deterministic
                         serial path.  None selects ``os.cpu_count()``.
                         For ``backend="remote"`` this caps the *total*
                         in-flight leases across all connected workers.
    ``backend``          'serial', 'thread' (GIL-bound, cheap start-up),
                         'process' (true multi-core proving) or 'remote'
                         (a proof farm of socket-connected worker hosts).
    ``cache``            a :class:`~repro.exec.cache.ResultCache`, None
                         for the process-wide default, or False to
                         disable caching outright.
    ``cache_memory_entries``  LRU cap applied to the resolved cache's
                         in-memory layer (None leaves the cache's own
                         setting; long harness runs bound their footprint
                         with this).
    ``telemetry``        a :class:`~repro.exec.telemetry.Telemetry`, or
                         None for the component's default (the verifier
                         allocates one per run; bare schedulers fall back
                         to the process-wide log).
    ``timeout_seconds``  per-obligation wall bound; must be positive when
                         given (0 would silently *disable* the worker's
                         SIGALRM instead of enforcing a bound).  The
                         process and remote backends enforce it
                         preemptively (SIGALRM in the worker); the thread
                         backend can only abandon the overrun thread.
    ``retries``          a :class:`RetryPolicy`, or an int coerced to one
                         (that many retries, default exponential backoff).
    ``on_error``         'raise' (propagate, the historical behaviour) or
                         'record' (mark the obligation ``errored``).
    ``on_backend_failure``  'raise' (an unusable backend aborts the run)
                         or 'degrade' (fall back remote→process→thread→
                         serial, recording a ``degraded`` telemetry
                         event).
    ``batch_size``       max obligations bundled into one dispatch unit
                         (DESIGN.md §18).  1 disables batching outright
                         (every obligation keeps its own dispatch unit,
                         the pre-batching wire behaviour); must be an
                         integer >= 1.  Batching never changes verdicts
                         -- only how many round trips carry them.
    ``batch_bytes_cap``  upper bound (bytes) on one batch's estimated
                         pickled size; also sets the per-item join
                         threshold ``batch_bytes_cap // batch_size``
                         above which a payload is too large to join a
                         batch and ships solo.  Must be positive.

    Remote-backend fields (ignored by the local backends):

    ``remote_workers``   addresses of listening workers
                         (``python -m repro.exec.remote.worker --listen
                         PORT``) the coordinator dials out to.
    ``remote_listen``    a ``"host:port"`` bind address (port 0 for
                         ephemeral) workers dial in to
                         (``... --connect host:port``).
    ``lease_timeout_seconds``  coordinator-side bound on one obligation
                         lease; an expired lease closes the worker's
                         connection and re-runs its in-flight work.  None
                         derives a bound from ``timeout_seconds`` when
                         that is set, else leases never expire.
    ``remote_shared_cache``  when True (the default) workers read through
                         to the coordinator's content-addressed
                         :class:`~repro.exec.cache.ResultCache`, so any
                         worker's verdict is every worker's warm hit.
    """

    jobs: Optional[int] = 1
    backend: str = "thread"
    cache: Any = None
    cache_memory_entries: Optional[int] = None
    telemetry: Optional[Telemetry] = None
    timeout_seconds: Optional[float] = None
    retries: Union[int, RetryPolicy] = 0
    on_error: str = "raise"
    on_backend_failure: str = "raise"
    remote_workers: Tuple[str, ...] = ()
    remote_listen: Optional[str] = None
    lease_timeout_seconds: Optional[float] = None
    remote_shared_cache: bool = True
    batch_size: int = 16
    batch_bytes_cap: int = 4 * 1024 * 1024

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, "
                             f"got {self.backend!r}")
        if self.jobs is not None and self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs!r}")
        if self.on_error not in ("raise", "record"):
            raise ValueError(f"on_error must be 'raise' or 'record', "
                             f"got {self.on_error!r}")
        if self.on_backend_failure not in ("raise", "degrade"):
            raise ValueError(f"on_backend_failure must be 'raise' or "
                             f"'degrade', got {self.on_backend_failure!r}")
        if self.cache_memory_entries is not None \
                and self.cache_memory_entries < 1:
            raise ValueError(f"cache_memory_entries must be >= 1, got "
                             f"{self.cache_memory_entries!r}")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError(f"timeout_seconds must be positive, got "
                             f"{self.timeout_seconds!r} (0 would disable "
                             f"the worker-side alarm, not enforce one)")
        # Coerce a plain-int retry count to the equivalent policy so every
        # downstream consumer sees one type (the frozen-dataclass dance).
        object.__setattr__(self, "retries", RetryPolicy.coerce(self.retries))
        # Remote fields: list → tuple (hashability), address syntax, and
        # the backend="remote" ↔ worker-source consistency checks.
        workers = self.remote_workers
        if isinstance(workers, list):
            workers = tuple(workers)
            object.__setattr__(self, "remote_workers", workers)
        if not isinstance(workers, tuple):
            raise ValueError(f"remote_workers must be a tuple of "
                             f"'host:port' strings, got {workers!r}")
        for address in workers:
            _check_address("remote_workers", address)
        if self.remote_listen is not None:
            _check_address("remote_listen", self.remote_listen)
        if self.lease_timeout_seconds is not None \
                and self.lease_timeout_seconds <= 0:
            raise ValueError(f"lease_timeout_seconds must be positive, "
                             f"got {self.lease_timeout_seconds!r}")
        if not isinstance(self.remote_shared_cache, bool):
            raise ValueError(f"remote_shared_cache must be a boolean, "
                             f"got {self.remote_shared_cache!r}")
        if isinstance(self.batch_size, bool) \
                or not isinstance(self.batch_size, int) \
                or self.batch_size < 1:
            raise ValueError(f"batch_size must be an integer >= 1, "
                             f"got {self.batch_size!r} (1 disables "
                             f"batching; 0 would silently drop work)")
        if isinstance(self.batch_bytes_cap, bool) \
                or not isinstance(self.batch_bytes_cap, int) \
                or self.batch_bytes_cap <= 0:
            raise ValueError(f"batch_bytes_cap must be a positive integer "
                             f"(bytes), got {self.batch_bytes_cap!r}")
        if self.backend == "remote" and not workers \
                and self.remote_listen is None:
            raise ValueError(
                "backend='remote' needs a worker source: remote_workers="
                "('host:port', ...) to dial out, or remote_listen="
                "'host:port' to accept dial-ins")

    # -- derivation ---------------------------------------------------------

    def scheduler(self) -> ObligationScheduler:
        """A scheduler configured by this config (one per run)."""
        return ObligationScheduler(
            jobs=self.jobs, cache=self.cache,
            cache_memory_entries=self.cache_memory_entries,
            telemetry=self.telemetry,
            timeout_seconds=self.timeout_seconds, retries=self.retries,
            on_error=self.on_error, backend=self.backend,
            on_backend_failure=self.on_backend_failure,
            remote_workers=self.remote_workers,
            remote_listen=self.remote_listen,
            lease_timeout_seconds=self.lease_timeout_seconds,
            remote_shared_cache=self.remote_shared_cache,
            batch_size=self.batch_size,
            batch_bytes_cap=self.batch_bytes_cap)

    def with_telemetry(self, telemetry: Telemetry) -> "ExecConfig":
        """This config with ``telemetry`` bound (components that own a
        per-run telemetry push it down to sub-components this way)."""
        return dataclasses.replace(self, telemetry=telemetry)

    # -- wire form ----------------------------------------------------------

    #: Fields that cross a JSON boundary (the serve protocol, the durable
    #: request journal).  ``cache`` and ``telemetry`` are deliberately
    #: absent: they are live objects owned by the executing side -- a
    #: remote client must never be able to name another tenant's cache.
    JSON_FIELDS = ("jobs", "backend", "timeout_seconds", "retries",
                   "on_error", "on_backend_failure", "cache_memory_entries",
                   "remote_workers", "remote_listen",
                   "lease_timeout_seconds", "remote_shared_cache",
                   "batch_size", "batch_bytes_cap")

    def to_json(self) -> dict:
        """The JSON-portable fields of this config (see
        :attr:`JSON_FIELDS`; ``retries`` dumps as the policy's dict,
        ``remote_workers`` as a list)."""
        out = {}
        for name in self.JSON_FIELDS:
            value = getattr(self, name)
            if name == "retries":
                value = value.to_json()
            elif name == "remote_workers":
                value = list(value)
            out[name] = value
        return out

    @classmethod
    def from_json(cls, data: dict) -> "ExecConfig":
        """Rebuild a config from :meth:`to_json` output (or a hand-written
        subset).  Unknown keys are rejected -- in particular ``cache`` and
        ``telemetry``, which never travel -- and field validation is the
        constructor's own (``ValueError`` on bad values)."""
        if not isinstance(data, dict):
            raise ValueError(f"exec config must be a JSON object, "
                             f"got {type(data).__name__}")
        unknown = sorted(set(data) - set(cls.JSON_FIELDS))
        if unknown:
            raise ValueError(f"unknown exec config keys: {unknown} "
                             f"(allowed: {sorted(cls.JSON_FIELDS)})")
        kwargs = dict(data)
        retries = kwargs.get("retries")
        if isinstance(retries, dict):
            try:
                kwargs["retries"] = RetryPolicy(**retries)
            except TypeError as exc:
                raise ValueError(f"bad retries policy: {exc}")
        workers = kwargs.get("remote_workers")
        if workers is not None and not isinstance(workers, (list, tuple)):
            raise ValueError(f"remote_workers must be a list of "
                             f"'host:port' strings, got {workers!r}")
        return cls(**kwargs)

    @property
    def effective_serial(self) -> bool:
        """True when obligations are guaranteed to run inline, in order,
        on the calling thread.  Never true for the remote backend: even
        ``jobs=1`` ships work to a worker host."""
        if self.backend == "remote":
            return False
        return self.backend == "serial" or self.jobs == 1


def coerce_exec_config(exec: Optional[ExecConfig], *,
                       owner: str) -> ExecConfig:
    """Resolve an entry point's ``exec=`` parameter: type-check an
    explicit config, default to ``ExecConfig()`` when absent."""
    if exec is None:
        return ExecConfig()
    if not isinstance(exec, ExecConfig):
        raise TypeError(
            f"{owner}: exec must be an ExecConfig, got "
            f"{type(exec).__name__}")
    return exec


def reject_legacy_exec_kwargs(owner: str, kwargs: dict) -> None:
    """Raise the post-migration ``TypeError`` for the removed PR-3 shim
    keywords (``jobs=``/``cache=``/``telemetry=``/``obligation_timeout=``
    and friends), with the replacement spelled out.  Entry points route
    their ``**kwargs`` catch-all here; anything else in ``kwargs`` is a
    genuinely unknown keyword and gets the stock message."""
    if not kwargs:
        return
    legacy = sorted(set(kwargs) & set(LEGACY_EXEC_KWARGS))
    if legacy:
        hints = []
        for name in legacy:
            target = "timeout_seconds" if name == "obligation_timeout" \
                else name
            hints.append(f"{target}={kwargs[name]!r}")
        raise TypeError(
            f"{owner}: the legacy {legacy} keyword(s) were removed; "
            f"pass exec=ExecConfig({', '.join(hints)}) instead")
    unknown = sorted(kwargs)
    raise TypeError(f"{owner}: unexpected keyword argument(s): "
                    f"{', '.join(unknown)}")
