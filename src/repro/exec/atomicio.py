"""Atomic file publication for result artifacts.

Every artifact the system leaves behind for other processes --
``results/telemetry.json``, the harness report, the serve layer's journal
checkpoints and result records -- must never be observable half-written:
a crashed writer or a concurrent reader would otherwise see truncated
JSON and mistake corruption for data.  The recipe is the standard one the
result cache already uses internally (``mkstemp`` in the destination
directory, write, flush + fsync, ``os.replace``): readers see either the
complete old file or the complete new file, nothing in between, on any
POSIX filesystem.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

__all__ = ["atomic_write_text", "atomic_write_json"]


def atomic_write_text(path, text: str, encoding: str = "utf-8") -> None:
    """Publish ``text`` at ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in the destination directory so the final rename
    never crosses a filesystem boundary; it is fsynced before the rename
    so a crash immediately after publication cannot surface an empty
    file.  On any failure the temp file is removed and the original
    ``path`` (if it existed) is left untouched.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(target.parent),
                               prefix=target.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(path, payload: Any, indent: int = 2) -> None:
    """:func:`atomic_write_text` of ``json.dumps(payload)``."""
    atomic_write_text(path, json.dumps(payload, indent=indent))
