"""The proof-farm worker: ``python -m repro.exec.remote.worker``.

One worker process serves one coordinator connection at a time,
executing leased obligations with *exactly* the process backend's
semantics -- it runs :func:`repro.exec.scheduler._process_worker`
verbatim, so the SIGALRM hard timeout, the retry policy with
deterministic jitter, and the result-tuple shape are all identical to a
local pool worker.  Two connection modes::

    python -m repro.exec.remote.worker --connect HOST:PORT   # dial in
    python -m repro.exec.remote.worker --listen  [HOST:]PORT # be dialed

``--listen`` prints ``{"listening": "host:port"}`` on stdout once bound
(port 0 resolves to an ephemeral port) and keeps serving connections --
a persistent farm worker whose local result cache stays warm across
runs.  ``--connect`` exits when the connection ends (a supervisor or
test respawns it); a rejected handshake (version mismatch, quarantined
name) exits with status :data:`REJECTED_EXIT`.

Per lease, the worker answers from three tiers, cheapest first:

1. **local** -- its own in-process cache of wire-form results, warm
   across connections (and across runs, in ``--listen`` mode);
2. **tier** -- a ``cache_get`` read-through to the coordinator's
   content-addressed cache (when the coordinator enabled the shared
   tier), so any other worker's verdict is this worker's warm hit;
3. **computed** -- :func:`_process_worker` on the shipped payload.

The served tier travels back on the ``result`` message, so telemetry
can attribute farm-level cache behaviour.

Batched leases (protocol version 3): a ``lease_batch`` ships many small
obligations in one message; the worker absorbs the hoisted warm-norm
caches once, answers each member from its local tier or computes it,
and replies with one ``result_batch``.  See :func:`_handle_lease_batch`
for why the coordinator ``cache_get`` tier is skipped inside a batch.
"""

from __future__ import annotations

import argparse
import os
import socket
import subprocess
import sys
import time
from collections import deque
from typing import Dict, Optional, Tuple

from ...protocol import PROTOCOL_VERSION, ProtocolError, \
    check_protocol_version
from ..scheduler import _process_worker
from .link import Link, decode_blob, encode_blob, parse_address

__all__ = ["main", "spawn_worker", "REJECTED_EXIT"]

#: Exit status when the coordinator rejects the handshake.
REJECTED_EXIT = 3


def _log(message: str) -> None:
    print(f"[farm-worker] {message}", file=sys.stderr, flush=True)


def _await_cache_value(link: Link, pending: deque,
                       lease_id: str) -> Optional[dict]:
    """Block until the ``cache_value`` reply for ``lease_id``; other
    messages (further leases) queue in ``pending``.  ``None`` when the
    connection dies first -- the caller falls back to computing."""
    while True:
        try:
            message = link.recv()
        except (ProtocolError, OSError):
            return None
        if message is None:
            return None
        if message.get("reply") == "cache_value" \
                and message.get("lease") == lease_id:
            return message
        pending.append(message)


def _handle_lease(link: Link, message: dict, shared_cache: bool,
                  local_cache: Dict[str, object],
                  pending: deque) -> None:
    lease_id = message.get("lease")
    index = message.get("index")
    key = message.get("key")
    link.send({"reply": "ack", "lease": lease_id})
    result = None
    served = "computed"
    if key is not None and key in local_cache:
        result = (index, "ok", local_cache[key], 0.0, 1, (), None)
        served = "local"
    elif key is not None and shared_cache:
        link.send({"op": "cache_get", "lease": lease_id, "key": key})
        value = _await_cache_value(link, pending, lease_id)
        if value is not None and value.get("hit"):
            wire = decode_blob(value["wire"])
            local_cache[key] = wire
            result = (index, "ok", wire, 0.0, 1, (), None)
            served = "tier"
    if result is None:
        payload, retry_policy = decode_blob(message["blob"])
        result = _process_worker(index, payload, retry_policy,
                                 message.get("timeout"),
                                 message.get("token", ""))
        if key is not None and result[1] == "ok":
            local_cache[key] = result[2]
    link.send({"reply": "result", "lease": lease_id, "index": index,
               "served": served, "blob": encode_blob(result)})


def _handle_lease_batch(link: Link, message: dict,
                        local_cache: Dict[str, object]) -> None:
    """Execute one :class:`~repro.exec.payload.BatchPayload` lease
    (protocol version 3): absorb the hoisted warm-norm caches exactly
    once, then run every member through the same per-item machinery as a
    solo lease.  The coordinator ``cache_get`` tier is deliberately *not*
    consulted per member -- a per-item read-through round trip would
    reintroduce exactly the per-obligation wire latency batching exists
    to amortize; the worker's own local cache (warm across leases) still
    answers repeats, and the coordinator's write-through keeps the shared
    tier warm for later solo leases."""
    from ..payload import _absorb_warm

    lease_id = message.get("lease")
    link.send({"reply": "ack", "lease": lease_id})
    batch, retry_policy = decode_blob(message["blob"])
    for warm_key, warm_norms in batch.warm:
        _absorb_warm(warm_key, warm_norms)
    results = []
    served = []
    for index, payload, token, key in batch.entries:
        if key is not None and key in local_cache:
            results.append((index, "ok", local_cache[key], 0.0, 1, (),
                            None))
            served.append("local")
            continue
        result = _process_worker(index, payload, retry_policy,
                                 message.get("timeout"), token)
        if key is not None and result[1] == "ok":
            local_cache[key] = result[2]
        results.append(result)
        served.append("computed")
    link.send({"reply": "result_batch", "lease": lease_id,
               "served": served, "blob": encode_blob(tuple(results))})


def _serve_connection(sock: socket.socket, name: str,
                      local_cache: Dict[str, object]) -> bool:
    """Handshake and serve leases until the stream ends.  Returns False
    when the coordinator rejected us (do not reconnect)."""
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    link = Link(sock)
    try:
        link.send({"op": "hello", "protocol": PROTOCOL_VERSION,
                   "name": name, "pid": os.getpid()})
        reply = link.recv(timeout=30.0)
        if reply is None:
            return True
        if reply.get("reply") == "error":
            _log(f"rejected by coordinator: {reply.get('code')}: "
                 f"{reply.get('detail')}")
            return False
        if reply.get("reply") != "welcome":
            _log(f"unexpected handshake reply: {reply!r}")
            return False
        check_protocol_version(reply.get("protocol"),
                               surface="farm-worker", required=True)
        shared_cache = bool(reply.get("shared_cache"))
        pending: deque = deque()
        while True:
            message = pending.popleft() if pending else link.recv()
            if message is None or message.get("op") == "bye":
                return True
            if message.get("op") == "lease":
                _handle_lease(link, message, shared_cache, local_cache,
                              pending)
            elif message.get("op") == "lease_batch":
                _handle_lease_batch(link, message, local_cache)
            # Anything else: ignore (forward compatibility).
    except ProtocolError as exc:
        if exc.code == "protocol_mismatch":
            _log(str(exc))
            return False
        _log(f"protocol error: {exc}")
        return True
    except (OSError, socket.timeout) as exc:
        _log(f"connection lost: {exc}")
        return True
    finally:
        link.close()


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec.remote.worker",
        description="Proof-farm worker process (DESIGN.md §16).")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--connect", metavar="HOST:PORT",
                      help="dial a coordinator (exit when the "
                           "connection ends)")
    mode.add_argument("--listen", metavar="[HOST:]PORT",
                      help="bind and serve coordinator dial-ins; prints "
                           "the bound address as JSON on stdout")
    parser.add_argument("--name", default=None,
                        help="worker identity for the coordinator's "
                             "registry/quarantine (default: host-pid)")
    parser.add_argument("--once", action="store_true",
                        help="serve a single connection, then exit")
    parser.add_argument("--dial-timeout", type=float, default=30.0,
                        help="seconds to keep retrying --connect "
                             "(default 30)")
    args = parser.parse_args(argv)
    name = args.name or f"{socket.gethostname()}-{os.getpid()}"
    local_cache: Dict[str, object] = {}

    if args.connect is not None:
        address = parse_address(args.connect)
        deadline = time.monotonic() + args.dial_timeout
        while True:
            try:
                sock = socket.create_connection(address, timeout=5.0)
            except OSError:
                if time.monotonic() >= deadline:
                    _log(f"could not reach coordinator at "
                         f"{args.connect} within {args.dial_timeout}s")
                    return 1
                time.sleep(0.1)
                continue
            accepted = _serve_connection(sock, name, local_cache)
            return 0 if accepted else REJECTED_EXIT

    listen = args.listen if ":" in args.listen else f":{args.listen}"
    host, port = parse_address(listen)
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    server.bind((host, port))
    server.listen(4)
    bound = server.getsockname()
    print(f'{{"listening": "{bound[0]}:{bound[1]}"}}', flush=True)
    while True:
        try:
            sock, _ = server.accept()
        except OSError:
            return 0
        accepted = _serve_connection(sock, name, local_cache)
        if not accepted:
            return REJECTED_EXIT
        if args.once:
            return 0


def spawn_worker(*, connect: Optional[str] = None,
                 listen: Optional[str] = None, name: Optional[str] = None,
                 once: bool = False, python: Optional[str] = None,
                 pythonpath_extra: Tuple[str, ...] = ()
                 ) -> Tuple[subprocess.Popen, Optional[str]]:
    """Launch a worker subprocess (the helper tests, benchmarks and the
    CI farm smoke step use).  Returns ``(process, address)`` -- the
    address is the worker's bound ``"host:port"`` in ``--listen`` mode
    (read from its stdout), ``None`` in ``--connect`` mode.

    ``pythonpath_extra`` prepends entries to the worker's ``PYTHONPATH``
    beyond the ``repro`` source dir -- tests add their repo root so
    ``tests.*`` payload functions unpickle worker-side.
    """
    import json

    src_dir = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    env = dict(os.environ)
    parts = [*pythonpath_extra, src_dir]
    if env.get("PYTHONPATH"):
        parts.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    command = [python or sys.executable, "-m", "repro.exec.remote.worker"]
    if (connect is None) == (listen is None):
        raise ValueError("pass exactly one of connect= or listen=")
    if connect is not None:
        command += ["--connect", connect]
    else:
        command += ["--listen", listen]
    if name is not None:
        command += ["--name", name]
    if once:
        command += ["--once"]
    process = subprocess.Popen(command, stdout=subprocess.PIPE, env=env)
    address = None
    if listen is not None:
        line = process.stdout.readline()
        try:
            address = json.loads(line)["listening"]
        except (ValueError, KeyError, TypeError):
            process.kill()
            process.wait()
            raise RuntimeError(
                f"worker did not report a listen address "
                f"(got {line!r})")
    return process, address


if __name__ == "__main__":
    sys.exit(main())
