"""The proof-farm coordinator: worker registry, leases, shared cache.

One :class:`RemoteCoordinator` lives inside the scheduler's
``backend='remote'`` run (:meth:`~repro.exec.scheduler
.ObligationScheduler._run_remote`).  It owns the farm's connection
state and speaks the versioned wire protocol of :mod:`repro.protocol`
-- the scheduler only sees a lease API and an event queue:

**Connections.**  Workers either dial in (``listen='host:port'``) or
are dialed out to (``dial=('host:port', ...)`` -- each address gets a
dialer thread that reconnects with backoff after a drop, so a worker
that restarts rejoins the same run).  Every connection starts with a
``hello``/``welcome`` handshake that *requires* a matching protocol
version (:func:`~repro.protocol.check_protocol_version` with
``required=True``): a version-skewed worker is rejected loudly with a
``protocol_mismatch`` error, never silently tolerated.

**Leases.**  An obligation is *leased* to a worker: the lease record is
registered before the lease message is sent (journal-before-send, the
discipline :mod:`repro.serve.journal` uses for requests), the worker
``ack``\\ s receipt, and the terminal ``result`` message retires the
lease.  A lease that outlives its deadline marks the whole connection
suspect -- the coordinator closes it and blames every lease the worker
held, exactly as if the host had died.  Since protocol version 3 a
lease may carry a whole :class:`~repro.exec.payload.BatchPayload`
(``lease_batch``/``result_batch``, DESIGN.md §18): one wire round trip,
one worker slot, per-obligation bookkeeping -- the coordinator
decomposes the batched results back into per-obligation events, and a
dead connection blames every member of a batched lease.

**Failure taxonomy.**  A dead connection (EOF, send failure, protocol
violation, expired lease) is one event: ``("lost", name, indices,
reason)`` -- the scheduler blames those obligations and re-runs them
solo, per PR 4's crash machinery.  A worker that loses leases
``FLAP_STRIKES`` times is *quarantined by name*: its re-registrations
are rejected (``("quarantined", name, reason)`` tells the scheduler to
record telemetry).  An idle disconnect (no leases held) is not a
strike -- reconnect churn on a quiet farm is not flapping.

**Shared cache tier.**  A worker may ask ``cache_get`` before
computing; the coordinator answers from the scheduler's
content-addressed :class:`~repro.exec.cache.ResultCache` via the
``cache_lookup`` callback (read-through).  The write-through half is
the normal result path: the parent caches every verdict on receipt, so
any worker's result is every later lease's warm hit.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Set

from ...protocol import PROTOCOL_VERSION, ProtocolError, \
    check_protocol_version
from .link import Link, decode_blob, encode_blob, parse_address

__all__ = ["RemoteCoordinator"]


class _Worker:
    """One live connection's registry entry."""

    def __init__(self, name: str, link: Link):
        self.name = name
        self.link = link
        self.lease_ids: Set[str] = set()


class _Lease:
    """One dispatch unit on one worker: a solo obligation
    (``indices == (i,)``) or a :class:`~repro.exec.payload.BatchPayload`
    bundle.  ``keys`` maps member index -> cache key (for the
    write-through of delivered verdicts); a lost connection blames every
    member."""

    def __init__(self, lease_id: str, indices: tuple, worker: _Worker,
                 deadline: Optional[float],
                 keys: Optional[Dict[int, str]] = None):
        self.lease_id = lease_id
        self.indices = indices
        self.worker = worker
        self.deadline = deadline
        self.keys = keys or {}
        self.acked = False

    @property
    def index(self) -> int:
        return self.indices[0]


class RemoteCoordinator:
    #: Seconds a fresh connection gets to deliver its ``hello``.
    HELLO_TIMEOUT = 10.0
    #: Lease losses after which a worker name is quarantined.
    FLAP_STRIKES = 2
    #: Pause between reconnect attempts of a dialer thread.
    DIAL_BACKOFF = 0.25
    #: Lease-expiry scan period.
    MONITOR_PERIOD = 0.1

    def __init__(self, listen: Optional[str] = None,
                 dial: Sequence[str] = (),
                 cache_lookup: Optional[Callable[[str], object]] = None,
                 lease_timeout: Optional[float] = None,
                 per_worker: int = 2):
        if listen is None and not dial:
            raise ValueError("coordinator needs listen= or dial= workers")
        self._listen = listen
        self._dial = tuple(dial)
        self._cache_lookup = cache_lookup
        self._lease_timeout = lease_timeout
        self._per_worker = max(1, per_worker)
        #: Farm events for the scheduler: ("joined", name) |
        #: ("result", index, result_tuple, name, served) |
        #: ("lost", name, [indices], reason) |
        #: ("quarantined", name, reason).
        self.events: "queue.Queue[tuple]" = queue.Queue()
        #: "host:port" actually bound when listening (port 0 resolved).
        self.bound_address: Optional[str] = None
        self._lock = threading.RLock()
        self._joined = threading.Condition(self._lock)
        self._workers: Dict[str, _Worker] = {}
        self._leases: Dict[str, _Lease] = {}
        #: Wire-form results already received this run, by cache key.
        #: The read-through consults this before ``cache_lookup`` so a
        #: ``cache_get`` racing the scheduler's own ``cache.put`` of a
        #: just-delivered verdict still hits.
        self._result_wire: Dict[str, object] = {}
        self._strikes: Dict[str, int] = {}
        self._quarantined: Set[str] = set()
        self._sequence = 0
        self._stopping = threading.Event()
        self._server: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Bind/dial and start the service threads.  Raises ``OSError``
        when the listen address cannot be bound."""
        if self._listen is not None:
            host, port = parse_address(self._listen)
            server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            server.bind((host, port))
            server.listen(16)
            self._server = server
            bound = server.getsockname()
            self.bound_address = f"{bound[0]}:{bound[1]}"
            self._spawn(self._accept_loop, "farm-accept")
        for address in self._dial:
            self._spawn(self._dial_loop, f"farm-dial-{address}", address)
        self._spawn(self._monitor_loop, "farm-monitor")

    def stop(self) -> None:
        """Close every connection and stop the threads.  Idempotent."""
        self._stopping.set()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        with self._lock:
            workers = list(self._workers.values())
            self._workers.clear()
            self._leases.clear()
        for worker in workers:
            try:
                worker.link.send({"op": "bye"})
            except OSError:
                pass
            worker.link.close()
        for thread in self._threads:
            thread.join(timeout=2.0)

    def _spawn(self, target, name, *args) -> None:
        thread = threading.Thread(target=target, args=args, name=name,
                                  daemon=True)
        thread.start()
        self._threads.append(thread)

    # -- scheduler-facing API -----------------------------------------------

    def live_workers(self) -> int:
        with self._lock:
            return len(self._workers)

    def wait_for_workers(self, count: int, timeout: float) -> bool:
        """Block until ``count`` workers are registered (True) or the
        timeout passes (False)."""
        deadline = time.monotonic() + timeout
        with self._joined:
            while len(self._workers) < count:
                left = deadline - time.monotonic()
                if left <= 0 or self._stopping.is_set():
                    return False
                self._joined.wait(timeout=left)
            return True

    def poll(self, timeout: Optional[float] = None) -> Optional[tuple]:
        """The next farm event, or ``None`` after ``timeout``."""
        try:
            return self.events.get(timeout=timeout)
        except queue.Empty:
            return None

    def lease(self, index: int, payload, retry_policy,
              timeout_seconds: Optional[float], token: str,
              cache_key: Optional[str],
              avoid: Sequence[str] = ()) -> Optional[str]:
        """Lease one obligation to the least-loaded worker with an open
        slot, preferring workers not in ``avoid`` (the solo re-run of a
        blamed obligation avoids the host that lost it, when another is
        alive).  Returns the worker's name, or ``None`` when no worker
        has capacity."""
        while True:
            with self._lock:
                open_slots = [w for w in self._workers.values()
                              if len(w.lease_ids) < self._per_worker]
                if not open_slots:
                    return None
                preferred = [w for w in open_slots
                             if w.name not in avoid] or open_slots
                worker = min(preferred, key=lambda w: len(w.lease_ids))
                self._sequence += 1
                lease_id = f"L{self._sequence}"
                deadline = (time.monotonic() + self._lease_timeout
                            if self._lease_timeout is not None else None)
                keys = {index: cache_key} if cache_key is not None else None
                lease = _Lease(lease_id, (index,), worker, deadline, keys)
                self._leases[lease_id] = lease
                worker.lease_ids.add(lease_id)
            message = {
                "op": "lease", "lease": lease_id, "index": index,
                "blob": encode_blob((payload, retry_policy)),
                "timeout": timeout_seconds, "token": token,
                "key": cache_key,
            }
            try:
                worker.link.send(message)
                return worker.name
            except OSError as exc:
                # The connection died at send time: this lease never
                # reached the worker, so retire it *before* dropping the
                # worker -- the obligation is not blamed, only the
                # worker's other (delivered) leases are.
                with self._lock:
                    self._leases.pop(lease_id, None)
                    worker.lease_ids.discard(lease_id)
                self._drop_worker(worker, f"send failed: {exc}")
                # Another worker may have capacity; try again.

    def lease_batch(self, indices: Sequence[int], batch, retry_policy,
                    timeout_seconds: Optional[float],
                    avoid: Sequence[str] = ()) -> Optional[str]:
        """Lease one :class:`~repro.exec.payload.BatchPayload` as a
        single dispatch unit occupying *one* slot on its worker (the
        batch is one wire message and one ``ack``/``result_batch`` round
        trip -- amortizing the per-obligation dispatch cost is its whole
        point).  Member bookkeeping stays per-obligation: the lease
        records every member index, so a dead connection blames each of
        them and the scheduler re-runs them solo.  Returns the worker's
        name, or ``None`` when no worker has capacity."""
        indices = tuple(indices)
        keys = {index: key for index, _, _, key in batch.entries
                if key is not None}
        while True:
            with self._lock:
                open_slots = [w for w in self._workers.values()
                              if len(w.lease_ids) < self._per_worker]
                if not open_slots:
                    return None
                preferred = [w for w in open_slots
                             if w.name not in avoid] or open_slots
                worker = min(preferred, key=lambda w: len(w.lease_ids))
                self._sequence += 1
                lease_id = f"L{self._sequence}"
                # A batch's deadline scales with its size: K obligations
                # legitimately take K times one obligation's budget.
                deadline = (time.monotonic()
                            + self._lease_timeout * len(indices)
                            if self._lease_timeout is not None else None)
                lease = _Lease(lease_id, indices, worker, deadline, keys)
                self._leases[lease_id] = lease
                worker.lease_ids.add(lease_id)
            message = {
                "op": "lease_batch", "lease": lease_id,
                "indices": list(indices),
                "blob": encode_blob((batch, retry_policy)),
                "timeout": timeout_seconds,
            }
            try:
                worker.link.send(message)
                return worker.name
            except OSError as exc:
                # Same discipline as ``lease``: a send-time death means
                # the batch never reached the worker -- retire it before
                # dropping the worker so no member is blamed.
                with self._lock:
                    self._leases.pop(lease_id, None)
                    worker.lease_ids.discard(lease_id)
                self._drop_worker(worker, f"send failed: {exc}")

    # -- connection service -------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, _ = self._server.accept()
            except OSError:
                return   # server socket closed by stop()
            self._spawn(self._serve_connection, "farm-conn", sock)

    def _dial_loop(self, address: str) -> None:
        """Keep one worker address connected: dial, serve, reconnect
        with backoff after a drop.  Stops when the run ends or the
        worker at that address is rejected (quarantined/mismatched)."""
        while not self._stopping.is_set():
            try:
                sock = socket.create_connection(parse_address(address),
                                                timeout=5.0)
            except OSError:
                if self._stopping.wait(self.DIAL_BACKOFF):
                    return
                continue
            status = self._serve_connection(sock)
            if status == "rejected" or self._stopping.is_set():
                return
            self._stopping.wait(self.DIAL_BACKOFF)

    def _serve_connection(self, sock: socket.socket) -> str:
        """Handshake, register, then pump messages until the connection
        dies.  Returns ``"rejected"`` when the worker must not
        reconnect (quarantined, duplicate, version mismatch)."""
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        link = Link(sock)
        try:
            hello = link.recv(timeout=self.HELLO_TIMEOUT)
        except (ProtocolError, OSError, socket.timeout):
            link.close()
            return "rejected"
        if hello is None or hello.get("op") != "hello":
            link.close()
            return "rejected"
        name = hello.get("name")
        if not isinstance(name, str) or not name:
            self._reject(link, ProtocolError(
                "bad_request", "hello must carry a non-empty worker name"))
            return "rejected"
        try:
            check_protocol_version(hello.get("protocol"),
                                   surface="farm-coordinator",
                                   required=True)
        except ProtocolError as exc:
            self._reject(link, exc)
            return "rejected"
        with self._lock:
            if name in self._quarantined:
                self._reject(link, ProtocolError(
                    "quarantined",
                    f"worker {name!r} is quarantined (lost leases "
                    f"{self._strikes.get(name, 0)} times)"))
                return "rejected"
            if name in self._workers:
                self._reject(link, ProtocolError(
                    "duplicate_id",
                    f"worker {name!r} is already connected"))
                return "rejected"
            # Welcome inside the registration lock: TCP delivers in send
            # order, so the worker sees the welcome before any lease the
            # scheduler races to send it.
            try:
                link.send({"reply": "welcome",
                           "protocol": PROTOCOL_VERSION,
                           "shared_cache":
                               self._cache_lookup is not None})
            except OSError:
                link.close()
                return "rejected"
            worker = _Worker(name, link)
            self._workers[name] = worker
            self._joined.notify_all()
        self.events.put(("joined", name))
        reason = "connection closed"
        try:
            while not self._stopping.is_set():
                message = link.recv()
                if message is None:
                    break
                self._handle(worker, message)
        except ProtocolError as exc:
            reason = f"protocol violation: {exc.detail}"
        except OSError as exc:
            reason = f"transport error: {exc}"
        self._drop_worker(worker, reason)
        return "closed"

    def _reject(self, link: Link, error: ProtocolError) -> None:
        try:
            link.send(error.to_message())
        except OSError:
            pass
        link.close()

    def _handle(self, worker: _Worker, message: dict) -> None:
        if message.get("reply") == "ack":
            with self._lock:
                lease = self._leases.get(message.get("lease"))
                if lease is not None:
                    lease.acked = True
        elif message.get("reply") == "result":
            with self._lock:
                lease = self._leases.pop(message.get("lease"), None)
                if lease is not None:
                    lease.worker.lease_ids.discard(lease.lease_id)
            if lease is None:
                return   # stale: lease expired/blamed before the result
            try:
                result = decode_blob(message["blob"])
            except Exception as exc:   # noqa: BLE001 - wire-data boundary
                result = (lease.index, "errored",
                          f"undecodable result blob from "
                          f"{worker.name}: {exc}", 0.0, 1, (), None)
            key = lease.keys.get(lease.index)
            if key is not None and len(result) > 2 and result[1] == "ok":
                with self._lock:
                    self._result_wire[key] = result[2]
            self.events.put(("result", lease.index, result, worker.name,
                             message.get("served", "computed")))
        elif message.get("reply") == "result_batch":
            with self._lock:
                lease = self._leases.pop(message.get("lease"), None)
                if lease is not None:
                    lease.worker.lease_ids.discard(lease.lease_id)
            if lease is None:
                return   # stale: lease expired/blamed before the results
            # Decompose the batch into the per-obligation ("result", ...)
            # events the scheduler already understands -- batching is
            # invisible above the coordinator except for its telemetry.
            try:
                results = tuple(decode_blob(message["blob"]))
            except Exception as exc:   # noqa: BLE001 - wire-data boundary
                results = tuple(
                    (index, "errored",
                     f"undecodable batch result blob from "
                     f"{worker.name}: {exc}", 0.0, 1, (), None)
                    for index in lease.indices)
            served = message.get("served")
            if not isinstance(served, list) or len(served) != len(results):
                served = ["computed"] * len(results)
            for result, tier in zip(results, served):
                index = result[0]
                key = lease.keys.get(index)
                if key is not None and len(result) > 2 \
                        and result[1] == "ok":
                    with self._lock:
                        self._result_wire[key] = result[2]
                self.events.put(("result", index, result, worker.name,
                                 tier))
        elif message.get("op") == "cache_get":
            wire = None
            key = message.get("key")
            if isinstance(key, str):
                with self._lock:
                    wire = self._result_wire.get(key)
            if wire is None and self._cache_lookup is not None \
                    and isinstance(key, str):
                wire = self._cache_lookup(key)
            reply = {"reply": "cache_value",
                     "lease": message.get("lease"), "hit": wire is not None,
                     "wire": encode_blob(wire) if wire is not None
                     else None}
            worker.link.send(reply)
        # Unknown messages are ignored: forward compatibility within a
        # protocol generation.

    # -- failure paths ------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(self.MONITOR_PERIOD):
            now = time.monotonic()
            with self._lock:
                victims = {lease.worker for lease in self._leases.values()
                           if lease.deadline is not None
                           and lease.deadline <= now}
            for worker in victims:
                self._drop_worker(worker, "lease expired")

    def _drop_worker(self, worker: _Worker, reason: str) -> None:
        """Unified lost-connection path: unregister, blame every lease
        the worker held, strike (and maybe quarantine) the name."""
        newly_quarantined = False
        with self._lock:
            if self._workers.get(worker.name) is not worker:
                worker.link.close()
                return   # already dropped (monitor/reader race)
            del self._workers[worker.name]
            indices = []
            for lease_id in sorted(worker.lease_ids):
                lease = self._leases.pop(lease_id, None)
                if lease is not None:
                    indices.extend(lease.indices)
            worker.lease_ids.clear()
            if indices and not self._stopping.is_set():
                strikes = self._strikes.get(worker.name, 0) + 1
                self._strikes[worker.name] = strikes
                if strikes >= self.FLAP_STRIKES \
                        and worker.name not in self._quarantined:
                    self._quarantined.add(worker.name)
                    newly_quarantined = True
        worker.link.close()
        if self._stopping.is_set():
            return
        if indices:
            self.events.put(("lost", worker.name, indices, reason))
        if newly_quarantined:
            self.events.put((
                "quarantined", worker.name,
                f"lost in-flight leases {self._strikes[worker.name]} "
                f"times (flapping); re-registration rejected"))
