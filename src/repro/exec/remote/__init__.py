"""The distributed proof farm (DESIGN.md §16).

``backend='remote'`` in :class:`~repro.exec.scheduler
.ObligationScheduler` leases proof obligations to worker processes on
other hosts over sockets.  Three pieces:

* :mod:`~repro.exec.remote.coordinator` -- connection registry,
  versioned ``hello``/``welcome`` handshake, obligation lease/ack
  protocol with per-worker in-flight bounds, lease-expiry monitoring,
  flapping-host quarantine, and the shared networked cache tier;
* :mod:`~repro.exec.remote.worker` -- the worker entry point
  (``python -m repro.exec.remote.worker --connect host:port``), running
  the process backend's exact execution function;
* :mod:`~repro.exec.remote.link` -- framed line-JSON sockets with
  base64-pickled payload blobs over the shared :mod:`repro.protocol`.
"""

from .coordinator import RemoteCoordinator
from .link import Link, decode_blob, encode_blob, parse_address

__all__ = [
    "RemoteCoordinator", "spawn_worker", "REJECTED_EXIT",
    "Link", "encode_blob", "decode_blob", "parse_address",
]

_WORKER_NAMES = ("spawn_worker", "REJECTED_EXIT", "main")


def __getattr__(name):
    # The worker module is imported lazily so that ``python -m
    # repro.exec.remote.worker`` does not import it twice (runpy warns
    # when the target module is already in sys.modules).
    if name in _WORKER_NAMES:
        from . import worker
        return getattr(worker, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
