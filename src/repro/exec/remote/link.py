"""Socket plumbing for the proof farm: framed JSON links and blobs.

A :class:`Link` wraps one connected socket with the shared line-JSON
framing of :mod:`repro.protocol` (one object per newline-terminated
line): thread-safe sends, blocking receives, orderly close.  Payloads
and result tuples -- which carry term DAGs and are picklable but not
JSON-able -- travel inside control messages as base64-pickled blobs
(:func:`encode_blob`/:func:`decode_blob`); terms re-intern on unpickle
through :mod:`repro.logic.wire`, so hash-consing identity survives the
hop exactly as it does across the process backend's pipe.
"""

from __future__ import annotations

import base64
import pickle
import socket
import threading
from typing import Any, Optional, Tuple

from ...protocol import MAX_LINE_BYTES, ProtocolError, encode_message, \
    parse_json_line

__all__ = ["Link", "encode_blob", "decode_blob", "parse_address"]


def encode_blob(obj: Any) -> str:
    """A picklable object as a base64 string (ASCII, newline-free)."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def decode_blob(data: str) -> Any:
    """Inverse of :func:`encode_blob`."""
    return pickle.loads(base64.b64decode(data.encode("ascii")))


def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)``.  A bare ``":port"`` means all
    interfaces (bind) / localhost (connect)."""
    host, _, port = address.rpartition(":")
    try:
        port_num = int(port)
    except ValueError:
        raise ValueError(f"bad address {address!r}: port is not an integer")
    if not 0 <= port_num <= 65535:
        raise ValueError(f"bad address {address!r}: port out of range")
    return host or "127.0.0.1", port_num


class Link:
    """One framed-JSON connection.  ``send`` is thread-safe (the
    coordinator's scheduler thread and reader thread both write);
    ``recv`` is single-consumer."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._send_lock = threading.Lock()
        self._closed = False

    def send(self, message: dict) -> None:
        """Write one message; raises ``OSError`` on a dead transport."""
        data = encode_message(message).encode("utf-8")
        with self._send_lock:
            self._sock.sendall(data)

    def recv(self, timeout: Optional[float] = None) -> Optional[dict]:
        """Read one message; ``None`` on end-of-stream.  Raises
        :class:`~repro.protocol.ProtocolError` on an unparsable line,
        ``OSError``/``socket.timeout`` on transport failure."""
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            raw = self._rfile.readline(MAX_LINE_BYTES + 2)
        finally:
            if timeout is not None:
                self._sock.settimeout(None)
        if not raw:
            return None
        line = raw.decode("utf-8", errors="replace")
        if not line.endswith("\n"):
            raise ProtocolError("bad_request",
                                f"unterminated or oversize line "
                                f"({len(raw)} bytes)")
        return parse_json_line(line.rstrip("\n"))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for closer in (lambda: self._sock.shutdown(socket.SHUT_RDWR),
                       self._rfile.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass
