"""Structured events emitted by the obligation execution layer.

Every state change of an obligation -- submitted to the scheduler, started
on a worker, finished, served from cache, timed out, errored, retried,
skipped by early exit -- is recorded as one :class:`ObligationEvent` in the
run's :class:`~repro.exec.telemetry.Telemetry` log.  Events are plain data
(JSON-dumpable) so benchmark harnesses can post-process them.

Fault-tolerance events extend the life cycle (DESIGN.md §12):

* ``CRASHED`` -- the obligation was in flight when a pool worker died; it
  is blamed once and requeued (non-terminal: the obligation lives on).
* ``QUARANTINED`` -- the obligation killed a worker twice and is pulled
  from circulation with a ``crashed`` outcome (terminal).
* ``RETRIED_OK`` -- the obligation eventually succeeded after at least
  one retry or crash-requeue (non-terminal bookkeeping; the matching
  ``FINISHED`` event is the terminal one).
* ``DEGRADED`` -- the scheduler abandoned an unusable backend and fell
  back along the process→thread→serial chain (``kind='exec'``; not tied
  to a single obligation).
* ``WORKER_ABANDONED`` -- pool shutdown left an unresponsive worker
  behind (``kind='exec'``; the obligation itself was already recorded
  ``timed_out``).
* ``DISPATCHED`` -- one dispatch unit (a solo obligation or a
  :class:`~repro.exec.payload.BatchPayload` bundle) completed its round
  trip to a worker (``kind='exec'``; non-terminal bookkeeping).  ``wall``
  carries the *dispatch overhead*: round-trip wall minus the summed
  per-item execution walls -- the pickling/wire/queue cost the batching
  layer (DESIGN.md §18) exists to amortize.  ``detail`` is
  ``items=<K>``; ``K > 1`` marks a batched dispatch.

Live subscription: a :class:`~repro.exec.telemetry.Telemetry` is not only
a log to post-process after the run -- callers can attach a callback with
``Telemetry.subscribe`` and observe every event as it is recorded.  The
returned :class:`EventSubscription` detaches the callback on ``close()``
(or on leaving its ``with`` block); the serve layer
(:mod:`repro.serve`) bridges obligation events to connected clients this
way.  The full taxonomy is tabulated in DESIGN.md §14.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass
from typing import Callable, Optional

__all__ = [
    "ObligationEvent", "EventSubscription",
    "SUBMITTED", "STARTED", "FINISHED", "CACHED", "TIMED_OUT", "ERRORED",
    "RETRIED", "SKIPPED", "CRASHED", "QUARANTINED", "DEGRADED",
    "RETRIED_OK", "WORKER_ABANDONED", "DISPATCHED", "TERMINAL_EVENTS",
]

SUBMITTED = "submitted"
STARTED = "started"
FINISHED = "finished"
CACHED = "cached"
TIMED_OUT = "timed_out"
ERRORED = "errored"
RETRIED = "retried"
SKIPPED = "skipped"
CRASHED = "crashed"
QUARANTINED = "quarantined"
DEGRADED = "degraded"
RETRIED_OK = "retried_ok"
WORKER_ABANDONED = "worker_abandoned"
DISPATCHED = "dispatched"

#: Events that end an obligation's life (used for queue-depth accounting).
#: ``CRASHED`` is deliberately absent -- a crashed-once obligation is
#: requeued; ``QUARANTINED`` is its terminal event when it crashes again.
TERMINAL_EVENTS = frozenset({FINISHED, CACHED, TIMED_OUT, ERRORED, SKIPPED,
                             QUARANTINED})


@dataclass(frozen=True)
class ObligationEvent:
    """One state change of one obligation.

    ``t`` is seconds since the owning telemetry's epoch; ``wall`` is the
    obligation's execution time (only meaningful on terminal events);
    ``queue_depth`` is the number of submitted-but-unfinished obligations
    at the moment the event was recorded.
    """

    event: str
    kind: str          # 'vc' | 'equiv_trial' | 'lemma' | ...
    label: str
    t: float
    wall: float = 0.0
    queue_depth: int = 0
    detail: str = ""

    def to_json(self) -> dict:
        return asdict(self)


class EventSubscription:
    """A live feed of :class:`ObligationEvent` attached to one
    :class:`~repro.exec.telemetry.Telemetry`.

    Obtained from ``Telemetry.subscribe(callback)``.  The callback runs
    synchronously on whichever thread records the event (scheduler
    worker threads included), *after* the telemetry's internal lock is
    released -- it must be fast and must not call back into the same
    telemetry's ``record``.  A callback that raises is detached
    immediately (a broken subscriber must not take the proof run down
    with it); the offending exception is kept on :attr:`error` so the
    subscriber's owner can notice the feed died rather than silently
    losing events.

    ``close()`` detaches idempotently; the instance is also a context
    manager (``with telemetry.subscribe(cb): ...``).
    """

    __slots__ = ("_callback", "_detach", "_lock", "error")

    def __init__(self, callback: Callable[[ObligationEvent], None],
                 detach: Callable[["EventSubscription"], None]):
        self._callback = callback
        self._detach = detach
        self._lock = threading.Lock()
        #: The exception that killed the feed, if any (None while live).
        self.error: Optional[BaseException] = None

    @property
    def active(self) -> bool:
        return self._callback is not None

    def deliver(self, event: ObligationEvent) -> None:
        """Invoke the callback (telemetry-side; not for external use)."""
        callback = self._callback
        if callback is None:
            return
        try:
            callback(event)
        except Exception as exc:   # noqa: BLE001 - subscriber fault boundary
            self.error = exc
            self.close()

    def close(self) -> None:
        with self._lock:
            if self._callback is None:
                return
            self._callback = None
        self._detach(self)

    def __enter__(self) -> "EventSubscription":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
