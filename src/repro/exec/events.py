"""Structured events emitted by the obligation execution layer.

Every state change of an obligation -- submitted to the scheduler, started
on a worker, finished, served from cache, timed out, errored, retried,
skipped by early exit -- is recorded as one :class:`ObligationEvent` in the
run's :class:`~repro.exec.telemetry.Telemetry` log.  Events are plain data
(JSON-dumpable) so benchmark harnesses can post-process them.

Fault-tolerance events extend the life cycle (DESIGN.md §12):

* ``CRASHED`` -- the obligation was in flight when a pool worker died; it
  is blamed once and requeued (non-terminal: the obligation lives on).
* ``QUARANTINED`` -- the obligation killed a worker twice and is pulled
  from circulation with a ``crashed`` outcome (terminal).
* ``RETRIED_OK`` -- the obligation eventually succeeded after at least
  one retry or crash-requeue (non-terminal bookkeeping; the matching
  ``FINISHED`` event is the terminal one).
* ``DEGRADED`` -- the scheduler abandoned an unusable backend and fell
  back along the process→thread→serial chain (``kind='exec'``; not tied
  to a single obligation).
* ``WORKER_ABANDONED`` -- pool shutdown left an unresponsive worker
  behind (``kind='exec'``; the obligation itself was already recorded
  ``timed_out``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = [
    "ObligationEvent",
    "SUBMITTED", "STARTED", "FINISHED", "CACHED", "TIMED_OUT", "ERRORED",
    "RETRIED", "SKIPPED", "CRASHED", "QUARANTINED", "DEGRADED",
    "RETRIED_OK", "WORKER_ABANDONED", "TERMINAL_EVENTS",
]

SUBMITTED = "submitted"
STARTED = "started"
FINISHED = "finished"
CACHED = "cached"
TIMED_OUT = "timed_out"
ERRORED = "errored"
RETRIED = "retried"
SKIPPED = "skipped"
CRASHED = "crashed"
QUARANTINED = "quarantined"
DEGRADED = "degraded"
RETRIED_OK = "retried_ok"
WORKER_ABANDONED = "worker_abandoned"

#: Events that end an obligation's life (used for queue-depth accounting).
#: ``CRASHED`` is deliberately absent -- a crashed-once obligation is
#: requeued; ``QUARANTINED`` is its terminal event when it crashes again.
TERMINAL_EVENTS = frozenset({FINISHED, CACHED, TIMED_OUT, ERRORED, SKIPPED,
                             QUARANTINED})


@dataclass(frozen=True)
class ObligationEvent:
    """One state change of one obligation.

    ``t`` is seconds since the owning telemetry's epoch; ``wall`` is the
    obligation's execution time (only meaningful on terminal events);
    ``queue_depth`` is the number of submitted-but-unfinished obligations
    at the moment the event was recorded.
    """

    event: str
    kind: str          # 'vc' | 'equiv_trial' | 'lemma' | ...
    label: str
    t: float
    wall: float = 0.0
    queue_depth: int = 0
    detail: str = ""

    def to_json(self) -> dict:
        return asdict(self)
