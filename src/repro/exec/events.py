"""Structured events emitted by the obligation execution layer.

Every state change of an obligation -- submitted to the scheduler, started
on a worker, finished, served from cache, timed out, errored, retried,
skipped by early exit -- is recorded as one :class:`ObligationEvent` in the
run's :class:`~repro.exec.telemetry.Telemetry` log.  Events are plain data
(JSON-dumpable) so benchmark harnesses can post-process them.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = [
    "ObligationEvent",
    "SUBMITTED", "STARTED", "FINISHED", "CACHED", "TIMED_OUT", "ERRORED",
    "RETRIED", "SKIPPED", "TERMINAL_EVENTS",
]

SUBMITTED = "submitted"
STARTED = "started"
FINISHED = "finished"
CACHED = "cached"
TIMED_OUT = "timed_out"
ERRORED = "errored"
RETRIED = "retried"
SKIPPED = "skipped"

#: Events that end an obligation's life (used for queue-depth accounting).
TERMINAL_EVENTS = frozenset({FINISHED, CACHED, TIMED_OUT, ERRORED, SKIPPED})


@dataclass(frozen=True)
class ObligationEvent:
    """One state change of one obligation.

    ``t`` is seconds since the owning telemetry's epoch; ``wall`` is the
    obligation's execution time (only meaningful on terminal events);
    ``queue_depth`` is the number of submitted-but-unfinished obligations
    at the moment the event was recorded.
    """

    event: str
    kind: str          # 'vc' | 'equiv_trial' | 'lemma' | ...
    label: str
    t: float
    wall: float = 0.0
    queue_depth: int = 0
    detail: str = ""

    def to_json(self) -> dict:
        return asdict(self)
