"""Declarative, picklable proof-obligation payloads.

The thread and serial scheduler backends execute an obligation's
``thunk`` -- a closure over live parent-process objects (typed packages,
provers, evaluators).  Closures do not pickle, so the process backend
instead ships a *payload*: a declarative spec naming exactly the inputs
the discharge depends on (the VC term and prover configuration, the
equivalence-trial initial state and program pair, the lemma identity and
theories), from which the worker reconstructs the thunk on its side of
the process boundary.

Everything a payload carries is picklable by construction: MiniAda and
MiniPVS ASTs are pure dataclass trees, and logic terms route through the
structural wire format of :mod:`repro.logic.wire`, which re-interns them
in the worker so hash-consing identity (``__eq__ is is``) holds there
exactly as it does in the parent.

Worker-side context is memoized per process, keyed by content
fingerprints: a package is re-analyzed once per worker (not once per VC),
and theory evaluator pairs are reused per theory pair.  Provers are the
deliberate exception -- a prover instance accumulates search history, so
one is constructed *per VC* (the session's inline path does the same),
keeping every discharge a pure function of the payload's fields no
matter which sibling VCs a worker saw first.  Reconstruction is
deterministic -- ``analyze`` of the same AST, ``build_map``/
``generate_lemmas`` of the same theories -- so a payload discharged in a
worker produces the same result the parent-side thunk would have
produced.

Results travel back through ``encode_result``/``decode_result``:
``encode_result`` runs worker-side and maps the raw value onto plain
data (the same codecs the on-disk cache layer uses, where those exist);
``decode_result`` runs parent-side.  The scheduler prefers the
obligation's own ``decode`` when one is declared, so e.g. a lemma outcome
is re-attached to the *parent's* lemma object exactly as a disk-cache
replay would be.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = [
    "ObligationPayload", "VCPayload", "EquivTrialPayload", "LemmaPayload",
    "CallPayload", "BatchPayload", "make_batch",
]


class ObligationPayload:
    """One schedulable unit of proof work as declarative, picklable data.

    Subclasses implement :meth:`run` (worker-side: rebuild context and
    execute) and may override the result codecs.  Instances must be
    picklable; keep fields to ASTs, terms, strings, and numbers.

    Execution semantics are **at-least-once**: crash recovery
    (DESIGN.md §12) re-ships a payload whose worker died, and the retry
    policy re-runs one that raised transiently, so :meth:`run` must be
    idempotent -- a pure function of the payload's fields, like every
    proof discharge is.  A payload that kills its worker outright
    (``os._exit``, a segfaulting extension) is blamed, re-verified solo,
    and quarantined with a ``crashed`` outcome if it kills again; it
    cannot abort the surrounding run.
    """

    def run(self) -> Any:
        raise NotImplementedError

    def encode_result(self, value: Any) -> Any:
        """Worker-side: map the raw result onto picklable plain data."""
        return value

    def decode_result(self, wire: Any) -> Any:
        """Parent-side inverse of :meth:`encode_result` (used only when
        the obligation declares no ``decode`` of its own)."""
        return wire


# ---------------------------------------------------------------------------
# Worker-side context caches (per process, keyed by content fingerprints)
# ---------------------------------------------------------------------------

_TYPED_CACHE: Dict[str, Any] = {}
_THEORY_CACHE: Dict[tuple, tuple] = {}
#: Warm normalization batches already absorbed by this worker, keyed by
#: (scope key, fingerprint tuple) -- every VC payload of a subprogram
#: carries the same batch, which need only be decoded once per process.
_WARM_ABSORBED: set = set()


def _typed_package(fp: str, package):
    """Analyze ``package`` once per worker process."""
    typed = _TYPED_CACHE.get(fp)
    if typed is None:
        from ..lang import analyze
        typed = analyze(package)
        _TYPED_CACHE[fp] = typed
    return typed


def _provers(fp: str, package, subprogram: str, auto_timeout):
    """A *fresh* (AutoProver, InteractiveProver) pair for one VC.

    Prover instances carry search history (the fresh-name counter, the
    per-term memo caches), so a pair reused across VCs would make each
    verdict depend on which sibling VCs this worker happened to
    discharge earlier -- and with the farm handing every worker a
    different subset of leases, on the shape of the farm itself.
    Constructing per VC keeps a payload's outcome a pure function of
    its fields: any distribution of obligations across threads,
    processes, or remote workers produces the serial reference's
    verdicts bit for bit.  The worker's process-wide normalization
    cache (warmed by :func:`_absorb_warm`) is still shared across
    constructions: a cached normal form is a pure function of
    (rules, term), an accelerator that cannot move a verdict."""
    from ..logic.normcache import default_norm_cache
    from ..prover.auto import AutoProver
    from ..prover.tactics import InteractiveProver
    typed = _typed_package(fp, package)
    shared = default_norm_cache()
    return (AutoProver(typed, subprogram_name=subprogram,
                       timeout_seconds=auto_timeout, shared=shared),
            InteractiveProver(typed, subprogram_name=subprogram,
                              shared=shared))


def _absorb_warm(warm_key: str, warm_norms) -> None:
    """Install a payload's warm normalization batch (parent-side examiner
    results for one subprogram) into this worker's cache, once."""
    fps, wire = warm_norms
    memo_key = (warm_key, fps)
    if memo_key in _WARM_ABSORBED:
        return
    _WARM_ABSORBED.add(memo_key)
    from ..logic.normcache import default_norm_cache
    from ..logic.wire import decode_terms
    terms = decode_terms(wire)
    default_norm_cache().absorb(warm_key, zip(fps, terms))


def _theory_context(original_fp: str, extracted_fp: str,
                    original, extracted):
    """(amap, lemmas-by-name, orig evaluator, ext evaluator) for one
    theory pair, rebuilt deterministically once per worker."""
    key = (original_fp, extracted_fp)
    ctx = _THEORY_CACHE.get(key)
    if ctx is None:
        from ..extract.mapper import build_map
        from ..implication.lemmas import generate_lemmas
        from ..spec import SpecEvaluator
        amap = build_map(original, extracted)
        lemmas = {lemma.name: lemma
                  for lemma in generate_lemmas(original, amap)}
        ctx = (amap, lemmas, SpecEvaluator(original),
               SpecEvaluator(extracted))
        _THEORY_CACHE[key] = ctx
    return ctx


# The process backend forks workers from a parent that may hold the
# interning-table lock on another thread at fork time; give the child a
# fresh lock (its private table copy has no other threads) so decoding
# terms in the worker can never inherit a forever-held lock.
def _reinit_locks_after_fork() -> None:
    import threading

    from ..logic.terms import term_table
    term_table._lock = threading.Lock()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reinit_locks_after_fork)


# ---------------------------------------------------------------------------
# VC discharge
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class VCPayload(ObligationPayload):
    """Discharge of one verification condition: automatic prover first,
    then the subprogram's interactive proof scripts -- the exact sequence
    of :meth:`repro.prover.session.ImplementationProof._discharger`.

    ``package`` is the MiniAda AST (re-analyzed worker-side, memoized on
    ``package_fp``); ``term`` is the simplified VC (re-interned via the
    wire format); ``scripts`` are the :class:`~repro.prover.tactics
    .ProofScript` values to try in order on an auto-prover miss.
    """

    package: Any                   # repro.lang.ast.Package
    package_fp: str
    subprogram: str
    term: Any                      # repro.logic.terms.Term
    scripts: Tuple[Any, ...] = ()
    auto_timeout: Optional[float] = None
    #: Optional warm normalization batch: the parent examiner's subterm
    #: normal forms for this subprogram, as (scope key, (fingerprint
    #: tuple, wire-encoded terms)).  Absorbed once per worker; purely an
    #: accelerator -- results are identical without it.
    warm_key: Optional[str] = None
    warm_norms: Any = None

    def run(self):
        if self.warm_key is not None and self.warm_norms is not None:
            _absorb_warm(self.warm_key, self.warm_norms)
        auto, interactive = _provers(self.package_fp, self.package,
                                     self.subprogram, self.auto_timeout)
        result = auto.prove(self.term)
        if result.proved:
            return "auto", result
        if not self.scripts:
            return "undischarged", None
        for script in self.scripts:
            result = interactive.run_script(self.term, script)
            if result.proved:
                return "interactive", result
        return "undischarged", result

    def encode_result(self, value):
        from .obligation import _encode_vc_result
        return _encode_vc_result(value)

    def decode_result(self, wire):
        from .obligation import _decode_vc_result
        return _decode_vc_result(wire)


# ---------------------------------------------------------------------------
# Equivalence trials
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EquivTrialPayload(ObligationPayload):
    """One differential trial: run both program versions from ``initial``
    and compare final states.  The result (a
    :class:`~repro.equiv.differential.Counterexample` or None) is plain
    frozen data and pickles as-is."""

    left_package: Any              # repro.lang.ast.Package
    right_package: Any
    left_fp: str
    right_fp: str
    left_name: str
    right_name: str
    initial: Any                   # State: name -> int/bool/tuple

    def run(self):
        from ..equiv.differential import _compare
        left = _typed_package(self.left_fp, self.left_package)
        right = _typed_package(self.right_fp, self.right_package)
        return _compare(left, self.left_name, right, self.right_name,
                        dict(self.initial))


# ---------------------------------------------------------------------------
# Implication lemmas
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LemmaPayload(ObligationPayload):
    """One implication-lemma discharge, identified by lemma name within a
    theory pair.  The architectural map, the lemma list, and the
    evaluator pair are rebuilt deterministically worker-side (memoized on
    the theory fingerprints)."""

    original: Any                  # repro.spec.ast.Theory
    extracted: Any
    original_fp: str
    extracted_fp: str
    lemma_name: str
    seed: int

    def run(self):
        from ..implication.prover import discharge_lemma
        amap, lemmas, orig_eval, ext_eval = _theory_context(
            self.original_fp, self.extracted_fp,
            self.original, self.extracted)
        lemma = lemmas.get(self.lemma_name)
        if lemma is None:
            raise KeyError(f"lemma {self.lemma_name!r} not generated for "
                           f"this theory pair")
        return discharge_lemma(lemma, self.original, self.extracted, amap,
                               orig_eval, ext_eval, seed=self.seed)

    def encode_result(self, value):
        from .obligation import _encode_lemma_outcome
        return _encode_lemma_outcome(value)

    def decode_result(self, wire):
        # Without a parent-side lemma to re-attach (the obligation's own
        # decode does that), rebuild the outcome around the worker-shipped
        # scalar fields with no lemma object.
        from ..implication.prover import LemmaOutcome
        return LemmaOutcome(lemma=None, **wire)


# ---------------------------------------------------------------------------
# Batched dispatch
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BatchPayload:
    """K small obligations bundled into one dispatch unit (DESIGN.md §18).

    A batch is *not* an obligation -- it is a transport envelope the
    scheduler wraps around several already-admitted obligations so they
    share one pickle/wire/lease round trip.  Each entry is
    ``(index, payload, token, cache_key)``: the scheduler's obligation
    index, the item's :class:`ObligationPayload`, the per-item alarm
    token, and the item's cache key (``None`` when uncacheable; remote
    workers use keys for their local served-result tier, the process
    backend ignores them).

    ``warm`` carries the batch's *hoisted* warm normalization batches:
    the distinct ``(warm_key, warm_norms)`` pairs of the bundled
    :class:`VCPayload` items, each shipped and absorbed exactly once per
    dispatch instead of once per item (:func:`make_batch` strips the
    per-item copies).  Because one batch's items typically share a
    package AST and warm batch, pickling the envelope also serializes
    those shared objects once -- the bulk of the wire saving.

    Per-item semantics are preserved: the worker runs each entry through
    the same per-item timeout/retry machinery a solo dispatch uses and
    returns one result tuple per entry, so timeouts, retries, and fault
    blame stay attributable to individual obligations.
    """

    entries: Tuple[Tuple[int, Any, str, Optional[Any]], ...]
    warm: Tuple[Tuple[str, Any], ...] = ()

    def __len__(self) -> int:
        return len(self.entries)


def make_batch(entries) -> BatchPayload:
    """Bundle ``(index, payload, token, cache_key)`` tuples into a
    :class:`BatchPayload`, hoisting shared warm normalization batches.

    Hoisting replaces each item's ``warm_norms`` with ``None`` on a
    *copy* of the payload (the caller's obligations are untouched, so a
    blamed batch's solo re-runs still ship their own warm batch) and
    records each distinct ``(warm_key, fingerprint-tuple)`` batch once
    in :attr:`BatchPayload.warm`.  The worker absorbs the hoisted
    batches before running any entry, so items observe exactly the warm
    cache state they would have installed themselves.
    """
    from dataclasses import replace
    hoisted: Dict[tuple, Tuple[str, Any]] = {}
    stripped = []
    for index, payload, token, key in entries:
        warm_key = getattr(payload, "warm_key", None)
        warm_norms = getattr(payload, "warm_norms", None)
        if warm_key is not None and warm_norms is not None:
            memo = (warm_key, warm_norms[0])
            if memo not in hoisted:
                hoisted[memo] = (warm_key, warm_norms)
            payload = replace(payload, warm_norms=None)
        stripped.append((index, payload, token, key))
    return BatchPayload(entries=tuple(stripped),
                        warm=tuple(hoisted.values()))


# ---------------------------------------------------------------------------
# Generic function-call payload
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CallPayload(ObligationPayload):
    """Apply a module-level function to picklable arguments.

    The escape hatch for custom obligations that want to ride the process
    backend: ``fn`` must be importable by qualified name (pickling a
    lambda or inner function fails at submission time, loudly).
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    def run(self):
        return self.fn(*self.args, **dict(self.kwargs))
