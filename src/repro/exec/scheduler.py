"""The work-queue scheduler for proof obligations.

``ObligationScheduler.run`` takes a list of :class:`Obligation` and
returns one :class:`ObligationOutcome` per obligation, **in input order**
regardless of completion order.  Two execution modes:

* ``jobs == 1`` -- the guaranteed serial fallback: obligations run inline,
  one after another, on the calling thread.  This path performs exactly
  the work the pre-scheduler code ran, in the same order, so results are
  bit-identical and tier-1 determinism is preserved.
* ``jobs > 1`` -- a ``concurrent.futures.ThreadPoolExecutor``.  Threads
  (not processes) because terms are hash-consed against a process-global
  interning table with identity semantics; pickling a term into another
  process would silently break ``__eq__ is is``.  Obligations sharing a
  ``group`` are chained so they execute serially in submission order
  (per-subprogram prover state keeps its serial discipline); distinct
  groups and ungrouped obligations fan out freely.

Per-obligation timeout (parallel mode): the collector waits up to
``timeout_seconds`` for each result and then marks the obligation
``timed_out`` and moves on; the worker thread is abandoned (threads cannot
be preempted) and its eventual result is discarded.  In serial mode the
thunk's own internal timeouts (e.g. ``AutoProver.timeout_seconds``) bound
the work, as they always did.

Transient failures are retried up to ``retries`` times; a thunk that still
raises either propagates (``on_error='raise'``, the default -- matching
the pre-scheduler behaviour) or is recorded as an ``errored`` outcome
(``on_error='record'``).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor, TimeoutError as _FutureTimeout
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from . import events as ev
from .cache import ResultCache, default_cache
from .obligation import Obligation
from .telemetry import Telemetry, default_telemetry

__all__ = ["ObligationOutcome", "ObligationScheduler"]

OK = "ok"
CACHED = "cached"
TIMED_OUT = "timed_out"
ERRORED = "errored"
SKIPPED = "skipped"


@dataclass
class ObligationOutcome:
    obligation: Obligation
    status: str                  # ok | cached | timed_out | errored | skipped
    value: object = None
    wall_seconds: float = 0.0
    attempts: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status in (OK, CACHED)


class _Abandoned(Exception):
    """Internal: the collector stopped waiting for this obligation."""


class ObligationScheduler:
    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 telemetry: Optional[Telemetry] = None,
                 timeout_seconds: Optional[float] = None,
                 retries: int = 0,
                 on_error: str = "raise"):
        self.jobs = max(1, jobs if jobs is not None else
                        (os.cpu_count() or 1))
        #: ``cache=None`` selects the process default; ``cache=False``
        #: disables caching outright.
        if cache is None:
            self.cache = default_cache()
        elif cache is False:
            self.cache = None
        else:
            self.cache = cache
        self.telemetry = telemetry if telemetry is not None \
            else default_telemetry()
        self.timeout_seconds = timeout_seconds
        self.retries = retries
        if on_error not in ("raise", "record"):
            raise ValueError(f"on_error must be 'raise' or 'record', "
                             f"got {on_error!r}")
        self.on_error = on_error

    # -- public -------------------------------------------------------------

    def run(self, obligations: Sequence[Obligation],
            stop_on: Optional[Callable[[ObligationOutcome], bool]] = None
            ) -> List[ObligationOutcome]:
        """Execute all obligations; results in input order.

        ``stop_on(outcome)`` returning True stops scheduling further
        obligations (remaining ones come back ``skipped``) -- the serial
        path's early exit, e.g. a differential check stopping at the first
        counterexample.
        """
        obligations = list(obligations)
        if self.jobs == 1 or len(obligations) <= 1:
            return self._run_serial(obligations, stop_on)
        return self._run_parallel(obligations, stop_on)

    # -- serial path --------------------------------------------------------

    def _run_serial(self, obligations, stop_on) -> List[ObligationOutcome]:
        outcomes: List[ObligationOutcome] = []
        stopped = False
        for ob in obligations:
            if stopped:
                outcomes.append(self._skip(ob))
                continue
            self.telemetry.record(ev.SUBMITTED, ob.kind, ob.label)
            outcome = self._execute(ob)
            if outcome.status == ERRORED and self.on_error == "raise":
                raise outcome._exception    # type: ignore[attr-defined]
            outcomes.append(outcome)
            if stop_on is not None and stop_on(outcome):
                stopped = True
        return outcomes

    # -- parallel path ------------------------------------------------------

    def _run_parallel(self, obligations, stop_on) -> List[ObligationOutcome]:
        # Predecessor chain per group: obligation i waits until the previous
        # obligation of its group has finished.  Submission order is FIFO,
        # so a predecessor is always dequeued before its successor and the
        # wait chain always terminates at a running task -- no deadlock.
        done_events: List[threading.Event] = \
            [threading.Event() for _ in obligations]
        predecessor: List[Optional[int]] = [None] * len(obligations)
        last_in_group: Dict[str, int] = {}
        for i, ob in enumerate(obligations):
            if ob.group is not None:
                if ob.group in last_in_group:
                    predecessor[i] = last_in_group[ob.group]
                last_in_group[ob.group] = i

        for ob in obligations:
            self.telemetry.record(ev.SUBMITTED, ob.kind, ob.label)

        def worker(index: int) -> ObligationOutcome:
            try:
                pred = predecessor[index]
                if pred is not None:
                    done_events[pred].wait()
                return self._execute(obligations[index])
            finally:
                done_events[index].set()

        outcomes: List[Optional[ObligationOutcome]] = [None] * len(obligations)
        stopped = False
        abandoned = False
        pool = ThreadPoolExecutor(max_workers=self.jobs)
        try:
            futures = [pool.submit(worker, i)
                       for i in range(len(obligations))]
            for i, future in enumerate(futures):
                if stopped:
                    if future.cancel():
                        done_events[i].set()
                        outcomes[i] = self._skip(obligations[i])
                        continue
                try:
                    outcome = future.result(timeout=self.timeout_seconds)
                except _FutureTimeout:
                    # The worker cannot be preempted; abandon it (it will
                    # finish in the background and its result is discarded).
                    abandoned = True
                    outcome = ObligationOutcome(
                        obligation=obligations[i], status=TIMED_OUT,
                        wall_seconds=self.timeout_seconds or 0.0,
                        error=f"no result within {self.timeout_seconds}s")
                    self.telemetry.record(
                        ev.TIMED_OUT, obligations[i].kind,
                        obligations[i].label, wall=outcome.wall_seconds)
                outcomes[i] = outcome
                if outcome.status == ERRORED and self.on_error == "raise":
                    for later in futures[i + 1:]:
                        later.cancel()
                    for event in done_events:
                        event.set()   # release any chained waiters
                    raise outcome._exception  # type: ignore[attr-defined]
                if stop_on is not None and not stopped \
                        and stop_on(outcome):
                    stopped = True
        finally:
            # wait=False so an abandoned (timed-out) worker does not block
            # the collector; completed pools shut down immediately anyway.
            pool.shutdown(wait=not abandoned)
        return outcomes  # type: ignore[return-value]

    # -- one obligation -----------------------------------------------------

    def _skip(self, ob: Obligation) -> ObligationOutcome:
        self.telemetry.record(ev.SKIPPED, ob.kind, ob.label)
        return ObligationOutcome(obligation=ob, status=SKIPPED)

    def _execute(self, ob: Obligation) -> ObligationOutcome:
        keyed = ob.cache_key is not None and self.cache is not None
        if keyed:
            started = time.perf_counter()
            hit, value = self.cache.get(ob.cache_key, decode=ob.decode)
            if hit:
                wall = time.perf_counter() - started
                self.telemetry.record(ev.CACHED, ob.kind, ob.label,
                                      wall=wall)
                return ObligationOutcome(obligation=ob, status=CACHED,
                                         value=value, wall_seconds=wall)
        self.telemetry.record(ev.STARTED, ob.kind, ob.label)
        attempts = 0
        started = time.perf_counter()
        while True:
            attempts += 1
            try:
                value = ob.thunk()
                break
            except Exception as exc:   # noqa: BLE001 - boundary by design
                if attempts <= self.retries:
                    self.telemetry.record(ev.RETRIED, ob.kind, ob.label,
                                          detail=str(exc))
                    continue
                wall = time.perf_counter() - started
                self.telemetry.record(ev.ERRORED, ob.kind, ob.label,
                                      wall=wall, detail=str(exc))
                outcome = ObligationOutcome(
                    obligation=ob, status=ERRORED, wall_seconds=wall,
                    attempts=attempts, error=f"{type(exc).__name__}: {exc}")
                outcome._exception = exc   # type: ignore[attr-defined]
                return outcome
        wall = time.perf_counter() - started
        self.telemetry.record(ev.FINISHED, ob.kind, ob.label, wall=wall,
                              detail="keyed" if keyed else "")
        if keyed:
            self.cache.put(ob.cache_key, value, encode=ob.encode)
        return ObligationOutcome(obligation=ob, status=OK, value=value,
                                 wall_seconds=wall, attempts=attempts)
