"""The work-queue scheduler for proof obligations.

``ObligationScheduler.run`` takes a list of :class:`Obligation` and
returns one :class:`ObligationOutcome` per obligation, **in input order**
regardless of completion order.  Four execution backends:

* ``backend='serial'`` (or ``jobs == 1``) -- the guaranteed serial
  fallback: obligations run inline, one after another, on the calling
  thread.  This path performs exactly the work the pre-scheduler code
  ran, in the same order, so results are bit-identical and tier-1
  determinism is preserved.
* ``backend='thread'`` -- a ``concurrent.futures.ThreadPoolExecutor``.
  Cheap to spin up and shares the parent's interned terms directly, but
  GIL-bound for pure-Python proving: extra threads only help where
  discharge time is spent outside the interpreter loop.
* ``backend='process'`` -- a ``concurrent.futures.ProcessPoolExecutor``.
  True multi-core proving for the embarrassingly parallel obligation
  batches of the three proof legs.  The parent ships each obligation's
  declarative ``payload`` (:mod:`repro.exec.payload`); terms inside it
  cross the boundary via the structural wire format
  (:mod:`repro.logic.wire`), which re-interns them worker-side so
  hash-consing identity survives.  Obligations without a payload run
  inline on the parent.
* ``backend='remote'`` -- a proof farm (:mod:`repro.exec.remote`):
  obligations are *leased* to worker processes on other hosts over
  sockets, shipping the same payloads via the same wire format as the
  process backend (pickled term DAGs re-interned worker-side).  A shared
  networked cache tier lets any worker read this scheduler's
  content-addressed cache before computing, a lost connection blames
  exactly that worker's leases (re-run solo, quarantine after
  ``QUARANTINE_AFTER`` blames, flapping hosts rejected), and the
  degradation chain extends to ``remote→process→thread→serial``.
  See :meth:`ObligationScheduler._run_remote` and DESIGN.md §16.

Obligations sharing a ``group`` are chained so they execute serially in
submission order on every backend (per-subprogram prover state keeps its
serial discipline); distinct groups and ungrouped obligations fan out
freely.  The cache and telemetry always live in the parent: workers
return (wire-encoded) results plus timing, and the parent records events
and populates the cache, so both behave identically across backends.

Per-obligation timeout: the thread backend can only *abandon* an overrun
worker thread (threads cannot be preempted) -- the collector marks the
obligation ``timed_out`` and the thread's eventual result is discarded.
The process backend upgrades this to a hard bound: the worker installs a
``SIGALRM`` interval timer around the discharge, so an overrunning
obligation is preempted mid-computation, reported ``timed_out``, and the
worker process stays healthy for the next obligation.  (A stuck worker
that fails to honor the alarm is abandoned by a parent-side fallback
deadline, and the abandonment is recorded in telemetry at shutdown.)  In
serial mode the thunk's own internal timeouts
(e.g. ``AutoProver.timeout_seconds``) bound the work, as they always did.

Fault tolerance (DESIGN.md §12).  Transient failures are retried under a
:class:`~repro.exec.retry.RetryPolicy` -- exponential backoff with
deterministic jitter, so the delay schedule of an obligation is identical
on every backend and host; a thunk that still raises either propagates
(``on_error='raise'``, the default -- matching the pre-scheduler
behaviour) or is recorded as an ``errored`` outcome
(``on_error='record'``).  The process backend additionally survives
*worker death*: when the pool breaks (``BrokenProcessPool``), every
in-flight obligation is blamed once and requeued for a solo re-run on a
freshly respawned pool -- solo, so the second run assigns guilt
precisely -- and an obligation that kills a worker twice is quarantined
with a ``crashed`` outcome instead of aborting the run.  When the
backend itself proves unusable (the pool cannot be respawned, worker
processes die before executing anything, thread creation fails), the
scheduler either raises :class:`BackendUnusableError`
(``on_backend_failure='raise'``) or degrades along the
process→thread→serial chain (``on_backend_failure='degrade'``),
recording a ``degraded`` telemetry event and finishing the remaining
obligations on the fallback backend.
"""

from __future__ import annotations

import io
import os
import pickle
import signal
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor,
    ThreadPoolExecutor, TimeoutError as _FutureTimeout, wait as _fut_wait,
)
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from . import events as ev
from .cache import ResultCache, default_cache
from .obligation import Obligation
from .payload import make_batch
from .retry import RetryPolicy
from .telemetry import Telemetry, default_telemetry

__all__ = ["ObligationOutcome", "ObligationScheduler", "BACKENDS",
           "BackendUnusableError"]

#: Recognized execution backends, in increasing order of isolation.
BACKENDS = ("serial", "thread", "process", "remote")

#: Fallback taken by ``on_backend_failure='degrade'`` when a backend is
#: unusable; ``serial`` has no fallback -- it cannot fail to exist.
DEGRADE_CHAIN = {"remote": "process", "process": "thread",
                 "thread": "serial"}

OK = "ok"
CACHED = "cached"
TIMED_OUT = "timed_out"
ERRORED = "errored"
SKIPPED = "skipped"
CRASHED = "crashed"

#: Kill-a-worker blames after which an obligation is quarantined.
QUARANTINE_AFTER = 2


@dataclass
class ObligationOutcome:
    obligation: Obligation
    status: str          # ok | cached | timed_out | errored | skipped | crashed
    value: object = None
    wall_seconds: float = 0.0
    attempts: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status in (OK, CACHED)


class BackendUnusableError(RuntimeError):
    """The selected execution backend cannot make progress at all --
    distinct from any single obligation failing.  Raised to the caller
    under ``on_backend_failure='raise'``; consumed by the degradation
    chain under ``on_backend_failure='degrade'``."""

    def __init__(self, backend: str, reason: str):
        super().__init__(f"backend {backend!r} unusable: {reason}")
        self.backend = backend
        self.reason = reason


class _Abandoned(Exception):
    """Internal: the collector stopped waiting for this obligation."""


class _HardTimeout(BaseException):
    """Worker-side: the per-obligation SIGALRM fired.  A BaseException so
    no ``except Exception`` inside a discharge can swallow it."""


def _process_worker(index: int, payload, retry_policy: RetryPolicy,
                    timeout_seconds: Optional[float], token: str) -> tuple:
    """Execute one obligation payload in a pool worker.

    Returns ``(index, status, wire_value, wall, attempts, retry_errors,
    exception-or-None)`` -- always plain picklable data; exceptions are
    only shipped as objects when they themselves pickle.  ``status`` is
    ``'ok'``, ``'timed_out'`` (the hard per-obligation deadline fired) or
    ``'errored'``.  The timeout budget covers the whole obligation,
    retries *and their backoff sleeps* included, matching the thread
    backend's per-obligation wait; ``token`` feeds the deterministic
    jitter so worker-side delays equal parent-side ones.
    """
    import pickle

    started = time.perf_counter()
    attempts = 0
    retry_errors: List[str] = []
    alarmed = False
    if timeout_seconds and hasattr(signal, "SIGALRM"):
        def _on_alarm(signum, frame):
            raise _HardTimeout()

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout_seconds)
        alarmed = True
    try:
        while True:
            attempts += 1
            try:
                value = payload.run()
                wire = payload.encode_result(value)
                return (index, "ok", wire,
                        time.perf_counter() - started, attempts,
                        tuple(retry_errors), None)
            except _HardTimeout:
                return (index, "timed_out", None,
                        time.perf_counter() - started, attempts,
                        tuple(retry_errors), None)
            except Exception as exc:   # noqa: BLE001 - boundary by design
                if attempts <= retry_policy.retries:
                    retry_errors.append(str(exc))
                    pause = retry_policy.delay(attempts, token)
                    if pause:
                        time.sleep(pause)
                    continue
                try:
                    pickle.dumps(exc)
                    shipped = exc
                except Exception:   # noqa: BLE001 - anything may fail to pickle
                    shipped = None
                return (index, "errored",
                        f"{type(exc).__name__}: {exc}",
                        time.perf_counter() - started, attempts,
                        tuple(retry_errors), shipped)
    finally:
        if alarmed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


def _batch_worker(batch, retry_policy: RetryPolicy,
                  timeout_seconds: Optional[float]) -> tuple:
    """Execute one :class:`~repro.exec.payload.BatchPayload` in a pool
    worker: absorb the hoisted warm normalization batches exactly once,
    then run each entry through the same per-item machinery a solo
    dispatch uses (:func:`_process_worker` installs and clears its own
    alarm per entry, so per-item timeout, retry, and jitter accounting
    are identical to unbatched dispatch).  Returns one standard result
    tuple per entry, in entry order."""
    from .payload import _absorb_warm
    for warm_key, warm_norms in batch.warm:
        _absorb_warm(warm_key, warm_norms)
    return tuple(
        _process_worker(index, payload, retry_policy, timeout_seconds,
                        token)
        for index, payload, token, _key in batch.entries)


class _BatchSizer:
    """Marginal-size meter for one forming batch (DESIGN.md §18).

    Measures each candidate payload's pickled size *in the context of
    the batch being formed*: one shared pickler keeps its memo across
    items, so an object an admitted sibling already ships (a common
    package AST, a reference theory) costs a back-reference, not a
    second serialization -- exactly the sharing the real batch blob
    gets.  The first item of a batch therefore reports its full solo
    size while followers report their true marginal cost, which is what
    the admission rule compares against the per-item byte budget.

    ``measure`` returns None for a payload that cannot be pickled (the
    item is shipped solo so the submission path's loud failure behaviour
    is preserved) and resets the meter, whose memo the failed dump may
    have corrupted.
    """

    __slots__ = ("_buf", "_pickler")

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self._buf = io.BytesIO()
        self._pickler = pickle.Pickler(self._buf,
                                       protocol=pickle.HIGHEST_PROTOCOL)

    @property
    def total(self) -> int:
        return self._buf.tell()

    def measure(self, payload) -> Optional[int]:
        before = self._buf.tell()
        try:
            self._pickler.dump(payload)
        except Exception:   # noqa: BLE001 - unpicklable payloads ship solo
            self.reset()
            return None
        return self._buf.tell() - before


class ObligationScheduler:
    #: (Re)spawn attempts granted to the process pool before the backend
    #: is declared unusable.
    POOL_SPAWN_ATTEMPTS = 2
    #: Consecutive pool breaks with *nothing in flight* (workers dying
    #: before executing anything) after which the backend is unusable.
    BARREN_CRASH_LIMIT = 2
    #: Parent-side slack (seconds) added on top of the per-obligation
    #: timeout before an unresponsive worker is abandoned.
    TIMEOUT_FALLBACK_SLACK = 5.0
    #: Seconds the remote backend waits for at least one worker to join
    #: (at start-up, and again after losing every worker mid-run) before
    #: declaring the backend unusable.  Tests shrink this.
    REMOTE_WORKER_GRACE = 10.0
    #: Leases a single remote worker may hold at once.  2 keeps one
    #: obligation queued behind the one executing, so the worker never
    #: idles waiting on the coordinator's dispatch latency.
    REMOTE_PER_WORKER_INFLIGHT = 2

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 cache_memory_entries: Optional[int] = None,
                 telemetry: Optional[Telemetry] = None,
                 timeout_seconds: Optional[float] = None,
                 retries: Union[int, RetryPolicy] = 0,
                 on_error: str = "raise",
                 backend: str = "thread",
                 on_backend_failure: str = "raise",
                 remote_workers: Sequence[str] = (),
                 remote_listen: Optional[str] = None,
                 lease_timeout_seconds: Optional[float] = None,
                 remote_shared_cache: bool = True,
                 batch_size: int = 16,
                 batch_bytes_cap: int = 4 * 1024 * 1024):
        self.jobs = max(1, jobs if jobs is not None else
                        (os.cpu_count() or 1))
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, "
                             f"got {backend!r}")
        self.backend = backend
        #: ``cache=None`` selects the process default; ``cache=False``
        #: disables caching outright.
        if cache is None:
            self.cache = default_cache()
        elif cache is False:
            self.cache = None
        else:
            self.cache = cache
        if self.cache is not None and cache_memory_entries is not None:
            self.cache.set_memory_limit(cache_memory_entries)
        self.telemetry = telemetry if telemetry is not None \
            else default_telemetry()
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise ValueError(f"timeout_seconds must be positive, "
                             f"got {timeout_seconds!r}")
        self.timeout_seconds = timeout_seconds
        self.retry_policy = RetryPolicy.coerce(retries)
        #: Plain retry count, kept for backward compatibility with code
        #: that read the pre-policy int attribute.
        self.retries = self.retry_policy.retries
        if on_error not in ("raise", "record"):
            raise ValueError(f"on_error must be 'raise' or 'record', "
                             f"got {on_error!r}")
        self.on_error = on_error
        if on_backend_failure not in ("raise", "degrade"):
            raise ValueError(f"on_backend_failure must be 'raise' or "
                             f"'degrade', got {on_backend_failure!r}")
        self.on_backend_failure = on_backend_failure
        self.remote_workers = tuple(remote_workers)
        self.remote_listen = remote_listen
        if lease_timeout_seconds is not None and lease_timeout_seconds <= 0:
            raise ValueError(f"lease_timeout_seconds must be positive, "
                             f"got {lease_timeout_seconds!r}")
        self.lease_timeout_seconds = lease_timeout_seconds
        self.remote_shared_cache = remote_shared_cache
        if isinstance(batch_size, bool) or not isinstance(batch_size, int) \
                or batch_size < 1:
            raise ValueError(f"batch_size must be an integer >= 1, "
                             f"got {batch_size!r}")
        self.batch_size = batch_size
        if isinstance(batch_bytes_cap, bool) \
                or not isinstance(batch_bytes_cap, int) \
                or batch_bytes_cap <= 0:
            raise ValueError(f"batch_bytes_cap must be a positive integer "
                             f"(bytes), got {batch_bytes_cap!r}")
        self.batch_bytes_cap = batch_bytes_cap
        if backend == "remote" and not self.remote_workers \
                and self.remote_listen is None:
            raise ValueError(
                "backend='remote' needs a worker source: remote_workers="
                "('host:port', ...) to dial out, or remote_listen="
                "'host:port' to accept dial-ins")
        #: The coordinator's actual bind address ("host:port"), once a
        #: remote run with ``remote_listen`` has started (port 0 resolves
        #: to the ephemeral port).  Workers dial this.
        self.remote_bound_address: Optional[str] = None

    # -- public -------------------------------------------------------------

    def run(self, obligations: Sequence[Obligation],
            stop_on: Optional[Callable[[ObligationOutcome], bool]] = None
            ) -> List[ObligationOutcome]:
        """Execute all obligations; results in input order.

        ``stop_on(outcome)`` returning True stops scheduling further
        obligations (remaining ones come back ``skipped``) -- the serial
        path's early exit, e.g. a differential check stopping at the first
        counterexample.

        A pass that finds its backend unusable raises
        :class:`BackendUnusableError` (``on_backend_failure='raise'``) or
        falls back along ``process → thread → serial``
        (``on_backend_failure='degrade'``): outcomes already reached stay
        final, and only the unfinished obligations re-run on the fallback
        backend.
        """
        obligations = list(obligations)
        outcomes: List[Optional[ObligationOutcome]] = [None] * len(obligations)
        for ob in obligations:
            self.telemetry.record(ev.SUBMITTED, ob.kind, ob.label)
        backend = self.backend
        # The remote backend is exempt from the small-batch serial
        # shortcut: even one obligation ships to a worker host (that is
        # the point of a farm -- the parent may be a thin coordinator).
        if backend in ("thread", "process") \
                and (self.jobs == 1 or len(obligations) <= 1):
            backend = "serial"
        while True:
            try:
                if backend == "serial":
                    self._run_serial(obligations, stop_on, outcomes)
                elif backend == "thread":
                    self._run_parallel(obligations, stop_on, outcomes)
                elif backend == "process":
                    self._run_process(obligations, stop_on, outcomes)
                else:
                    self._run_remote(obligations, stop_on, outcomes)
                break
            except BackendUnusableError as exc:
                fallback = DEGRADE_CHAIN.get(backend)
                if self.on_backend_failure != "degrade" or fallback is None:
                    raise
                self.telemetry.record(ev.DEGRADED, "exec",
                                      f"{backend}->{fallback}",
                                      detail=exc.reason)
                backend = fallback
        for i, ob in enumerate(obligations):
            if outcomes[i] is None:
                outcomes[i] = self._skip(ob)
        return outcomes  # type: ignore[return-value]

    # -- serial path --------------------------------------------------------

    def _run_serial(self, obligations, stop_on, outcomes) -> None:
        for i, ob in enumerate(obligations):
            if outcomes[i] is not None:
                continue
            outcome = self._execute(ob)
            if outcome.status == ERRORED and self.on_error == "raise":
                raise outcome._exception    # type: ignore[attr-defined]
            outcomes[i] = outcome
            if stop_on is not None and stop_on(outcome):
                return    # the unfilled tail is skipped by run()

    # -- parallel path ------------------------------------------------------

    def _run_parallel(self, obligations, stop_on, outcomes) -> None:
        # Predecessor chain per group: obligation i waits until the previous
        # unfinished obligation of its group has finished.  Submission order
        # is FIFO, so a predecessor is always dequeued before its successor
        # and the wait chain always terminates at a running task -- no
        # deadlock.
        remaining = [i for i in range(len(obligations))
                     if outcomes[i] is None]
        done_events: Dict[int, threading.Event] = \
            {i: threading.Event() for i in remaining}
        predecessor: Dict[int, Optional[int]] = {i: None for i in remaining}
        last_in_group: Dict[str, int] = {}
        for i in remaining:
            group = obligations[i].group
            if group is not None:
                if group in last_in_group:
                    predecessor[i] = last_in_group[group]
                last_in_group[group] = i

        def worker(index: int) -> ObligationOutcome:
            try:
                pred = predecessor[index]
                if pred is not None:
                    done_events[pred].wait()
                return self._execute(obligations[index])
            finally:
                done_events[index].set()

        def run_batch(indices: tuple) -> Dict[int, ObligationOutcome]:
            """One future covering several obligations, run in index
            order (DESIGN.md §18).  There is no wire here, so thread
            batching only amortizes future/collector machinery for
            micro-obligation swarms; every item still runs through
            ``worker`` and sets its own done event, keeping group
            chaining intact.  The FIFO no-deadlock argument is the solo
            one: a predecessor is either earlier in this bundle
            (already run) or in an earlier-submitted future."""
            return {i: worker(i) for i in indices}

        try:
            pool = ThreadPoolExecutor(max_workers=self.jobs)
        except Exception as exc:   # noqa: BLE001 - backend boundary
            raise BackendUnusableError(
                "thread", f"cannot start thread pool: {exc}")
        futures: Dict[int, object] = {}
        unusable: Optional[BaseException] = None
        stopped = False
        abandoned = False
        # Batch only without a per-obligation timeout: the collector's
        # per-future wait is the timeout instrument on this backend and
        # it cannot see into a bundle.
        batch = self.batch_size if self.timeout_seconds is None else 1
        try:
            try:
                if batch <= 1:
                    for i in remaining:
                        futures[i] = pool.submit(worker, i)
                else:
                    # Chunk depth adapts to the burst so the pool is
                    # never starved by one deep bundle.
                    chunk = min(batch,
                                max(1, -(-len(remaining) // self.jobs)))
                    for at in range(0, len(remaining), chunk):
                        span = remaining[at:at + chunk]
                        if len(span) == 1:
                            futures[span[0]] = pool.submit(worker, span[0])
                        else:
                            shared = pool.submit(run_batch, tuple(span))
                            for i in span:
                                futures[i] = shared
            except RuntimeError as exc:
                # e.g. "can't start new thread": collect what was submitted
                # (predecessors were submitted first, so group chains among
                # the submitted prefix still resolve), then degrade.
                unusable = exc
            for i, future in futures.items():
                if stopped:
                    if future.cancel():
                        done_events[i].set()
                        outcomes[i] = self._skip(obligations[i])
                        continue
                try:
                    result = future.result(timeout=self.timeout_seconds)
                    outcome = result[i] if isinstance(result, dict) \
                        else result
                except _FutureTimeout:
                    # The worker cannot be preempted; abandon it (it will
                    # finish in the background and its result is discarded).
                    abandoned = True
                    outcome = ObligationOutcome(
                        obligation=obligations[i], status=TIMED_OUT,
                        wall_seconds=self.timeout_seconds or 0.0,
                        error=f"no result within {self.timeout_seconds}s")
                    self.telemetry.record(
                        ev.TIMED_OUT, obligations[i].kind,
                        obligations[i].label, wall=outcome.wall_seconds)
                outcomes[i] = outcome
                if outcome.status == ERRORED and self.on_error == "raise":
                    for later in futures.values():
                        later.cancel()
                    for event in done_events.values():
                        event.set()   # release any chained waiters
                    raise outcome._exception  # type: ignore[attr-defined]
                if stop_on is not None and not stopped \
                        and stop_on(outcome):
                    stopped = True
        finally:
            if abandoned:
                # Satellite of the failure taxonomy: an unresponsive
                # worker left behind is telemetry, not a silent drop.
                self.telemetry.record(
                    ev.WORKER_ABANDONED, "exec", "backend:thread",
                    detail="unresponsive worker thread abandoned at "
                           "pool shutdown")
            # wait=False so an abandoned (timed-out) worker does not block
            # the collector; completed pools shut down immediately anyway.
            pool.shutdown(wait=not abandoned)
        if unusable is not None:
            raise BackendUnusableError(
                "thread", f"thread pool stopped accepting work: {unusable}")

    # -- process path -------------------------------------------------------

    def _spawn_pool(self) -> ProcessPoolExecutor:
        last: Optional[BaseException] = None
        for _ in range(self.POOL_SPAWN_ATTEMPTS):
            try:
                return ProcessPoolExecutor(max_workers=self.jobs)
            except Exception as exc:   # noqa: BLE001 - backend boundary
                last = exc
        raise BackendUnusableError(
            "process", f"cannot (re)spawn worker pool: {last}")

    def _run_process(self, obligations, stop_on, outcomes) -> None:
        """Dispatcher over a ``ProcessPoolExecutor``.

        Group chaining is enforced dispatcher-side: an obligation is only
        submitted once its group predecessor has a terminal outcome, so
        same-group work stays serial-in-order while distinct groups fan
        out across worker processes.  Cache lookups happen in the parent
        immediately before dispatch (a hit never ships to a worker) and
        results are cached in the parent on receipt, so caching semantics
        match the serial and thread backends exactly.

        The hard per-obligation timeout is enforced worker-side by
        ``SIGALRM`` (see :func:`_process_worker`); the parent keeps a
        slack fallback deadline per future so even a worker that fails to
        honor the alarm (or dies) cannot wedge the collector.

        Crash recovery: a dead worker breaks the whole pool, so every
        in-flight obligation is blamed once, the pool is respawned, and
        the blamed obligations re-run *solo* (one in flight at a time)
        before normal fan-out resumes.  Solo execution makes the second
        verdict precise: an obligation that crashes while alone is the
        killer, reaches ``QUARANTINE_AFTER`` blames, and is quarantined
        with a ``crashed`` outcome; innocent bystanders complete their
        solo run and are never blamed again (a finalized obligation is
        never resubmitted).  Total crashes are therefore bounded by
        ``QUARANTINE_AFTER * len(obligations)`` -- the run always
        terminates.

        Batched dispatch (DESIGN.md §18): when ``batch_size > 1``, small
        payloads drained from the ready queue are bundled into
        :class:`~repro.exec.payload.BatchPayload` units so one pool
        round trip (one pickle of the shared ASTs, one queue slot)
        covers many micro-obligations.  Admission is by *marginal*
        pickled size under ``batch_bytes_cap`` (:class:`_BatchSizer`),
        so large VCs keep their own dispatch unit.  Per-item timeout and
        retry accounting run worker-side exactly as for solo dispatch;
        a broken batch blames each member once and re-runs them solo
        under the unchanged quarantine discipline, so fault semantics
        are those of PR-4/PR-8.  Crash-blamed suspects always ship solo
        -- a batch is never a blame unit of more than one verdict.
        """
        n = len(obligations)
        remaining = [i for i in range(n) if outcomes[i] is None]
        successors: Dict[int, List[int]] = {}
        predecessor: Dict[int, Optional[int]] = {i: None for i in remaining}
        last_in_group: Dict[str, int] = {}
        for i in remaining:
            group = obligations[i].group
            if group is not None:
                if group in last_in_group:
                    predecessor[i] = last_in_group[group]
                    successors.setdefault(last_in_group[group],
                                          []).append(i)
                last_in_group[group] = i

        # A worker that ignores its alarm (or a timeout with no SIGALRM
        # support) is abandoned once this much slack has passed.
        fallback = None
        if self.timeout_seconds is not None:
            fallback = self.timeout_seconds * 1.5 + self.TIMEOUT_FALLBACK_SLACK

        ready = deque(i for i in remaining if predecessor[i] is None)
        suspects: deque = deque()            # crash-blamed, re-run solo
        crash_blame: Dict[int, int] = {}
        in_flight: Dict[object, tuple] = {}  # Future -> member indices
        deadlines: Dict[object, float] = {}  # Future -> abandon time
        sent_at: Dict[object, float] = {}    # Future -> dispatch time
        finished = 0
        target = len(remaining)
        stopped = False
        abandoned = False
        barren_crashes = 0
        raise_exc = None

        def finalize(index: int, outcome: ObligationOutcome):
            nonlocal finished, stopped, raise_exc
            outcomes[index] = outcome
            finished += 1
            ready.extend(successors.get(index, ()))
            if outcome.status == ERRORED and self.on_error == "raise" \
                    and raise_exc is None:
                raise_exc = getattr(
                    outcome, "_exception",
                    RuntimeError(outcome.error or "obligation errored"))
            if stop_on is not None and not stopped and stop_on(outcome):
                stopped = True

        pool = self._spawn_pool()

        def settle_local(index: int) -> bool:
            """Cache hit or payloadless inline execution: True when the
            obligation finalized without shipping to a worker."""
            ob = obligations[index]
            keyed = ob.cache_key is not None and self.cache is not None
            if keyed:
                t0 = time.perf_counter()
                hit, value = self.cache.get(ob.cache_key, decode=ob.decode)
                if hit:
                    wall = time.perf_counter() - t0
                    self.telemetry.record(ev.CACHED, ob.kind, ob.label,
                                          wall=wall)
                    finalize(index, ObligationOutcome(
                        obligation=ob, status=CACHED, value=value,
                        wall_seconds=wall))
                    return True
            if ob.payload is None:
                # No declarative spec: run on the parent (serial
                # semantics; _execute records its own telemetry).
                finalize(index, self._execute(ob))
                return True
            return False

        def ship_solo(index: int) -> bool:
            """Ship one obligation as its own dispatch unit.  Returns
            False when the pool broke at submission time (the obligation
            never ran; the caller requeues it unblamed)."""
            ob = obligations[index]
            self.telemetry.record(ev.STARTED, ob.kind, ob.label)
            try:
                future = pool.submit(_process_worker, index, ob.payload,
                                     self.retry_policy,
                                     self.timeout_seconds, ob.label)
            except BrokenExecutor:
                return False
            in_flight[future] = (index,)
            sent_at[future] = time.perf_counter()
            if fallback is not None:
                deadlines[future] = time.perf_counter() + fallback
            return True

        def ship_batch(indices: List[int]) -> bool:
            """Ship several small obligations as one
            :class:`BatchPayload` dispatch unit (a singleton degenerates
            to a solo dispatch, keeping batch futures >= 2 members).
            The parent fallback deadline scales with the member count:
            worker-side SIGALRM bounds each item individually, so the
            batch's worst legitimate case is the sum of the per-item
            budgets."""
            if len(indices) == 1:
                return ship_solo(indices[0])
            batch = make_batch([
                (i, obligations[i].payload, obligations[i].label,
                 obligations[i].cache_key) for i in indices])
            for i in indices:
                ob = obligations[i]
                self.telemetry.record(ev.STARTED, ob.kind, ob.label)
            try:
                future = pool.submit(_batch_worker, batch,
                                     self.retry_policy,
                                     self.timeout_seconds)
            except BrokenExecutor:
                return False
            in_flight[future] = tuple(indices)
            sent_at[future] = time.perf_counter()
            if fallback is not None:
                deadlines[future] = time.perf_counter() \
                    + fallback * len(indices)
            return True

        def submit(index: int) -> bool:
            """Dispatch one obligation solo: cache hit, inline
            (payloadless), or its own worker shipment.  Returns False
            when the pool broke at submission time (the obligation is
            requeued, unblamed)."""
            return settle_local(index) or ship_solo(index)

        def recover(cause: BaseException):
            """Blame and requeue everything that was in flight when the
            pool broke, quarantine double-killers, respawn the pool.
            Every member of an in-flight batch is blamed once -- the
            parent cannot tell which member killed the worker -- and
            re-runs solo, where the second crash assigns guilt
            precisely; innocent batchmates complete their solo run
            unblamed thereafter."""
            nonlocal pool, barren_crashes
            if in_flight:
                barren_crashes = 0
            else:
                barren_crashes += 1
                if barren_crashes >= self.BARREN_CRASH_LIMIT:
                    raise BackendUnusableError(
                        "process",
                        f"worker pool keeps dying with nothing in flight "
                        f"({cause})")
            for future, members in list(in_flight.items()):
                for index in members:
                    ob = obligations[index]
                    blame = crash_blame.get(index, 0) + 1
                    crash_blame[index] = blame
                    self.telemetry.record(
                        ev.CRASHED, ob.kind, ob.label,
                        detail=f"worker died ({type(cause).__name__}); "
                               f"blame {blame}/{QUARANTINE_AFTER}")
                    if blame >= QUARANTINE_AFTER:
                        self.telemetry.record(
                            ev.QUARANTINED, ob.kind, ob.label,
                            detail=f"killed a worker {blame} times")
                        finalize(index, ObligationOutcome(
                            obligation=ob, status=CRASHED, attempts=blame,
                            error=f"obligation killed a worker {blame} "
                                  f"times ({cause}); quarantined"))
                    else:
                        suspects.append(index)
            in_flight.clear()
            deadlines.clear()
            sent_at.clear()
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:   # noqa: BLE001 - broken pools may misbehave
                pass
            pool = self._spawn_pool()

        try:
            while finished < target:
                # -- dispatch ------------------------------------------------
                while not stopped and raise_exc is None:
                    if suspects:
                        # Solo re-verification: nothing else may fly until
                        # each crash suspect has been re-tried alone.
                        if in_flight:
                            break
                        index = suspects.popleft()
                        if not submit(index):
                            suspects.appendleft(index)
                            recover(BrokenExecutor("pool broke at submit"))
                            continue
                        if in_flight:
                            break   # exactly one suspect in flight
                        continue    # finalized without flying (cache hit)
                    if not ready:
                        break
                    # Batched fill (DESIGN.md §18): drain the ready
                    # queue, settling cache hits and payloadless work
                    # inline, bundling small payloads into BatchPayload
                    # units, and shipping large ones solo.  ``chunk``
                    # adapts the batch depth to the burst so a wide pool
                    # is not starved by one deep batch.
                    chunk = self.batch_size
                    if chunk > 1:
                        chunk = min(chunk,
                                    max(1, -(-len(ready) // self.jobs)))
                    join_cap = max(1, self.batch_bytes_cap
                                   // self.batch_size)
                    sizer = _BatchSizer()
                    pending: List[int] = []
                    broke = False

                    def requeue(index: Optional[int] = None):
                        # Pool broke at a ship: push the unsent work
                        # back to the front of the queue, in order.
                        if index is not None:
                            ready.appendleft(index)
                        ready.extendleft(reversed(pending))
                        pending.clear()

                    while ready and not stopped and raise_exc is None:
                        index = ready.popleft()
                        if settle_local(index):
                            continue
                        if chunk <= 1:
                            if not ship_solo(index):
                                requeue(index)
                                broke = True
                                break
                            continue
                        if len(pending) >= chunk \
                                or sizer.total >= self.batch_bytes_cap:
                            if not ship_batch(pending):
                                requeue(index)
                                broke = True
                                break
                            pending = []
                            sizer.reset()
                        size = sizer.measure(obligations[index].payload)
                        if size is not None and pending \
                                and size > join_cap:
                            # Too big to join: flush, then let the item
                            # re-open a fresh batch where its measured
                            # size includes the objects its former
                            # batchmates would have shared.
                            if not ship_batch(pending):
                                requeue(index)
                                broke = True
                                break
                            pending = []
                            sizer.reset()
                            size = sizer.measure(obligations[index].payload)
                        if size is None:
                            # Unpicklable: ship solo so the submission
                            # path's loud failure is preserved.
                            if not ship_solo(index):
                                requeue(index)
                                broke = True
                                break
                            continue
                        pending.append(index)
                    if pending and not broke:
                        if not ship_batch(pending):
                            requeue()
                            broke = True
                    if broke:
                        recover(BrokenExecutor("pool broke at submit"))
                if finished >= target or raise_exc is not None:
                    break
                if not in_flight:
                    break   # stopped/blocked: the tail is skipped by run()
                # -- collect -------------------------------------------------
                wait_for = None
                if deadlines:
                    wait_for = max(0.0, min(deadlines.values())
                                   - time.perf_counter())
                done, _ = _fut_wait(set(in_flight), timeout=wait_for,
                                    return_when=FIRST_COMPLETED)
                now = time.perf_counter()
                for future in list(in_flight):
                    if future in done:
                        continue
                    if deadlines.get(future, now + 1) <= now:
                        # Fallback: the worker ignored its alarm or died
                        # silently; abandon the future like the thread
                        # backend abandons an overrun thread.  Every
                        # member of an abandoned batch times out -- the
                        # parent cannot retrieve partial results from an
                        # unresponsive worker.
                        members = in_flight.pop(future)
                        deadlines.pop(future, None)
                        sent_at.pop(future, None)
                        abandoned = True
                        for i in members:
                            ob = obligations[i]
                            self.telemetry.record(
                                ev.TIMED_OUT, ob.kind, ob.label,
                                wall=self.timeout_seconds or 0.0)
                            finalize(i, ObligationOutcome(
                                obligation=ob, status=TIMED_OUT,
                                wall_seconds=self.timeout_seconds or 0.0,
                                error=f"no result within "
                                      f"{self.timeout_seconds}s (worker "
                                      f"unresponsive)"))
                broken_cause = None
                for future in done:
                    if future not in in_flight:
                        continue   # abandoned above, or cleared by recovery
                    members = in_flight[future]
                    try:
                        raw = future.result()
                    except BrokenExecutor as exc:
                        # Worker death poisons every in-flight future; keep
                        # this one in ``in_flight`` so recover() blames and
                        # requeues it with its poisoned peers.
                        broken_cause = exc
                        continue
                    except Exception as exc:   # noqa: BLE001 - unpicklable result etc.
                        in_flight.pop(future)
                        deadlines.pop(future, None)
                        sent_at.pop(future, None)
                        for i in members:
                            ob = obligations[i]
                            self.telemetry.record(ev.ERRORED, ob.kind,
                                                  ob.label,
                                                  detail=str(exc))
                            outcome = ObligationOutcome(
                                obligation=ob, status=ERRORED,
                                error=f"{type(exc).__name__}: {exc}")
                            outcome._exception = exc   # type: ignore[attr-defined]
                            finalize(i, outcome)
                        continue
                    in_flight.pop(future)
                    deadlines.pop(future, None)
                    t_sent = sent_at.pop(future, None)
                    barren_crashes = 0
                    # A solo future carries one result tuple; a batch
                    # future carries one per entry (batches always have
                    # >= 2 members; see ship_batch).
                    results = raw if len(members) > 1 else (raw,)
                    busy = 0.0
                    for (i, status, wire, wall, attempts, retry_errors,
                         exc_obj) in results:
                        busy += wall
                        ob = obligations[i]
                        keyed = ob.cache_key is not None \
                            and self.cache is not None
                        for message in retry_errors:
                            self.telemetry.record(ev.RETRIED, ob.kind,
                                                  ob.label, detail=message)
                        if status == "ok":
                            value = ob.decode(wire) \
                                if ob.decode is not None \
                                else ob.payload.decode_result(wire)
                            self.telemetry.record(
                                ev.FINISHED, ob.kind, ob.label, wall=wall,
                                detail="keyed" if keyed else "")
                            if attempts > 1 or crash_blame.get(i):
                                self.telemetry.record(
                                    ev.RETRIED_OK, ob.kind, ob.label,
                                    detail=f"succeeded on attempt "
                                    f"{attempts}"
                                    + (", after a worker crash"
                                       if crash_blame.get(i) else ""))
                            if keyed:
                                self.cache.put(ob.cache_key, value,
                                               encode=ob.encode)
                            finalize(i, ObligationOutcome(
                                obligation=ob, status=OK, value=value,
                                wall_seconds=wall, attempts=attempts))
                        elif status == "timed_out":
                            self.telemetry.record(ev.TIMED_OUT, ob.kind,
                                                  ob.label, wall=wall)
                            finalize(i, ObligationOutcome(
                                obligation=ob, status=TIMED_OUT,
                                wall_seconds=wall, attempts=attempts,
                                error=f"hard timeout after "
                                      f"{self.timeout_seconds}s"))
                        else:
                            self.telemetry.record(ev.ERRORED, ob.kind,
                                                  ob.label, wall=wall,
                                                  detail=str(wire))
                            outcome = ObligationOutcome(
                                obligation=ob, status=ERRORED,
                                wall_seconds=wall, attempts=attempts,
                                error=str(wire))
                            outcome._exception = exc_obj \
                                if exc_obj is not None \
                                else RuntimeError(str(wire))   # type: ignore[attr-defined]
                            finalize(i, outcome)
                    if t_sent is not None:
                        # Dispatch overhead of the whole unit: round trip
                        # minus the members' execution walls (satellite
                        # telemetry; DESIGN.md §18).
                        self.telemetry.record(
                            ev.DISPATCHED, "exec",
                            f"dispatch[{len(results)}]",
                            wall=max(0.0, time.perf_counter() - t_sent
                                     - busy),
                            detail=f"items={len(results)}")
                if broken_cause is not None:
                    recover(broken_cause)
            if raise_exc is not None:
                raise raise_exc
        finally:
            if abandoned:
                self.telemetry.record(
                    ev.WORKER_ABANDONED, "exec", "backend:process",
                    detail="unresponsive worker process abandoned at "
                           "pool shutdown")
            # cancel_futures drops queued work; wait unless an abandoned
            # (unresponsive) worker would block shutdown indefinitely.
            pool.shutdown(wait=not abandoned, cancel_futures=True)

    # -- remote path --------------------------------------------------------

    def _remote_lease_timeout(self) -> Optional[float]:
        """The coordinator-side bound on one lease.  Explicit
        ``lease_timeout_seconds`` wins; otherwise it derives from the
        per-obligation timeout (a worker holds up to
        ``REMOTE_PER_WORKER_INFLIGHT`` leases, each bounded worker-side
        by SIGALRM, so the lease bound covers the worst-case queue wait
        plus slack); with neither, leases never expire -- matching the
        process backend's stance when no timeout is configured."""
        if self.lease_timeout_seconds is not None:
            return self.lease_timeout_seconds
        if self.timeout_seconds is not None:
            return (self.REMOTE_PER_WORKER_INFLIGHT
                    * self.timeout_seconds * 1.5
                    + self.TIMEOUT_FALLBACK_SLACK)
        return None

    def _run_remote(self, obligations, stop_on, outcomes) -> None:
        """Dispatcher over a farm of socket-connected worker processes
        (DESIGN.md §16).

        Mirrors :meth:`_run_process`: group chaining is enforced
        dispatcher-side, cache lookups happen in the parent immediately
        before dispatch, and results are cached in the parent on receipt
        -- so caching semantics and verdicts match the local backends
        exactly.  The differences are the failure unit and the cache
        tier: a dead *connection* (worker crash, kill -9, network drop,
        expired lease) blames exactly that worker's in-flight leases --
        other workers keep computing -- and the blamed obligations re-run
        solo (preferring a different worker) under the same
        ``QUARANTINE_AFTER`` discipline as the process backend.  A host
        that flaps (loses leases repeatedly) is quarantined by the
        coordinator: its re-registrations are rejected.  When
        ``remote_shared_cache`` is on, workers read through to this
        scheduler's content-addressed cache before computing, so any
        worker's verdict is every worker's warm hit.

        The backend is unusable (degradation chain: remote→process) when
        no worker joins within ``REMOTE_WORKER_GRACE`` seconds at
        start-up, or when every worker has been lost or quarantined
        mid-run and no replacement joins within another grace period.
        """
        from .remote.coordinator import RemoteCoordinator

        n = len(obligations)
        remaining = [i for i in range(n) if outcomes[i] is None]
        if not remaining:
            return
        successors: Dict[int, List[int]] = {}
        predecessor: Dict[int, Optional[int]] = {i: None for i in remaining}
        last_in_group: Dict[str, int] = {}
        for i in remaining:
            group = obligations[i].group
            if group is not None:
                if group in last_in_group:
                    predecessor[i] = last_in_group[group]
                    successors.setdefault(last_in_group[group],
                                          []).append(i)
                last_in_group[group] = i

        # The shared cache tier: workers ask the coordinator for a key
        # before computing; the lookup runs against this scheduler's own
        # cache, re-encoded to the obligation's wire form.
        by_key: Dict[str, Obligation] = {}
        for i in remaining:
            ob = obligations[i]
            if ob.cache_key is not None and ob.payload is not None:
                by_key.setdefault(ob.cache_key, ob)

        def cache_lookup(key):
            ob = by_key.get(key)
            if ob is None or self.cache is None:
                return None
            hit, value = self.cache.get(key, decode=ob.decode)
            if not hit:
                return None
            try:
                return ob.encode(value) if ob.encode is not None \
                    else ob.payload.encode_result(value)
            except Exception:   # noqa: BLE001 - a cache miss, not a fault
                return None

        coordinator = RemoteCoordinator(
            listen=self.remote_listen,
            dial=self.remote_workers,
            cache_lookup=(cache_lookup if self.remote_shared_cache
                          and self.cache is not None else None),
            lease_timeout=self._remote_lease_timeout(),
            per_worker=self.REMOTE_PER_WORKER_INFLIGHT)
        try:
            coordinator.start()
        except OSError as exc:
            raise BackendUnusableError(
                "remote", f"cannot start coordinator: {exc}")
        self.remote_bound_address = coordinator.bound_address

        ready = deque(i for i in remaining if predecessor[i] is None)
        suspects: deque = deque()            # lost-lease blamed, re-run solo
        crash_blame: Dict[int, int] = {}
        blamed_on: Dict[int, str] = {}       # index -> worker that lost it
        in_flight: Dict[int, str] = {}       # index -> worker name
        # Dispatch-unit bookkeeping for batched leases (DESIGN.md §18):
        # each unit is [sent_at, live members, busy seconds, item count,
        # poisoned].  A unit whose members all returned emits one
        # DISPATCHED event carrying the round trip minus execution wall;
        # a unit that lost a member (lease lost, worker dropped) is
        # poisoned and emits nothing -- its timing measures a fault, not
        # dispatch overhead.
        unit_of: Dict[int, int] = {}         # index -> dispatch unit id
        units: Dict[int, list] = {}
        unit_seq = 0
        finished = 0
        target = len(remaining)
        stopped = False
        raise_exc = None

        def finalize(index: int, outcome: ObligationOutcome):
            nonlocal finished, stopped, raise_exc
            outcomes[index] = outcome
            finished += 1
            ready.extend(successors.get(index, ()))
            if outcome.status == ERRORED and self.on_error == "raise" \
                    and raise_exc is None:
                raise_exc = getattr(
                    outcome, "_exception",
                    RuntimeError(outcome.error or "obligation errored"))
            if stop_on is not None and not stopped and stop_on(outcome):
                stopped = True

        def settle_local(index: int) -> bool:
            """Cache hit or payloadless inline execution: True when the
            obligation finalized without leasing to a worker."""
            ob = obligations[index]
            keyed = ob.cache_key is not None and self.cache is not None
            if keyed:
                t0 = time.perf_counter()
                hit, value = self.cache.get(ob.cache_key, decode=ob.decode)
                if hit:
                    wall = time.perf_counter() - t0
                    self.telemetry.record(ev.CACHED, ob.kind, ob.label,
                                          wall=wall)
                    finalize(index, ObligationOutcome(
                        obligation=ob, status=CACHED, value=value,
                        wall_seconds=wall))
                    return True
            if ob.payload is None:
                # No declarative spec: nothing to ship; run on the parent
                # (serial semantics; _execute records its own telemetry).
                finalize(index, self._execute(ob))
                return True
            return False

        def new_unit(indices: tuple) -> None:
            nonlocal unit_seq
            unit_seq += 1
            units[unit_seq] = [time.perf_counter(), len(indices), 0.0,
                               len(indices), False]
            for i in indices:
                unit_of[i] = unit_seq

        def unit_done(index: int, wall: float, lost: bool = False) -> None:
            uid = unit_of.pop(index, None)
            if uid is None:
                return
            unit = units[uid]
            unit[1] -= 1
            unit[2] += wall
            if lost:
                unit[4] = True
            if unit[1] <= 0:
                del units[uid]
                if not unit[4]:
                    self.telemetry.record(
                        ev.DISPATCHED, "exec", f"dispatch[{unit[3]}]",
                        wall=max(0.0, time.perf_counter() - unit[0]
                                 - unit[2]),
                        detail=f"items={unit[3]}")

        def lease_solo(index: int) -> bool:
            """Lease one obligation as its own dispatch unit.  Returns
            False when the farm has no open slot (the caller waits for
            results or joins)."""
            ob = obligations[index]
            avoid = {blamed_on[index]} if index in blamed_on else ()
            # ``jobs`` caps the *total* in-flight obligations across the
            # farm; work above the cap stays queued parent-side.
            if len(in_flight) >= self.jobs:
                return False
            name = coordinator.lease(
                index, ob.payload, self.retry_policy,
                self.timeout_seconds, ob.label, ob.cache_key, avoid=avoid)
            if name is None:
                return False
            self.telemetry.record(ev.STARTED, ob.kind, ob.label)
            in_flight[index] = name
            new_unit((index,))
            return True

        def lease_unit(indices: List[int]) -> bool:
            """Lease several small obligations as one BatchPayload
            dispatch unit (a singleton degenerates to a solo lease).
            A batch occupies one lease slot on its worker -- that
            amortization is the point -- but every member counts toward
            the ``jobs`` in-flight cap."""
            if len(indices) == 1:
                return lease_solo(indices[0])
            if len(in_flight) + len(indices) > self.jobs:
                return False
            batch = make_batch([
                (i, obligations[i].payload, obligations[i].label,
                 obligations[i].cache_key) for i in indices])
            avoid = {blamed_on[i] for i in indices if i in blamed_on}
            name = coordinator.lease_batch(
                [i for i in indices], batch, self.retry_policy,
                self.timeout_seconds, avoid=avoid)
            if name is None:
                return False
            for i in indices:
                ob = obligations[i]
                self.telemetry.record(ev.STARTED, ob.kind, ob.label)
                in_flight[i] = name
            new_unit(tuple(indices))
            return True

        def submit(index: int) -> bool:
            """Dispatch one obligation solo: cache hit, inline
            (payloadless), or its own lease (used for crash suspects and
            with batching off)."""
            return settle_local(index) or lease_solo(index)

        try:
            if not coordinator.wait_for_workers(
                    1, self.REMOTE_WORKER_GRACE):
                raise BackendUnusableError(
                    "remote",
                    f"no workers joined within "
                    f"{self.REMOTE_WORKER_GRACE}s")
            while finished < target:
                # -- dispatch ------------------------------------------------
                while not stopped and raise_exc is None:
                    if suspects:
                        # Solo re-verification: nothing else may fly until
                        # each blamed suspect has been re-tried alone.
                        if in_flight:
                            break
                        if not submit(suspects[0]):
                            break
                        suspects.popleft()
                        if in_flight:
                            break   # exactly one suspect in flight
                        continue    # finalized without flying (cache hit)
                    if not ready:
                        break
                    if len(in_flight) >= self.jobs:
                        break
                    # Batched fill (DESIGN.md §18), mirroring the process
                    # backend: settle cache hits and payloadless work
                    # inline, bundle small payloads into one lease,
                    # ship large ones solo.  Chunk depth adapts to the
                    # burst and the farm width.
                    chunk = self.batch_size
                    if chunk > 1:
                        width = max(1, coordinator.live_workers()
                                    * self.REMOTE_PER_WORKER_INFLIGHT)
                        chunk = min(chunk,
                                    max(1, -(-len(ready) // width)))
                    join_cap = max(1, self.batch_bytes_cap
                                   // self.batch_size)
                    sizer = _BatchSizer()
                    pending: List[int] = []
                    blocked = False

                    def requeue(index: Optional[int] = None):
                        # No open slot: push the unleased work back to
                        # the front of the queue, in order.
                        if index is not None:
                            ready.appendleft(index)
                        ready.extendleft(reversed(pending))
                        pending.clear()

                    while ready and not stopped and raise_exc is None:
                        if len(in_flight) + len(pending) >= self.jobs:
                            break
                        index = ready.popleft()
                        if settle_local(index):
                            continue
                        if chunk <= 1:
                            if not lease_solo(index):
                                requeue(index)
                                blocked = True
                                break
                            continue
                        if len(pending) >= chunk \
                                or sizer.total >= self.batch_bytes_cap:
                            if not lease_unit(pending):
                                requeue(index)
                                blocked = True
                                break
                            pending = []
                            sizer.reset()
                        size = sizer.measure(obligations[index].payload)
                        if size is not None and pending \
                                and size > join_cap:
                            if not lease_unit(pending):
                                requeue(index)
                                blocked = True
                                break
                            pending = []
                            sizer.reset()
                            size = sizer.measure(obligations[index].payload)
                        if size is None:
                            # Unpicklable: lease solo so the shipping
                            # path's loud failure is preserved.
                            if not lease_solo(index):
                                requeue(index)
                                blocked = True
                                break
                            continue
                        pending.append(index)
                    if pending and not blocked:
                        if not lease_unit(pending):
                            requeue()
                    break
                if finished >= target or raise_exc is not None:
                    break
                if not in_flight and not suspects and not ready:
                    break   # stopped: the tail is skipped by run()
                if not in_flight and coordinator.live_workers() == 0:
                    # Pending work, no workers left (all lost or
                    # quarantined): grant joiners one grace period.
                    if not coordinator.wait_for_workers(
                            1, self.REMOTE_WORKER_GRACE):
                        raise BackendUnusableError(
                            "remote",
                            "every worker was lost or quarantined and no "
                            f"replacement joined within "
                            f"{self.REMOTE_WORKER_GRACE}s")
                    continue
                # -- collect -------------------------------------------------
                event = coordinator.poll(timeout=0.25)
                if event is None:
                    continue
                if event[0] == "result":
                    _, index, result, name, served = event
                    if index not in in_flight:
                        continue   # stale: already blamed and requeued
                    del in_flight[index]
                    ob = obligations[index]
                    keyed = ob.cache_key is not None \
                        and self.cache is not None
                    (_, status, wire, wall, attempts, retry_errors,
                     exc_obj) = result
                    unit_done(index, wall)
                    for message in retry_errors:
                        self.telemetry.record(ev.RETRIED, ob.kind,
                                              ob.label, detail=message)
                    if status == "ok":
                        try:
                            value = ob.decode(wire) \
                                if ob.decode is not None \
                                else ob.payload.decode_result(wire)
                        except Exception as exc:   # noqa: BLE001 - bad wire data
                            self.telemetry.record(
                                ev.ERRORED, ob.kind, ob.label,
                                detail=f"undecodable result from "
                                       f"{name}: {exc}")
                            outcome = ObligationOutcome(
                                obligation=ob, status=ERRORED,
                                error=f"undecodable result from "
                                      f"{name}: {exc}")
                            outcome._exception = exc   # type: ignore[attr-defined]
                            finalize(index, outcome)
                            continue
                        self.telemetry.record(
                            ev.FINISHED, ob.kind, ob.label, wall=wall,
                            detail=f"worker={name} served={served}"
                            + (" keyed" if keyed else ""))
                        if attempts > 1 or crash_blame.get(index):
                            self.telemetry.record(
                                ev.RETRIED_OK, ob.kind, ob.label,
                                detail=f"succeeded on attempt {attempts}"
                                + (", after a lost worker"
                                   if crash_blame.get(index) else ""))
                        if keyed:
                            self.cache.put(ob.cache_key, value,
                                           encode=ob.encode)
                        finalize(index, ObligationOutcome(
                            obligation=ob, status=OK, value=value,
                            wall_seconds=wall, attempts=attempts))
                    elif status == "timed_out":
                        self.telemetry.record(ev.TIMED_OUT, ob.kind,
                                              ob.label, wall=wall)
                        finalize(index, ObligationOutcome(
                            obligation=ob, status=TIMED_OUT,
                            wall_seconds=wall, attempts=attempts,
                            error=f"hard timeout after "
                                  f"{self.timeout_seconds}s on {name}"))
                    else:
                        self.telemetry.record(ev.ERRORED, ob.kind,
                                              ob.label, wall=wall,
                                              detail=str(wire))
                        outcome = ObligationOutcome(
                            obligation=ob, status=ERRORED,
                            wall_seconds=wall, attempts=attempts,
                            error=str(wire))
                        outcome._exception = exc_obj \
                            if exc_obj is not None \
                            else RuntimeError(str(wire))   # type: ignore[attr-defined]
                        finalize(index, outcome)
                elif event[0] == "lost":
                    _, name, indices, reason = event
                    for index in indices:
                        if in_flight.pop(index, None) is None:
                            continue
                        unit_done(index, 0.0, lost=True)
                        ob = obligations[index]
                        blame = crash_blame.get(index, 0) + 1
                        crash_blame[index] = blame
                        blamed_on[index] = name
                        self.telemetry.record(
                            ev.CRASHED, ob.kind, ob.label,
                            detail=f"worker {name} lost ({reason}); "
                                   f"blame {blame}/{QUARANTINE_AFTER}")
                        if blame >= QUARANTINE_AFTER:
                            self.telemetry.record(
                                ev.QUARANTINED, ob.kind, ob.label,
                                detail=f"lost a worker {blame} times")
                            finalize(index, ObligationOutcome(
                                obligation=ob, status=CRASHED,
                                attempts=blame,
                                error=f"obligation lost a worker {blame} "
                                      f"times ({reason}); quarantined"))
                        else:
                            suspects.append(index)
                elif event[0] == "quarantined":
                    _, name, reason = event
                    self.telemetry.record(ev.QUARANTINED, "exec",
                                          f"worker:{name}", detail=reason)
                # "joined" events need no action: capacity is re-checked
                # at the top of the dispatch loop.
            if raise_exc is not None:
                raise raise_exc
        finally:
            coordinator.stop()

    # -- one obligation -----------------------------------------------------

    def _skip(self, ob: Obligation) -> ObligationOutcome:
        self.telemetry.record(ev.SKIPPED, ob.kind, ob.label)
        return ObligationOutcome(obligation=ob, status=SKIPPED)

    def _execute(self, ob: Obligation) -> ObligationOutcome:
        keyed = ob.cache_key is not None and self.cache is not None
        if keyed:
            started = time.perf_counter()
            hit, value = self.cache.get(ob.cache_key, decode=ob.decode)
            if hit:
                wall = time.perf_counter() - started
                self.telemetry.record(ev.CACHED, ob.kind, ob.label,
                                      wall=wall)
                return ObligationOutcome(obligation=ob, status=CACHED,
                                         value=value, wall_seconds=wall)
        self.telemetry.record(ev.STARTED, ob.kind, ob.label)
        attempts = 0
        started = time.perf_counter()
        while True:
            attempts += 1
            try:
                value = ob.thunk()
                break
            except Exception as exc:   # noqa: BLE001 - boundary by design
                if attempts <= self.retry_policy.retries:
                    self.telemetry.record(ev.RETRIED, ob.kind, ob.label,
                                          detail=str(exc))
                    pause = self.retry_policy.delay(attempts, ob.label)
                    if pause:
                        time.sleep(pause)
                    continue
                wall = time.perf_counter() - started
                self.telemetry.record(ev.ERRORED, ob.kind, ob.label,
                                      wall=wall, detail=str(exc))
                outcome = ObligationOutcome(
                    obligation=ob, status=ERRORED, wall_seconds=wall,
                    attempts=attempts, error=f"{type(exc).__name__}: {exc}")
                outcome._exception = exc   # type: ignore[attr-defined]
                return outcome
        wall = time.perf_counter() - started
        self.telemetry.record(ev.FINISHED, ob.kind, ob.label, wall=wall,
                              detail="keyed" if keyed else "")
        if attempts > 1:
            self.telemetry.record(ev.RETRIED_OK, ob.kind, ob.label,
                                  detail=f"succeeded on attempt {attempts}")
        if keyed:
            self.cache.put(ob.cache_key, value, encode=ob.encode)
        return ObligationOutcome(obligation=ob, status=OK, value=value,
                                 wall_seconds=wall, attempts=attempts)
