"""The work-queue scheduler for proof obligations.

``ObligationScheduler.run`` takes a list of :class:`Obligation` and
returns one :class:`ObligationOutcome` per obligation, **in input order**
regardless of completion order.  Three execution backends:

* ``backend='serial'`` (or ``jobs == 1``) -- the guaranteed serial
  fallback: obligations run inline, one after another, on the calling
  thread.  This path performs exactly the work the pre-scheduler code
  ran, in the same order, so results are bit-identical and tier-1
  determinism is preserved.
* ``backend='thread'`` -- a ``concurrent.futures.ThreadPoolExecutor``.
  Cheap to spin up and shares the parent's interned terms directly, but
  GIL-bound for pure-Python proving: extra threads only help where
  discharge time is spent outside the interpreter loop.
* ``backend='process'`` -- a ``concurrent.futures.ProcessPoolExecutor``.
  True multi-core proving for the embarrassingly parallel obligation
  batches of the three proof legs.  The parent ships each obligation's
  declarative ``payload`` (:mod:`repro.exec.payload`); terms inside it
  cross the boundary via the structural wire format
  (:mod:`repro.logic.wire`), which re-interns them worker-side so
  hash-consing identity survives.  Obligations without a payload run
  inline on the parent.

Obligations sharing a ``group`` are chained so they execute serially in
submission order on every backend (per-subprogram prover state keeps its
serial discipline); distinct groups and ungrouped obligations fan out
freely.  The cache and telemetry always live in the parent: workers
return (wire-encoded) results plus timing, and the parent records events
and populates the cache, so both behave identically across backends.

Per-obligation timeout: the thread backend can only *abandon* an overrun
worker thread (threads cannot be preempted) -- the collector marks the
obligation ``timed_out`` and the thread's eventual result is discarded.
The process backend upgrades this to a hard bound: the worker installs a
``SIGALRM`` interval timer around the discharge, so an overrunning
obligation is preempted mid-computation, reported ``timed_out``, and the
worker process stays healthy for the next obligation.  (A stuck worker
that fails to honor the alarm is abandoned by a parent-side fallback
deadline.)  In serial mode the thunk's own internal timeouts
(e.g. ``AutoProver.timeout_seconds``) bound the work, as they always did.

Transient failures are retried up to ``retries`` times; a thunk that still
raises either propagates (``on_error='raise'``, the default -- matching
the pre-scheduler behaviour) or is recorded as an ``errored`` outcome
(``on_error='record'``).
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor,
    TimeoutError as _FutureTimeout, wait as _fut_wait,
)
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from . import events as ev
from .cache import ResultCache, default_cache
from .obligation import Obligation
from .telemetry import Telemetry, default_telemetry

__all__ = ["ObligationOutcome", "ObligationScheduler", "BACKENDS"]

#: Recognized execution backends, in increasing order of isolation.
BACKENDS = ("serial", "thread", "process")

OK = "ok"
CACHED = "cached"
TIMED_OUT = "timed_out"
ERRORED = "errored"
SKIPPED = "skipped"


@dataclass
class ObligationOutcome:
    obligation: Obligation
    status: str                  # ok | cached | timed_out | errored | skipped
    value: object = None
    wall_seconds: float = 0.0
    attempts: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status in (OK, CACHED)


class _Abandoned(Exception):
    """Internal: the collector stopped waiting for this obligation."""


class _HardTimeout(BaseException):
    """Worker-side: the per-obligation SIGALRM fired.  A BaseException so
    no ``except Exception`` inside a discharge can swallow it."""


def _process_worker(index: int, payload, retries: int,
                    timeout_seconds: Optional[float]) -> tuple:
    """Execute one obligation payload in a pool worker.

    Returns ``(index, status, wire_value, wall, attempts, retry_errors,
    exception-or-None)`` -- always plain picklable data; exceptions are
    only shipped as objects when they themselves pickle.  ``status`` is
    ``'ok'``, ``'timed_out'`` (the hard per-obligation deadline fired) or
    ``'errored'``.  The timeout budget covers the whole obligation,
    retries included, matching the thread backend's per-obligation wait.
    """
    import pickle

    started = time.perf_counter()
    attempts = 0
    retry_errors: List[str] = []
    alarmed = False
    if timeout_seconds and hasattr(signal, "SIGALRM"):
        def _on_alarm(signum, frame):
            raise _HardTimeout()

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout_seconds)
        alarmed = True
    try:
        while True:
            attempts += 1
            try:
                value = payload.run()
                wire = payload.encode_result(value)
                return (index, "ok", wire,
                        time.perf_counter() - started, attempts,
                        tuple(retry_errors), None)
            except _HardTimeout:
                return (index, "timed_out", None,
                        time.perf_counter() - started, attempts,
                        tuple(retry_errors), None)
            except Exception as exc:   # noqa: BLE001 - boundary by design
                if attempts <= retries:
                    retry_errors.append(str(exc))
                    continue
                try:
                    pickle.dumps(exc)
                    shipped = exc
                except Exception:
                    shipped = None
                return (index, "errored",
                        f"{type(exc).__name__}: {exc}",
                        time.perf_counter() - started, attempts,
                        tuple(retry_errors), shipped)
    finally:
        if alarmed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


class ObligationScheduler:
    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 telemetry: Optional[Telemetry] = None,
                 timeout_seconds: Optional[float] = None,
                 retries: int = 0,
                 on_error: str = "raise",
                 backend: str = "thread"):
        self.jobs = max(1, jobs if jobs is not None else
                        (os.cpu_count() or 1))
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, "
                             f"got {backend!r}")
        self.backend = backend
        #: ``cache=None`` selects the process default; ``cache=False``
        #: disables caching outright.
        if cache is None:
            self.cache = default_cache()
        elif cache is False:
            self.cache = None
        else:
            self.cache = cache
        self.telemetry = telemetry if telemetry is not None \
            else default_telemetry()
        self.timeout_seconds = timeout_seconds
        self.retries = retries
        if on_error not in ("raise", "record"):
            raise ValueError(f"on_error must be 'raise' or 'record', "
                             f"got {on_error!r}")
        self.on_error = on_error

    # -- public -------------------------------------------------------------

    def run(self, obligations: Sequence[Obligation],
            stop_on: Optional[Callable[[ObligationOutcome], bool]] = None
            ) -> List[ObligationOutcome]:
        """Execute all obligations; results in input order.

        ``stop_on(outcome)`` returning True stops scheduling further
        obligations (remaining ones come back ``skipped``) -- the serial
        path's early exit, e.g. a differential check stopping at the first
        counterexample.
        """
        obligations = list(obligations)
        if self.backend == "serial" or self.jobs == 1 \
                or len(obligations) <= 1:
            return self._run_serial(obligations, stop_on)
        if self.backend == "process":
            return self._run_process(obligations, stop_on)
        return self._run_parallel(obligations, stop_on)

    # -- serial path --------------------------------------------------------

    def _run_serial(self, obligations, stop_on) -> List[ObligationOutcome]:
        outcomes: List[ObligationOutcome] = []
        stopped = False
        for ob in obligations:
            if stopped:
                outcomes.append(self._skip(ob))
                continue
            self.telemetry.record(ev.SUBMITTED, ob.kind, ob.label)
            outcome = self._execute(ob)
            if outcome.status == ERRORED and self.on_error == "raise":
                raise outcome._exception    # type: ignore[attr-defined]
            outcomes.append(outcome)
            if stop_on is not None and stop_on(outcome):
                stopped = True
        return outcomes

    # -- parallel path ------------------------------------------------------

    def _run_parallel(self, obligations, stop_on) -> List[ObligationOutcome]:
        # Predecessor chain per group: obligation i waits until the previous
        # obligation of its group has finished.  Submission order is FIFO,
        # so a predecessor is always dequeued before its successor and the
        # wait chain always terminates at a running task -- no deadlock.
        done_events: List[threading.Event] = \
            [threading.Event() for _ in obligations]
        predecessor: List[Optional[int]] = [None] * len(obligations)
        last_in_group: Dict[str, int] = {}
        for i, ob in enumerate(obligations):
            if ob.group is not None:
                if ob.group in last_in_group:
                    predecessor[i] = last_in_group[ob.group]
                last_in_group[ob.group] = i

        for ob in obligations:
            self.telemetry.record(ev.SUBMITTED, ob.kind, ob.label)

        def worker(index: int) -> ObligationOutcome:
            try:
                pred = predecessor[index]
                if pred is not None:
                    done_events[pred].wait()
                return self._execute(obligations[index])
            finally:
                done_events[index].set()

        outcomes: List[Optional[ObligationOutcome]] = [None] * len(obligations)
        stopped = False
        abandoned = False
        pool = ThreadPoolExecutor(max_workers=self.jobs)
        try:
            futures = [pool.submit(worker, i)
                       for i in range(len(obligations))]
            for i, future in enumerate(futures):
                if stopped:
                    if future.cancel():
                        done_events[i].set()
                        outcomes[i] = self._skip(obligations[i])
                        continue
                try:
                    outcome = future.result(timeout=self.timeout_seconds)
                except _FutureTimeout:
                    # The worker cannot be preempted; abandon it (it will
                    # finish in the background and its result is discarded).
                    abandoned = True
                    outcome = ObligationOutcome(
                        obligation=obligations[i], status=TIMED_OUT,
                        wall_seconds=self.timeout_seconds or 0.0,
                        error=f"no result within {self.timeout_seconds}s")
                    self.telemetry.record(
                        ev.TIMED_OUT, obligations[i].kind,
                        obligations[i].label, wall=outcome.wall_seconds)
                outcomes[i] = outcome
                if outcome.status == ERRORED and self.on_error == "raise":
                    for later in futures[i + 1:]:
                        later.cancel()
                    for event in done_events:
                        event.set()   # release any chained waiters
                    raise outcome._exception  # type: ignore[attr-defined]
                if stop_on is not None and not stopped \
                        and stop_on(outcome):
                    stopped = True
        finally:
            # wait=False so an abandoned (timed-out) worker does not block
            # the collector; completed pools shut down immediately anyway.
            pool.shutdown(wait=not abandoned)
        return outcomes  # type: ignore[return-value]

    # -- process path -------------------------------------------------------

    def _run_process(self, obligations, stop_on) -> List[ObligationOutcome]:
        """Dispatcher over a ``ProcessPoolExecutor``.

        Group chaining is enforced dispatcher-side: an obligation is only
        submitted once its group predecessor has a terminal outcome, so
        same-group work stays serial-in-order while distinct groups fan
        out across worker processes.  Cache lookups happen in the parent
        immediately before dispatch (a hit never ships to a worker) and
        results are cached in the parent on receipt, so caching semantics
        match the serial and thread backends exactly.

        The hard per-obligation timeout is enforced worker-side by
        ``SIGALRM`` (see :func:`_process_worker`); the parent keeps a
        slack fallback deadline per future so even a worker that fails to
        honor the alarm (or dies) cannot wedge the collector.
        """
        n = len(obligations)
        successors: Dict[int, List[int]] = {}
        predecessor: List[Optional[int]] = [None] * n
        last_in_group: Dict[str, int] = {}
        for i, ob in enumerate(obligations):
            if ob.group is not None:
                if ob.group in last_in_group:
                    predecessor[i] = last_in_group[ob.group]
                    successors.setdefault(last_in_group[ob.group],
                                          []).append(i)
                last_in_group[ob.group] = i

        for ob in obligations:
            self.telemetry.record(ev.SUBMITTED, ob.kind, ob.label)

        # A worker that ignores its alarm (or a timeout with no SIGALRM
        # support) is abandoned once this much slack has passed.
        fallback = None
        if self.timeout_seconds is not None:
            fallback = self.timeout_seconds * 1.5 + 5.0

        outcomes: List[Optional[ObligationOutcome]] = [None] * n
        ready = deque(i for i in range(n) if predecessor[i] is None)
        in_flight: Dict[object, int] = {}     # Future -> index
        deadlines: Dict[object, float] = {}   # Future -> abandon time
        finished = 0
        stopped = False
        abandoned = False
        raise_exc = None

        def finalize(index: int, outcome: ObligationOutcome):
            nonlocal finished, stopped, raise_exc
            outcomes[index] = outcome
            finished += 1
            ready.extend(successors.get(index, ()))
            if outcome.status == ERRORED and self.on_error == "raise" \
                    and raise_exc is None:
                raise_exc = getattr(
                    outcome, "_exception",
                    RuntimeError(outcome.error or "obligation errored"))
            if stop_on is not None and not stopped and stop_on(outcome):
                stopped = True

        pool = ProcessPoolExecutor(max_workers=self.jobs)
        try:
            while finished < n:
                while ready and not stopped and raise_exc is None:
                    i = ready.popleft()
                    ob = obligations[i]
                    keyed = ob.cache_key is not None \
                        and self.cache is not None
                    if keyed:
                        t0 = time.perf_counter()
                        hit, value = self.cache.get(ob.cache_key,
                                                    decode=ob.decode)
                        if hit:
                            wall = time.perf_counter() - t0
                            self.telemetry.record(ev.CACHED, ob.kind,
                                                  ob.label, wall=wall)
                            finalize(i, ObligationOutcome(
                                obligation=ob, status=CACHED, value=value,
                                wall_seconds=wall))
                            continue
                    if ob.payload is None:
                        # No declarative spec: run on the parent (serial
                        # semantics; _execute records its own telemetry).
                        finalize(i, self._execute(ob))
                        continue
                    self.telemetry.record(ev.STARTED, ob.kind, ob.label)
                    future = pool.submit(_process_worker, i, ob.payload,
                                         self.retries,
                                         self.timeout_seconds)
                    in_flight[future] = i
                    if fallback is not None:
                        deadlines[future] = time.perf_counter() + fallback
                if finished >= n or raise_exc is not None:
                    break
                if not in_flight:
                    break   # stopped/blocked: the tail is skipped below
                wait_for = None
                if deadlines:
                    wait_for = max(0.0, min(deadlines.values())
                                   - time.perf_counter())
                done, _ = _fut_wait(set(in_flight), timeout=wait_for,
                                    return_when=FIRST_COMPLETED)
                now = time.perf_counter()
                for future in list(in_flight):
                    if future in done:
                        continue
                    if deadlines.get(future, now + 1) <= now:
                        # Fallback: the worker ignored its alarm or died
                        # silently; abandon the future like the thread
                        # backend abandons an overrun thread.
                        i = in_flight.pop(future)
                        deadlines.pop(future, None)
                        abandoned = True
                        ob = obligations[i]
                        self.telemetry.record(
                            ev.TIMED_OUT, ob.kind, ob.label,
                            wall=self.timeout_seconds or 0.0)
                        finalize(i, ObligationOutcome(
                            obligation=ob, status=TIMED_OUT,
                            wall_seconds=self.timeout_seconds or 0.0,
                            error=f"no result within "
                                  f"{self.timeout_seconds}s (worker "
                                  f"unresponsive)"))
                for future in done:
                    i = in_flight.pop(future)
                    deadlines.pop(future, None)
                    ob = obligations[i]
                    keyed = ob.cache_key is not None \
                        and self.cache is not None
                    try:
                        (_, status, wire, wall, attempts, retry_errors,
                         exc_obj) = future.result()
                    except Exception as exc:   # crash / unpicklable result
                        self.telemetry.record(ev.ERRORED, ob.kind,
                                              ob.label, detail=str(exc))
                        outcome = ObligationOutcome(
                            obligation=ob, status=ERRORED,
                            error=f"{type(exc).__name__}: {exc}")
                        outcome._exception = exc   # type: ignore[attr-defined]
                        finalize(i, outcome)
                        continue
                    for message in retry_errors:
                        self.telemetry.record(ev.RETRIED, ob.kind,
                                              ob.label, detail=message)
                    if status == "ok":
                        value = ob.decode(wire) if ob.decode is not None \
                            else ob.payload.decode_result(wire)
                        self.telemetry.record(
                            ev.FINISHED, ob.kind, ob.label, wall=wall,
                            detail="keyed" if keyed else "")
                        if keyed:
                            self.cache.put(ob.cache_key, value,
                                           encode=ob.encode)
                        finalize(i, ObligationOutcome(
                            obligation=ob, status=OK, value=value,
                            wall_seconds=wall, attempts=attempts))
                    elif status == "timed_out":
                        self.telemetry.record(ev.TIMED_OUT, ob.kind,
                                              ob.label, wall=wall)
                        finalize(i, ObligationOutcome(
                            obligation=ob, status=TIMED_OUT,
                            wall_seconds=wall, attempts=attempts,
                            error=f"hard timeout after "
                                  f"{self.timeout_seconds}s"))
                    else:
                        self.telemetry.record(ev.ERRORED, ob.kind,
                                              ob.label, wall=wall,
                                              detail=str(wire))
                        outcome = ObligationOutcome(
                            obligation=ob, status=ERRORED,
                            wall_seconds=wall, attempts=attempts,
                            error=str(wire))
                        outcome._exception = exc_obj if exc_obj is not None \
                            else RuntimeError(str(wire))   # type: ignore[attr-defined]
                        finalize(i, outcome)
            for i in range(n):
                if outcomes[i] is None:
                    outcomes[i] = self._skip(obligations[i])
            if raise_exc is not None:
                raise raise_exc
        finally:
            # cancel_futures drops queued work; wait unless an abandoned
            # (unresponsive) worker would block shutdown indefinitely.
            pool.shutdown(wait=not abandoned, cancel_futures=True)
        return outcomes  # type: ignore[return-value]

    # -- one obligation -----------------------------------------------------

    def _skip(self, ob: Obligation) -> ObligationOutcome:
        self.telemetry.record(ev.SKIPPED, ob.kind, ob.label)
        return ObligationOutcome(obligation=ob, status=SKIPPED)

    def _execute(self, ob: Obligation) -> ObligationOutcome:
        keyed = ob.cache_key is not None and self.cache is not None
        if keyed:
            started = time.perf_counter()
            hit, value = self.cache.get(ob.cache_key, decode=ob.decode)
            if hit:
                wall = time.perf_counter() - started
                self.telemetry.record(ev.CACHED, ob.kind, ob.label,
                                      wall=wall)
                return ObligationOutcome(obligation=ob, status=CACHED,
                                         value=value, wall_seconds=wall)
        self.telemetry.record(ev.STARTED, ob.kind, ob.label)
        attempts = 0
        started = time.perf_counter()
        while True:
            attempts += 1
            try:
                value = ob.thunk()
                break
            except Exception as exc:   # noqa: BLE001 - boundary by design
                if attempts <= self.retries:
                    self.telemetry.record(ev.RETRIED, ob.kind, ob.label,
                                          detail=str(exc))
                    continue
                wall = time.perf_counter() - started
                self.telemetry.record(ev.ERRORED, ob.kind, ob.label,
                                      wall=wall, detail=str(exc))
                outcome = ObligationOutcome(
                    obligation=ob, status=ERRORED, wall_seconds=wall,
                    attempts=attempts, error=f"{type(exc).__name__}: {exc}")
                outcome._exception = exc   # type: ignore[attr-defined]
                return outcome
        wall = time.perf_counter() - started
        self.telemetry.record(ev.FINISHED, ob.kind, ob.label, wall=wall,
                              detail="keyed" if keyed else "")
        if keyed:
            self.cache.put(ob.cache_key, value, encode=ob.encode)
        return ObligationOutcome(obligation=ob, status=OK, value=value,
                                 wall_seconds=wall, attempts=attempts)
