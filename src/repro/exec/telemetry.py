"""Telemetry for the obligation execution layer.

A :class:`Telemetry` instance owns a thread-safe structured event log
(:mod:`repro.exec.events`) plus aggregate counters, and renders them as

* an :class:`ExecStats` snapshot (attached to
  :class:`~repro.core.results.EchoResult` after a verification run),
* a text summary (the "Obligation execution" section of the harness
  report),
* a JSON dump (``results/telemetry.json``, consumed by benchmarks).

A process-wide default instance (:func:`default_telemetry`) collects
events from components that were not handed an explicit telemetry, so the
experiment runner can report on everything that happened in the process.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .atomicio import atomic_write_text
from .events import (
    CACHED, CRASHED, DEGRADED, DISPATCHED, ERRORED, FINISHED, QUARANTINED,
    RETRIED, RETRIED_OK, SKIPPED, STARTED, SUBMITTED, TERMINAL_EVENTS,
    TIMED_OUT, WORKER_ABANDONED, EventSubscription, ObligationEvent,
)

__all__ = ["ExecStats", "Telemetry", "default_telemetry", "percentile"]


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty).

    Classical nearest-rank: the smallest value with at least ``q`` of the
    sample at or below it, i.e. ``values[ceil(q * n) - 1]``.  Deterministic
    across adjacent sample sizes -- unlike ``int(round(...))``, whose
    banker's rounding made the p50 of an even-length sample flip between
    the lower and upper middle element as ``n`` grew.  The epsilon absorbs
    binary-float error in ``q * n`` so an exact rank never rounds up.
    """
    if not sorted_values:
        return 0.0
    n = len(sorted_values)
    rank = math.ceil(q * n - 1e-9)
    return sorted_values[max(0, min(n - 1, rank - 1))]


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of an arbitrary sample (0.0 when empty).

    The public face of the deterministic percentile the exec stats use,
    for callers aggregating their own latency samples (the serve layer's
    per-lane request latencies); sorts a copy, so the input order is
    irrelevant and unchanged.
    """
    return _percentile(sorted(values), q)


@dataclass
class ExecStats:
    """Aggregate snapshot of one telemetry log."""

    #: terminal obligations per kind (computed + cached + timed out + ...).
    obligations: Dict[str, int] = field(default_factory=dict)
    #: obligations whose thunk actually ran to completion, per kind.
    computed: Dict[str, int] = field(default_factory=dict)
    #: obligations served from the result cache, per kind.
    cached: Dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    timeouts: int = 0
    errors: int = 0
    retries: int = 0
    skipped: int = 0
    #: fault-tolerance taxonomy (DESIGN.md §12) ------------------------------
    crashes: int = 0            # worker-killing crash blames (non-terminal)
    quarantined: int = 0        # obligations pulled after a second kill
    degraded: int = 0           # backend fallbacks (process→thread→serial)
    retried_ok: int = 0         # obligations that succeeded after retries
    abandoned_workers: int = 0  # unresponsive workers left behind at shutdown
    wall_seconds: float = 0.0       # telemetry epoch -> last event
    busy_seconds: float = 0.0       # sum of per-obligation execution walls
    p50_seconds: float = 0.0        # percentile of computed-obligation walls
    p95_seconds: float = 0.0
    max_queue_depth: int = 0
    #: dispatch-unit accounting (DESIGN.md §18) ------------------------------
    batched: int = 0                # dispatch units carrying > 1 obligation
    batch_items: int = 0            # obligations shipped inside those units
    dispatch_p50_seconds: float = 0.0   # percentile of dispatch overheads
    dispatch_p95_seconds: float = 0.0   # (all units, solo and batched)

    @property
    def total(self) -> int:
        return sum(self.obligations.values())

    @property
    def hit_rate(self) -> float:
        keyed = self.cache_hits + self.cache_misses
        return self.cache_hits / keyed if keyed else 0.0

    @property
    def failures(self) -> Dict[str, int]:
        """The structured failure taxonomy: every way an obligation (or
        the backend under it) misbehaved during the run."""
        return {
            "timeout": self.timeouts,
            "crashed": self.crashes,
            "quarantined": self.quarantined,
            "degraded": self.degraded,
            "retried_ok": self.retried_ok,
        }

    def summary(self) -> str:
        kinds = ", ".join(f"{kind}: {n}"
                          for kind, n in sorted(self.obligations.items())) \
            or "none"
        lines = [
            f"obligations                {self.total} ({kinds})",
            f"computed / cached          "
            f"{sum(self.computed.values())} / {sum(self.cached.values())}",
            f"cache hit rate             {100.0 * self.hit_rate:.1f}% "
            f"({self.cache_hits} hits, {self.cache_misses} misses)",
            f"discharge time p50 / p95   {self.p50_seconds * 1000:.1f} ms / "
            f"{self.p95_seconds * 1000:.1f} ms",
            f"busy / wall time           {self.busy_seconds:.2f} s / "
            f"{self.wall_seconds:.2f} s",
            f"max queue depth            {self.max_queue_depth}",
        ]
        if self.batched:
            lines.append(
                f"batched dispatches         {self.batched} "
                f"({self.batch_items} obligations; dispatch p50 / p95 "
                f"{self.dispatch_p50_seconds * 1000:.1f} ms / "
                f"{self.dispatch_p95_seconds * 1000:.1f} ms)")
        if self.timeouts or self.errors or self.retries or self.skipped:
            lines.append(
                f"timeouts / errors / retries / skipped  "
                f"{self.timeouts} / {self.errors} / {self.retries} / "
                f"{self.skipped}")
        if self.crashes or self.quarantined or self.degraded \
                or self.retried_ok or self.abandoned_workers:
            lines.append(
                f"crashes / quarantined / degraded / retried-ok  "
                f"{self.crashes} / {self.quarantined} / {self.degraded} / "
                f"{self.retried_ok}")
            if self.abandoned_workers:
                lines.append(f"abandoned workers          "
                             f"{self.abandoned_workers}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "obligations": dict(self.obligations),
            "computed": dict(self.computed),
            "cached": dict(self.cached),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "retries": self.retries,
            "skipped": self.skipped,
            "failures": self.failures,
            "abandoned_workers": self.abandoned_workers,
            "wall_seconds": self.wall_seconds,
            "busy_seconds": self.busy_seconds,
            "p50_seconds": self.p50_seconds,
            "p95_seconds": self.p95_seconds,
            "max_queue_depth": self.max_queue_depth,
            "batched": self.batched,
            "batch_items": self.batch_items,
            "dispatch_p50_seconds": self.dispatch_p50_seconds,
            "dispatch_p95_seconds": self.dispatch_p95_seconds,
        }


class Telemetry:
    """Thread-safe structured event log with aggregate counters."""

    def __init__(self):
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._events: List[ObligationEvent] = []
        self._depth = 0
        self._max_depth = 0
        self._subscribers: List[EventSubscription] = []

    # -- recording ----------------------------------------------------------

    def record(self, event: str, kind: str, label: str,
               wall: float = 0.0, detail: str = "") -> ObligationEvent:
        with self._lock:
            if event == SUBMITTED:
                self._depth += 1
                self._max_depth = max(self._max_depth, self._depth)
            elif event in TERMINAL_EVENTS:
                self._depth = max(0, self._depth - 1)
            ev = ObligationEvent(
                event=event, kind=kind, label=label,
                t=time.perf_counter() - self._epoch,
                wall=wall, queue_depth=self._depth, detail=detail)
            self._events.append(ev)
            subscribers = list(self._subscribers) if self._subscribers \
                else None
        # Deliver outside the lock: a subscriber that blocks (or calls
        # back into this telemetry's readers) must not deadlock recording
        # threads.  Events from concurrent recorders may therefore reach
        # a subscriber slightly out of log order; the authoritative order
        # is the log's.
        if subscribers:
            for subscription in subscribers:
                subscription.deliver(ev)
        return ev

    # -- live subscription --------------------------------------------------

    def subscribe(self, callback) -> EventSubscription:
        """Attach ``callback(event)`` to every future :meth:`record`.

        Returns an :class:`~repro.exec.events.EventSubscription`; close
        it (or use it as a context manager) to detach.  See the class
        docs for the delivery contract (synchronous, recorder-thread,
        raising detaches)."""
        subscription = EventSubscription(callback, self._unsubscribe)
        with self._lock:
            self._subscribers.append(subscription)
        return subscription

    def _unsubscribe(self, subscription: EventSubscription) -> None:
        with self._lock:
            try:
                self._subscribers.remove(subscription)
            except ValueError:
                pass   # already detached

    # -- reading ------------------------------------------------------------

    def events(self) -> List[ObligationEvent]:
        with self._lock:
            return list(self._events)

    def stats(self) -> ExecStats:
        events = self.events()
        stats = ExecStats()
        walls: List[float] = []
        dispatch_walls: List[float] = []
        last_t = 0.0
        for ev in events:
            last_t = max(last_t, ev.t)
            stats.max_queue_depth = max(stats.max_queue_depth,
                                        ev.queue_depth)
            if ev.event in TERMINAL_EVENTS:
                stats.obligations[ev.kind] = \
                    stats.obligations.get(ev.kind, 0) + 1
            if ev.event == FINISHED:
                stats.computed[ev.kind] = stats.computed.get(ev.kind, 0) + 1
                stats.cache_misses += 1 if ev.detail == "keyed" else 0
                stats.busy_seconds += ev.wall
                walls.append(ev.wall)
            elif ev.event == CACHED:
                stats.cached[ev.kind] = stats.cached.get(ev.kind, 0) + 1
                stats.cache_hits += 1
                stats.busy_seconds += ev.wall
            elif ev.event == TIMED_OUT:
                stats.timeouts += 1
            elif ev.event == ERRORED:
                stats.errors += 1
            elif ev.event == RETRIED:
                stats.retries += 1
            elif ev.event == SKIPPED:
                stats.skipped += 1
            elif ev.event == CRASHED:
                stats.crashes += 1
            elif ev.event == QUARANTINED:
                stats.quarantined += 1
            elif ev.event == DEGRADED:
                stats.degraded += 1
            elif ev.event == RETRIED_OK:
                stats.retried_ok += 1
            elif ev.event == WORKER_ABANDONED:
                stats.abandoned_workers += 1
            elif ev.event == DISPATCHED:
                dispatch_walls.append(ev.wall)
                items = 1
                if ev.detail.startswith("items="):
                    try:
                        items = int(ev.detail[len("items="):])
                    except ValueError:
                        pass
                if items > 1:
                    stats.batched += 1
                    stats.batch_items += items
        walls.sort()
        stats.p50_seconds = _percentile(walls, 0.50)
        stats.p95_seconds = _percentile(walls, 0.95)
        dispatch_walls.sort()
        stats.dispatch_p50_seconds = _percentile(dispatch_walls, 0.50)
        stats.dispatch_p95_seconds = _percentile(dispatch_walls, 0.95)
        stats.wall_seconds = last_t
        return stats

    def summary(self) -> str:
        return self.stats().summary()

    def to_json(self, context: Optional[dict] = None) -> dict:
        """``context`` records run-level metadata alongside the log --
        the harness stores the execution configuration (backend, jobs,
        timeout) here so a telemetry dump is self-describing."""
        out = {
            "stats": self.stats().to_json(),
            "events": [ev.to_json() for ev in self.events()],
        }
        if context:
            out["context"] = dict(context)
        return out

    def dump_json(self, path, context: Optional[dict] = None) -> None:
        """Write the JSON dump atomically (temp file + ``os.replace``):
        a crashed or concurrent run can never leave ``telemetry.json``
        truncated -- readers see the previous complete dump or this one."""
        atomic_write_text(path, json.dumps(self.to_json(context), indent=2))


_DEFAULT = Telemetry()


def default_telemetry() -> Telemetry:
    """The process-wide telemetry used when no explicit instance is given."""
    return _DEFAULT
