"""Retry policy for failing obligations: exponential backoff with
deterministic jitter.

A transiently failing obligation (a raising thunk, or one requeued after
a worker crash) is re-fired after a delay that grows exponentially with
the attempt number, saturating at ``max_delay``.  The jitter share that
de-synchronizes concurrent retry storms is *deterministic*: it is derived
from a SHA-256 over the obligation's identity token and the attempt
number, never from ``random`` or the wall clock, so the same obligation
produces the same delay schedule on every backend and host -- the
determinism guarantee the cross-backend differential gates rely on
(DESIGN.md §12).
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Union

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How (and how patiently) a failing obligation is re-fired.

    ``retries``     re-runs granted after the first failing attempt.
    ``base_delay``  seconds slept before the first retry.
    ``factor``      exponential growth of the delay per further retry.
    ``max_delay``   hard cap on any single delay (backoff saturates here).
    ``jitter``      fraction of the delay added as deterministic jitter
                    (see the module docstring).

    The zero policy (``retries=0``) never sleeps and never re-fires --
    exactly the historical behaviour of ``retries=0``.  Plain ints coerce
    via :meth:`coerce`, so ``ExecConfig(retries=2)`` keeps working.
    """

    retries: int = 0
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1

    def __post_init__(self):
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries!r}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, "
                             f"got {self.base_delay!r}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor!r}")
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, "
                             f"got {self.max_delay!r}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be within [0, 1], "
                             f"got {self.jitter!r}")

    @classmethod
    def coerce(cls, value: Union[int, "RetryPolicy"]) -> "RetryPolicy":
        """``RetryPolicy`` passes through; a non-negative int becomes a
        policy with that many retries and the default backoff."""
        if isinstance(value, RetryPolicy):
            return value
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeError(f"retries must be an int or a RetryPolicy, "
                            f"got {type(value).__name__}")
        return cls(retries=value)

    def delay(self, attempt: int, token: str = "") -> float:
        """Seconds to sleep before re-firing after ``attempt`` failed
        attempts (``attempt >= 1``).  Pure function of
        ``(policy, attempt, token)`` -- the determinism guarantee."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt!r}")
        if self.base_delay == 0.0:
            return 0.0
        raw = min(self.max_delay,
                  self.base_delay * self.factor ** (attempt - 1))
        if self.jitter:
            digest = hashlib.sha256(
                f"{token}\x1f{attempt}".encode()).hexdigest()
            fraction = int(digest[:8], 16) / 0xFFFFFFFF
            raw = min(self.max_delay, raw * (1.0 + self.jitter * fraction))
        return raw

    def to_json(self) -> dict:
        return dataclasses.asdict(self)
