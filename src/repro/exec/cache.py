"""Content-addressed result cache for proof obligations.

Keys are SHA-256 digests over a canonical serialization of everything the
obligation's result depends on: the logic term (via
:func:`repro.logic.canon.fingerprint`, which is stable across processes
and interning order), the enclosing program/theory text, and the prover
configuration.  Two layers:

* an in-memory dict (always on) -- makes re-verification of unchanged
  subprograms within one process (e.g. after each refactoring block, or a
  warm second ``verify_aes`` run) a hit;
* an optional on-disk store (one JSON file per key under a directory,
  conventionally ``.repro-cache/``) -- makes runs incremental *across*
  processes.  Only obligations that declare JSON codecs
  (:attr:`~repro.exec.obligation.Obligation.encode`/``decode``) use it.

Correctness stance: a hit replays the recorded result verbatim -- the same
``ProofResult``/``LemmaOutcome`` contents the original discharge produced
-- so every downstream statistic (VC outcome stages, auto-percentages,
lemma evidence levels) is identical to a cold run.  See DESIGN.md
("Obligation-level execution").
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Optional, Tuple

__all__ = ["make_key", "ResultCache", "default_cache",
           "package_fingerprint", "theory_fingerprint"]

_MISS = object()


def make_key(*parts: str) -> str:
    """SHA-256 over the concatenated key parts (separator-safe)."""
    payload = "\x1f".join(parts)
    return hashlib.sha256(payload.encode()).hexdigest()


def package_fingerprint(typed) -> str:
    """Stable digest of a typed MiniAda package (its printed source).

    Memoized on the object: packages are immutable after analysis and a
    fingerprint is needed once per obligation batch, not once per VC.
    """
    cached = getattr(typed, "_exec_fingerprint", None)
    if cached is not None:
        return cached
    from ..lang import print_package
    digest = hashlib.sha256(
        print_package(typed.package).encode()).hexdigest()
    try:
        typed._exec_fingerprint = digest
    except AttributeError:   # __slots__-restricted object: recompute next time
        pass
    return digest


def theory_fingerprint(theory) -> str:
    """Stable digest of a MiniPVS theory (its printed source)."""
    cached = getattr(theory, "_exec_fingerprint", None)
    if cached is not None:
        return cached
    from ..spec import print_theory
    digest = hashlib.sha256(print_theory(theory).encode()).hexdigest()
    try:
        theory._exec_fingerprint = digest
    except AttributeError:
        pass
    return digest


class ResultCache:
    """Two-layer (memory + optional disk) content-addressed result store."""

    #: ``.tmp`` files older than this at store open are orphans of a
    #: writer that died between ``mkstemp`` and ``os.replace``; younger
    #: ones may belong to a concurrent live writer and are left alone.
    STALE_TMP_SECONDS = 600.0

    #: An mtime more than this far in the *future* of a fresh wall-clock
    #: sample can only come from a clock step (files are stamped with the
    #: clock of their creation instant); its presence means wall-clock
    #: ages are untrustworthy for this sweep.
    CLOCK_STEP_SLACK_SECONDS = 5.0

    def __init__(self, disk_dir: Optional[os.PathLike] = None,
                 max_memory_entries: Optional[int] = None):
        """``max_memory_entries`` bounds the in-memory layer with
        least-recently-used eviction (``None``: unbounded, the historical
        behaviour).  Disk entries are never evicted: a memory-evicted key
        that was written through to disk is still a (slower) hit."""
        if max_memory_entries is not None and max_memory_entries < 1:
            raise ValueError(f"max_memory_entries must be >= 1, got "
                             f"{max_memory_entries!r}")
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        self.max_memory_entries = max_memory_entries
        self._hits = 0
        self._misses = 0
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            self._sweep_tmp(older_than=self.STALE_TMP_SECONDS)

    # -- core ---------------------------------------------------------------

    def get(self, key: str,
            decode: Optional[Callable[[Any], Any]] = None
            ) -> Tuple[bool, Any]:
        """Return ``(hit, value)``.  Consults memory, then disk (when the
        caller supplies a decoder)."""
        with self._lock:
            value = self._memory.get(key, _MISS)
            if value is not _MISS:
                self._memory.move_to_end(key)
                self._hits += 1
                return True, value
        if self.disk_dir is not None and decode is not None:
            path = self._path(key)
            if path.is_file():
                try:
                    payload = json.loads(path.read_text())
                    value = decode(payload["value"])
                except (ValueError, KeyError, TypeError):
                    pass   # corrupt entry: treat as a miss, will be rewritten
                else:
                    with self._lock:
                        self._store(key, value)
                        self._hits += 1
                    return True, value
        with self._lock:
            self._misses += 1
        return False, None

    def _store(self, key: str, value: Any) -> None:
        """Insert as most recently used and evict over the cap.  Caller
        holds the lock."""
        memory = self._memory
        if key in memory:
            memory.move_to_end(key)
        memory[key] = value
        if self.max_memory_entries is not None:
            while len(memory) > self.max_memory_entries:
                memory.popitem(last=False)

    def set_memory_limit(self, max_memory_entries: Optional[int]) -> None:
        """(Re)bound the in-memory layer, evicting the least recently
        used entries immediately if already over the new cap."""
        if max_memory_entries is not None and max_memory_entries < 1:
            raise ValueError(f"max_memory_entries must be >= 1, got "
                             f"{max_memory_entries!r}")
        with self._lock:
            self.max_memory_entries = max_memory_entries
            if max_memory_entries is not None:
                while len(self._memory) > max_memory_entries:
                    self._memory.popitem(last=False)

    def put(self, key: str, value: Any,
            encode: Optional[Callable[[Any], Any]] = None) -> None:
        with self._lock:
            self._store(key, value)
        if self.disk_dir is not None and encode is not None:
            path = self._path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = json.dumps({"key": key, "value": encode(value)})
            # Atomic publish: concurrent writers of the same key race to an
            # identical final state.
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    def _path(self, key: str) -> Path:
        return self.disk_dir / key[:2] / f"{key}.json"

    # -- maintenance / stats -------------------------------------------------

    def _sweep_tmp(self, older_than: float = 0.0) -> int:
        """Unlink orphaned ``.tmp`` files (a writer died between
        ``mkstemp`` and the atomic ``os.replace``).  With ``older_than``,
        only files whose mtime is at least that many seconds old go --
        the store-open sweep uses this so a concurrent writer's live
        temp file survives.  Returns the number removed.

        The age gate is robust to wall-clock steps: the clock is
        re-sampled per file (a single cutoff computed before a backwards
        step would make files stamped *after* the step look ancient),
        future-dated files are never deleted (they are live writers seen
        across a backwards step, not orphans), and any future-dated file
        is evidence the clock stepped during the window -- every age in
        the sweep is then suspect, so the grace period doubles."""
        if self.disk_dir is None:
            return 0
        removed = 0
        if not older_than:
            # clear(): the caller asserts no live writers -- unconditional.
            for entry in self.disk_dir.glob("*/*.tmp"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass   # already gone, or racing with its writer
            return removed
        ages = []
        suspicious = False
        for entry in self.disk_dir.glob("*/*.tmp"):
            try:
                mtime = entry.stat().st_mtime
            except OSError:
                continue   # already gone
            age = time.time() - mtime   # fresh sample per file
            if age < -self.CLOCK_STEP_SLACK_SECONDS:
                suspicious = True
            ages.append((entry, age))
        grace = older_than * (2.0 if suspicious else 1.0)
        for entry, age in ages:
            if age < grace:
                continue
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass   # already gone, or racing with its writer
        return removed

    def clear(self, memory_only: bool = False) -> None:
        with self._lock:
            self._memory.clear()
            self._hits = self._misses = 0
        if not memory_only and self.disk_dir is not None:
            for entry in self.disk_dir.glob("*/*.json"):
                try:
                    entry.unlink()
                except OSError:
                    pass
            self._sweep_tmp()   # orphaned temp files accumulate forever
                                # otherwise: clear() only globbed *.json

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses


_DEFAULT: Optional[ResultCache] = None
_DEFAULT_LOCK = threading.Lock()


def default_cache() -> ResultCache:
    """The process-wide cache used when no explicit instance is given.

    Memory-only unless the ``REPRO_CACHE_DIR`` environment variable names
    a directory (conventionally ``.repro-cache``), in which case results
    with JSON codecs persist across processes.
    """
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            disk = os.environ.get("REPRO_CACHE_DIR") or None
            _DEFAULT = ResultCache(disk_dir=disk)
        return _DEFAULT
