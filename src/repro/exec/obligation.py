"""The uniform proof-obligation type and adapters over the proof layers.

An :class:`Obligation` is one schedulable, cacheable unit of proof work:

* a VC discharge (``kind='vc'``): one verification condition pushed
  through :meth:`repro.prover.auto.AutoProver.prove` and, on failure, the
  subprogram's interactive proof scripts;
* an equivalence trial (``kind='equiv_trial'``): one differential-test
  trial of a semantics-preservation theorem
  (:mod:`repro.equiv.differential`);
* an implication lemma (``kind='lemma'``): one
  :func:`repro.implication.prover.discharge_lemma` step.

The adapters below wrap the existing entry points *without changing their
semantics*: the thunk a caller supplies is exactly the code the serial
path used to run inline, and the adapter only attaches a stable cache key
(content-addressed over term fingerprints + program/theory text + prover
configuration) and, where the result is plain data, JSON codecs for the
on-disk cache layer.

An obligation may additionally carry a declarative, picklable ``payload``
(:mod:`repro.exec.payload`) describing the same work as data.  The serial
and thread backends always execute the thunk; the process backend ships
the payload to a worker, which reconstructs the thunk on its side of the
process boundary.  Obligations without a payload still run under the
process backend -- inline on the parent, preserving semantics at the cost
of parallelism.

Obligations in the same ``group`` are executed serially in submission
order even under a parallel scheduler -- this is how per-subprogram prover
state (memo caches, fresh-name counters) keeps its exact serial-run
discipline while distinct subprograms fan out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .cache import make_key

__all__ = [
    "Obligation",
    "vc_obligation", "equiv_trial_obligation", "lemma_obligation",
    "VC", "EQUIV_TRIAL", "LEMMA",
]

VC = "vc"
EQUIV_TRIAL = "equiv_trial"
LEMMA = "lemma"


@dataclass
class Obligation:
    """One unit of proof work for the scheduler."""

    kind: str                        # 'vc' | 'equiv_trial' | 'lemma' | ...
    label: str                       # human-readable; shows up in telemetry
    thunk: Callable[[], Any]         # runs the actual discharge
    cache_key: Optional[str] = None  # None: never cached
    group: Optional[str] = None      # same group => serial, in order
    #: JSON codecs for the on-disk cache layer; absent => memory-only.
    encode: Optional[Callable[[Any], Any]] = None
    decode: Optional[Callable[[Any], Any]] = None
    #: Declarative picklable spec of the same work, for the process
    #: backend (:mod:`repro.exec.payload`); None => parent-side only.
    payload: Optional[Any] = None


# ---------------------------------------------------------------------------
# VC discharge
# ---------------------------------------------------------------------------

def _encode_vc_result(value):
    stage, result = value
    return {"stage": stage,
            "result": None if result is None else
            [bool(result.proved), result.method, result.detail]}


def _decode_vc_result(payload):
    from ..prover.auto import ProofResult
    raw = payload["result"]
    result = None if raw is None else \
        ProofResult(proved=raw[0], method=raw[1], detail=raw[2])
    return payload["stage"], result


def vc_obligation(vc, discharge: Callable[[], Any], *,
                  package_fp: str, config: str = "",
                  payload=None) -> Obligation:
    """Wrap the discharge of one :class:`~repro.vcgen.examiner.VCRecord`.

    ``discharge`` must return ``(stage, ProofResult-or-None)`` -- the
    stage/result pair the implementation-proof session records as a
    :class:`~repro.prover.session.VCOutcome`.  The key covers the
    simplified VC term, the VC's identity, the package text, and the
    prover configuration (timeouts, available scripts), so any change to
    code, annotations, or setup is a miss.  ``payload`` optionally names
    the same discharge declaratively for the process backend.
    """
    from ..logic import fingerprint
    key = make_key(VC, package_fp, vc.subprogram, vc.name, vc.kind,
                   fingerprint(vc.simplified.simplified), config)
    return Obligation(
        kind=VC, label=f"{vc.subprogram}/{vc.name}", thunk=discharge,
        cache_key=key, group=f"sp:{vc.subprogram}",
        encode=_encode_vc_result, decode=_decode_vc_result,
        payload=payload)


# ---------------------------------------------------------------------------
# Equivalence trials
# ---------------------------------------------------------------------------

def _state_token(state) -> str:
    """Canonical serialization of an initial interpreter state (dict of
    name -> int/bool/tuple)."""
    return repr(sorted(state.items()))


def equiv_trial_obligation(index: int, name: str, initial,
                           compare: Callable[[], Any], *,
                           left_fp: str, right_fp: str,
                           payload=None) -> Obligation:
    """Wrap one differential trial: ``compare`` runs both sides from
    ``initial`` and returns a Counterexample or None.  Cached in memory
    only (counterexamples carry interpreter states, which we do not
    serialize to disk)."""
    key = make_key(EQUIV_TRIAL, left_fp, right_fp, name,
                   _state_token(initial))
    return Obligation(
        kind=EQUIV_TRIAL, label=f"{name}#trial{index}", thunk=compare,
        cache_key=key, payload=payload)


# ---------------------------------------------------------------------------
# Implication lemmas
# ---------------------------------------------------------------------------

def _encode_lemma_outcome(outcome):
    """Scalar fields of a LemmaOutcome -- shared by the on-disk cache
    codec and the process backend's result wire."""
    return {"proved": outcome.proved, "evidence": outcome.evidence,
            "is_proof": outcome.is_proof, "detail": outcome.detail,
            "manual_steps": outcome.manual_steps}


def lemma_obligation(lemma, discharge: Callable[[], Any], *,
                     original_fp: str, extracted_fp: str,
                     seed: int, payload=None) -> Obligation:
    """Wrap one implication-lemma discharge.  ``discharge`` returns the
    :class:`~repro.implication.prover.LemmaOutcome`; the on-disk codec
    stores its scalar fields and re-attaches the in-memory lemma object on
    decode."""

    def decode(wire):
        from ..implication.prover import LemmaOutcome
        return LemmaOutcome(lemma=lemma, proved=wire["proved"],
                            evidence=wire["evidence"],
                            is_proof=wire["is_proof"],
                            detail=wire["detail"],
                            manual_steps=wire["manual_steps"])

    key = make_key(LEMMA, original_fp, extracted_fp, lemma.name, lemma.kind,
                   lemma.original, lemma.extracted, f"seed={seed}")
    return Obligation(
        kind=LEMMA, label=f"lemma:{lemma.name}", thunk=discharge,
        cache_key=key, encode=_encode_lemma_outcome, decode=decode,
        payload=payload)
