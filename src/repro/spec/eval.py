"""Evaluator for MiniPVS theories.

Executable specifications are what make proof-by-evaluation possible: the
FIPS-197 theory is validated against the standard's test vectors by
evaluation, and implication-lemma leaves are discharged by evaluating spec
and extracted-spec functions over whole byte domains.
"""

from __future__ import annotations

from typing import Dict, List

from . import ast as s

__all__ = ["SpecEvalError", "SpecEvaluator"]

_MAX_STEPS_DEFAULT = 20_000_000


class _Miss:
    pass


_MISS = _Miss()


class SpecEvalError(Exception):
    pass


class SpecEvaluator:
    def __init__(self, theory: s.Theory, max_steps: int = _MAX_STEPS_DEFAULT):
        self.theory = theory
        self.max_steps = max_steps
        self.steps = 0
        self._functions: Dict[str, s.FunDef] = {
            d.name: d for d in theory.functions()}
        self._memo: Dict = {}
        self._constants: Dict[str, object] = {}
        for d in theory.constants():
            self._constants[d.name] = self._eval(d.value, {})

    def constant(self, name: str):
        return self._constants[name]

    def call(self, name: str, args: List):
        fn = self._functions.get(name)
        if fn is None:
            raise SpecEvalError(f"no function '{name}' in theory "
                                f"{self.theory.name}")
        if len(args) != len(fn.params):
            raise SpecEvalError(f"{name}: arity mismatch")
        # Pure language: memoize calls (FIPS-style w[i] recurrences are
        # exponential without it).
        key = None
        try:
            key = (name, tuple(args))
            hit = self._memo.get(key, _MISS)
            if hit is not _MISS:
                return hit
        except TypeError:
            key = None
        env = {pname: value for (pname, _), value in zip(fn.params, args)}
        result = self._eval(fn.body, env)
        if key is not None and len(self._memo) < 1_000_000:
            self._memo[key] = result
        return result

    # -- internals --------------------------------------------------------

    def _charge(self):
        self.steps += 1
        if self.steps > self.max_steps:
            raise SpecEvalError("evaluation step budget exceeded")

    def _eval(self, e: s.SExpr, env: Dict[str, object]):
        self._charge()
        if isinstance(e, s.Num):
            return e.value
        if isinstance(e, s.BoolConst):
            return e.value
        if isinstance(e, s.Var):
            if e.name in env:
                return env[e.name]
            if e.name in self._constants:
                return self._constants[e.name]
            raise SpecEvalError(f"unbound name '{e.name}'")
        if isinstance(e, s.TableLit):
            return tuple(e.values)
        if isinstance(e, s.ArrayLit):
            return tuple(self._eval(item, env) for item in e.items)
        if isinstance(e, s.Index):
            arr = self._eval(e.array, env)
            idx = self._eval(e.index, env)
            if not isinstance(arr, tuple):
                raise SpecEvalError("indexing a non-array value")
            if not 0 <= idx < len(arr):
                raise SpecEvalError(f"index {idx} out of bounds "
                                    f"0 .. {len(arr) - 1}")
            return arr[idx]
        if isinstance(e, s.IfExpr):
            if self._eval(e.cond, env):
                return self._eval(e.then, env)
            return self._eval(e.orelse, env)
        if isinstance(e, s.Let):
            value = self._eval(e.value, env)
            inner = dict(env)
            inner[e.var] = value
            return self._eval(e.body, inner)
        if isinstance(e, s.Build):
            inner = dict(env)
            out = []
            for i in range(e.size):
                inner[e.var] = i
                out.append(self._eval(e.body, inner))
            return tuple(out)
        if isinstance(e, s.Bin):
            left = self._eval(e.left, env)
            right = self._eval(e.right, env)
            return self._binop(e.op, left, right)
        if isinstance(e, s.Call):
            args = [self._eval(a, env) for a in e.args]
            return self._call(e.fn, args)
        raise SpecEvalError(f"cannot evaluate {type(e).__name__}")

    def _binop(self, op, left, right):
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "DIV":
            if right == 0:
                raise SpecEvalError("DIV by zero")
            return left // right
        if op == "MOD":
            if right == 0:
                raise SpecEvalError("MOD by zero")
            return left % right
        if op == "=":
            return left == right
        if op == "/=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "AND":
            return bool(left) and bool(right)
        if op == "OR":
            return bool(left) or bool(right)
        raise SpecEvalError(f"unknown operator {op}")

    def _call(self, fn, args):
        if fn == "XOR":
            out = 0
            for a in args:
                out ^= a
            return out
        if fn == "BITAND":
            out = args[0]
            for a in args[1:]:
                out &= a
            return out
        if fn == "BITOR":
            out = args[0]
            for a in args[1:]:
                out |= a
            return out
        if fn == "SHL":
            return args[0] << args[1]
        if fn == "SHR":
            return args[0] >> args[1]
        if fn == "NOT":
            return not args[0]
        return self.call(fn, args)
