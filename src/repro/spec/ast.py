"""AST for MiniPVS, the functional specification language (PVS substitute).

A *theory* is a list of type definitions, constant tables, and pure
function definitions.  All nodes are frozen dataclasses (structural
equality drives lemma matching in the implication proof, just as it drives
clone detection in the refactoring engine).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "SNode", "SType", "NatType", "BoolType", "SubrangeType", "ArrayTypeS",
    "NamedType",
    "SExpr", "Num", "BoolConst", "Var", "Call", "Index", "IfExpr", "Let",
    "Build", "Bin", "TableLit", "ArrayLit",
    "SDecl", "TypeDef", "ConstDef", "FunDef", "Theory",
    "walk_spec",
]


class SNode:
    __slots__ = ()


class SType(SNode):
    __slots__ = ()


@dataclass(frozen=True)
class NatType(SType):
    pass


@dataclass(frozen=True)
class BoolType(SType):
    pass


@dataclass(frozen=True)
class SubrangeType(SType):
    """Naturals ``0 .. hi`` (``NAT UPTO hi``)."""

    hi: int


@dataclass(frozen=True)
class ArrayTypeS(SType):
    """Fixed-size 0-based array (``ARRAY n OF T``)."""

    size: int
    elem: "SType"


@dataclass(frozen=True)
class NamedType(SType):
    name: str


class SExpr(SNode):
    __slots__ = ()


@dataclass(frozen=True)
class Num(SExpr):
    value: int


@dataclass(frozen=True)
class BoolConst(SExpr):
    value: bool


@dataclass(frozen=True)
class Var(SExpr):
    name: str


@dataclass(frozen=True)
class Call(SExpr):
    """Application of a defined function or builtin (XOR, BITAND, BITOR,
    SHL, SHR)."""

    fn: str
    args: Tuple[SExpr, ...]


@dataclass(frozen=True)
class Index(SExpr):
    array: SExpr
    index: SExpr


@dataclass(frozen=True)
class IfExpr(SExpr):
    cond: SExpr
    then: SExpr
    orelse: SExpr


@dataclass(frozen=True)
class Let(SExpr):
    var: str
    value: SExpr
    body: SExpr


@dataclass(frozen=True)
class Build(SExpr):
    """Array comprehension ``BUILD i : n . body`` (element i = body)."""

    var: str
    size: int
    body: SExpr


@dataclass(frozen=True)
class Bin(SExpr):
    """op in: + - * DIV MOD < <= > >= = /= AND OR."""

    op: str
    left: SExpr
    right: SExpr


@dataclass(frozen=True)
class TableLit(SExpr):
    values: Tuple[int, ...]


@dataclass(frozen=True)
class ArrayLit(SExpr):
    """Element-wise array value ``{| e0, e1, ... |}`` -- produced by the
    extractor when a subprogram defines an array output element by
    element."""

    items: Tuple[SExpr, ...]


class SDecl(SNode):
    __slots__ = ()


@dataclass(frozen=True)
class TypeDef(SDecl):
    name: str
    definition: SType


@dataclass(frozen=True)
class ConstDef(SDecl):
    name: str
    type: SType
    value: SExpr


@dataclass(frozen=True)
class FunDef(SDecl):
    name: str
    params: Tuple[Tuple[str, SType], ...]
    return_type: SType
    body: SExpr
    recursive: bool = False
    measure: Optional[SExpr] = None


@dataclass(frozen=True)
class Theory(SNode):
    name: str
    decls: Tuple[SDecl, ...]

    def decl(self, name: str) -> SDecl:
        for d in self.decls:
            if d.name == name:
                return d
        raise KeyError(name)

    def functions(self) -> Tuple[FunDef, ...]:
        return tuple(d for d in self.decls if isinstance(d, FunDef))

    def constants(self) -> Tuple[ConstDef, ...]:
        return tuple(d for d in self.decls if isinstance(d, ConstDef))

    def types(self) -> Tuple[TypeDef, ...]:
        return tuple(d for d in self.decls if isinstance(d, TypeDef))


def walk_spec(node: SNode):
    """Yield node and all descendants."""
    yield node
    if dataclasses.is_dataclass(node):
        for field in dataclasses.fields(node):
            value = getattr(node, field.name)
            if isinstance(value, SNode):
                yield from walk_spec(value)
            elif isinstance(value, tuple):
                for item in value:
                    if isinstance(item, SNode):
                        yield from walk_spec(item)
                    elif isinstance(item, tuple):
                        for sub in item:
                            if isinstance(sub, SNode):
                                yield from walk_spec(sub)
