"""MiniPVS: the functional specification language (PVS substitute).

Theories hold type definitions, constant tables, and pure functions; the
type checker generates TCCs and the evaluator makes specifications
executable (proof by evaluation).
"""

from . import ast
from .eval import SpecEvalError, SpecEvaluator
from .parser import SpecParseError, parse_spec_expression, parse_theory
from .printer import print_spec_expr, print_theory, spec_line_count
from .typecheck import (
    SpecCheck, SpecGround, SpecTypeError, TCC, TCCReport, check_theory,
    discharge_tccs, spec_expr_to_term,
)

__all__ = [
    "ast", "parse_theory", "parse_spec_expression", "SpecParseError",
    "print_theory", "print_spec_expr", "spec_line_count",
    "SpecEvaluator", "SpecEvalError",
    "check_theory", "discharge_tccs", "spec_expr_to_term",
    "SpecCheck", "SpecGround", "SpecTypeError", "TCC", "TCCReport",
]
